#!/usr/bin/env python3
"""Section VI-B extension: fault injection into the CPU register file.

The paper's fault model covers main memory, but Section VI-B argues the
methodology generalizes to any state whose reads/writes can be traced.
Register faults are a first-class *fault domain* here: the same
campaign engine that scans memory runs register campaigns when asked
with ``domain="register"`` — full scans (serial or sharded over worker
processes), all three samplers, persistence and metrics included.

This example runs a def/use-pruned campaign over the register fault
space (Δt × 15 registers × 32 bits) and shows that the dilution
delusion — and its antidote — look exactly the same there.

Run:  python examples/register_faults.py
"""

from repro.campaign import record_golden, run_full_scan, run_sampling
from repro.faultspace import REGISTER
from repro.metrics import weighted_coverage
from repro.programs import hi, micro


def describe(name, golden):
    partition = REGISTER.build_partition(golden)
    scan = run_full_scan(golden, domain="register", partition=partition)
    print(f"{name}:")
    print(f"  register fault space w = {partition.fault_space.size} "
          f"({golden.cycles} cycles x 15 regs x 32 bits)")
    print(f"  def/use pruning: {partition.experiment_count} experiments "
          f"({partition.reduction_factor():.1f}x reduction)")
    print(f"  weighted coverage: {100 * weighted_coverage(scan):.2f}%")
    print(f"  absolute failure count F: "
          f"{scan.weighted_failure_count()}")
    return scan


def main() -> None:
    print("A loop-heavy micro-benchmark under register faults:\n")
    describe("counter(5)", record_golden(micro.counter(5)))

    print("\nThe dilution delusion, register edition — four useless NOPs"
          "\nstill inflate coverage while F does not move:\n")
    base = describe("hi (baseline)", record_golden(hi.baseline()))
    dft = describe("hi + DFT (4 nops)", record_golden(hi.dft_variant(4)))

    assert dft.weighted_failure_count() == base.weighted_failure_count()
    ratio = dft.weighted_failure_count() / base.weighted_failure_count()
    print(f"\ncomparison ratio r = {ratio:.3f} — the absolute failure "
          "count exposes the cheat in this fault model too.")

    # The same engine also samples register faults (Pitfall 2 applies
    # unchanged): raw-uniform sampling over the register space, with
    # counts extrapolated to the full population.
    golden = record_golden(micro.counter(5))
    sampled = run_sampling(golden, 400, seed=1, domain="register")
    scale = sampled.population / sampled.n_samples
    print(f"\nsampled register campaign: {sampled.n_samples} faults of "
          f"{sampled.population}, extrapolated "
          f"F̂ = {sampled.failure_count() * scale:.0f}")


if __name__ == "__main__":
    main()
