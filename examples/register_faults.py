#!/usr/bin/env python3
"""Section VI-B extension: fault injection into the CPU register file.

The paper's fault model covers main memory, but Section VI-B argues the
methodology generalizes to any state whose reads/writes can be traced.
This example runs a def/use-pruned campaign over the *register* fault
space (Δt × 15 registers × 32 bits) and shows that the dilution
delusion — and its antidote — look exactly the same there.

Run:  python examples/register_faults.py
"""

from repro.campaign import (
    record_golden,
    register_partition,
    run_register_scan,
)
from repro.programs import hi, micro


def describe(name, golden):
    partition = register_partition(golden)
    scan = run_register_scan(golden, partition=partition)
    print(f"{name}:")
    print(f"  register fault space w = {partition.fault_space.size} "
          f"({golden.cycles} cycles x 15 regs x 32 bits)")
    print(f"  def/use pruning: {partition.experiment_count} experiments "
          f"({partition.reduction_factor():.1f}x reduction)")
    print(f"  weighted coverage: {100 * scan.weighted_coverage():.2f}%")
    print(f"  absolute failure count F: "
          f"{scan.weighted_failure_count()}")
    return scan


def main() -> None:
    print("A loop-heavy micro-benchmark under register faults:\n")
    describe("counter(5)", record_golden(micro.counter(5)))

    print("\nThe dilution delusion, register edition — four useless NOPs"
          "\nstill inflate coverage while F does not move:\n")
    base = describe("hi (baseline)", record_golden(hi.baseline()))
    dft = describe("hi + DFT (4 nops)", record_golden(hi.dft_variant(4)))

    assert dft.weighted_failure_count() == base.weighted_failure_count()
    ratio = dft.weighted_failure_count() / base.weighted_failure_count()
    print(f"\ncomparison ratio r = {ratio:.3f} — the absolute failure "
          "count exposes the cheat in this fault model too.")


if __name__ == "__main__":
    main()
