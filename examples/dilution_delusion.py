#!/usr/bin/env python3
"""The Section IV Gedankenexperiment: "Dilution Fault Tolerance".

Reproduces the paper's exact numbers: the useless DFT transformation
(four prepended NOPs) lifts the fault coverage of the "Hi" benchmark
from 62.5 % to 75.0 % while the absolute failure count F stays at 48 —
and DFT′ (dummy loads) defeats the "count only activated faults"
defense as well.

Run:  python examples/dilution_delusion.py
"""

from repro.analysis import fig3_report, render_fault_space, verdict_report
from repro.campaign import CampaignSummary, record_golden, run_full_scan
from repro.metrics import activated_only_coverage
from repro.programs import hi


def scan(program):
    return run_full_scan(record_golden(program))


def main() -> None:
    variants = {
        "hi (baseline)": scan(hi.baseline()),
        "hi + DFT (4 nops)": scan(hi.dft_variant(4)),
        "hi + DFT' (4 loads)": scan(hi.dft_prime_variant(4)),
        "hi + 16 nops": scan(hi.dft_variant(16)),
        "hi + 2 unused bytes": scan(hi.memory_diluted_variant(2)),
    }

    print("The baseline fault space (Figure 3a):\n")
    print(render_fault_space(variants["hi (baseline)"].golden))
    print("\nThe DFT-'hardened' fault space (Figure 3b) — the four new "
          "columns are all dead:\n")
    print(render_fault_space(variants["hi + DFT (4 nops)"].golden))
    print()

    summaries = {name: CampaignSummary.from_result(result)
                 for name, result in variants.items()}
    print(fig3_report(summaries))

    print("\nCoverage restricted to *activated* faults (the Barbosa "
          "defense, Section IV-B):")
    for name in ("hi (baseline)", "hi + DFT (4 nops)",
                 "hi + DFT' (4 loads)"):
        print(f"  {name:22s} "
              f"{100 * activated_only_coverage(variants[name]):6.2f}%")
    print("  -> DFT is caught, but DFT' re-inflates the number: the "
          "restriction is no safeguard.")

    print("\nThe paper's comparison metric is immune to all dilutions:\n")
    base = summaries["hi (baseline)"]
    for name, summary in summaries.items():
        if name == "hi (baseline)":
            continue
        print(verdict_report(base, summary, name))
        print()


if __name__ == "__main__":
    main()
