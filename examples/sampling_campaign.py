#!/usr/bin/env python3
"""Sampling campaigns done right (and wrong).

Demonstrates on a micro-benchmark:

* raw-uniform sampling with def/use experiment sharing (correct),
* the Pitfall 2 biased class sampler (wrong, for contrast),
* Pitfall 3, Corollary 2: extrapolating sampled failure counts to the
  fault-space size, with confidence intervals,
* live-only sampling over the reduced population w′ (Corollary 1).

Run:  python examples/sampling_campaign.py
"""

from repro.analysis import format_table
from repro.campaign import record_golden, run_full_scan, run_sampling
from repro.metrics import (
    extrapolated_failure_count,
    extrapolated_failure_interval,
    required_samples,
    weighted_failure_count,
)
from repro.programs import micro


def main() -> None:
    golden = record_golden(micro.memcopy(8))
    partition = golden.partition()
    print(f"program {golden.program.name}: Δt = {golden.cycles} cycles, "
          f"w = {golden.fault_space.size}, "
          f"live weight w' = {partition.live_weight}")

    # Exact ground truth from the pruned full scan.
    scan = run_full_scan(golden, partition=partition)
    truth = weighted_failure_count(scan).total
    print(f"ground truth (full scan): F = {truth:.0f}\n")

    rows = []
    for n in (100, 400, 1600, 6400):
        result = run_sampling(golden, n, seed=42, partition=partition)
        estimate = extrapolated_failure_count(result)
        interval = extrapolated_failure_interval(result, 0.95)
        rows.append([
            n,
            result.experiments_conducted,
            f"{estimate.total:.0f}",
            f"[{interval.low:.0f}, {interval.high:.0f}]",
            "yes" if interval.contains(truth) else "NO",
        ])
    print(format_table(
        ["samples", "experiments", "F extrapolated", "95% CI",
         "truth in CI"],
        rows, title="Raw-uniform sampling, extrapolated to w "
                    "(Pitfall 3, Corollary 2)"))

    # Live-only sampling: skip a-priori-known No Effect classes.
    result = run_sampling(golden, 1600, seed=7, sampler="live-only",
                          partition=partition)
    estimate = extrapolated_failure_count(result)
    print(f"\nlive-only sampling (population w' = {result.population}): "
          f"F ≈ {estimate.total:.0f} with only "
          f"{result.experiments_conducted} experiments")

    # The biased sampler for contrast: its estimate has no valid
    # extrapolation — show how far off the naive one is.
    biased = run_sampling(golden, 1600, seed=7, sampler="biased-class")
    naive = biased.population * biased.failure_count() / biased.n_samples
    print(f"biased class sampling (Pitfall 2): naive extrapolation gives "
          f"F ≈ {naive:.0f} (truth: {truth:.0f})")

    # Planning: how many samples for a given precision?
    p = truth / golden.fault_space.size
    for half_width in (0.05, 0.01):
        n = required_samples(p, half_width=half_width)
        print(f"for ±{half_width:.2f} on the failure proportion at 95%: "
              f"~{n} samples")


if __name__ == "__main__":
    main()
