#!/usr/bin/env python3
"""Quickstart: write a tiny program, run a fault-injection campaign,
and compute the paper's metrics.

Run:  python examples/quickstart.py
"""

from repro.analysis import outcome_histogram, render_fault_space
from repro.campaign import record_golden, run_full_scan
from repro.isa import assemble
from repro.metrics import weighted_coverage, weighted_failure_count

# A benchmark is assembly for the project's deterministic RISC machine.
# This one buffers a greeting in RAM and prints it back.
SOURCE = """
        .data
msg:    .space 3
        .text
start:  li   r1, 'd'
        sb   r1, msg(zero)
        li   r1, 's'
        sb   r1, msg+1(zero)
        li   r1, 'n'
        sb   r1, msg+2(zero)
        addi r3, zero, 0
loop:   lbu  r2, msg(r3)
        out  r2
        addi r3, r3, 1
        slti r4, r3, 3
        bnez r4, loop
        halt
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart", ram_size=3)

    # 1. The golden run: reference output, runtime Δt, memory trace.
    golden = record_golden(program)
    print(f"golden output: {golden.output!r}")
    print(f"runtime Δt = {golden.cycles} cycles, "
          f"Δm = {program.ram_size * 8} bits, "
          f"fault space w = {golden.fault_space.size} coordinates\n")

    # 2. The def/use-pruned fault space, visualized.
    print(render_fault_space(golden))
    partition = golden.partition()
    print(f"\n{partition.experiment_count} experiments stand for all "
          f"{golden.fault_space.size} fault coordinates "
          f"({partition.reduction_factor():.1f}x reduction)\n")

    # 3. The full fault-space scan: one injection per live class and bit.
    scan = run_full_scan(golden)
    print(outcome_histogram(scan))

    # 4. The paper's metrics.
    print(f"\nweighted fault coverage   c = "
          f"{100 * weighted_coverage(scan):.2f}%  "
          f"(fine per program, unsound for comparison!)")
    count = weighted_failure_count(scan)
    print(f"absolute failure count    F = {count.total:.0f}  "
          f"(the sound comparison metric)")


if __name__ == "__main__":
    main()
