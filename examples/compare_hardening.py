#!/usr/bin/env python3
"""Figure 2 end to end: compare SUM+DMR-hardened kernel benchmarks
against their baselines with sound and unsound metrics side by side.

By default the benchmarks run at reduced size so the example finishes in
well under a minute; pass ``--full`` for the paper-scale configuration
used by the benchmark harness (several minutes of campaigning).

Run:  python examples/compare_hardening.py [--full]
"""

import argparse

from repro.analysis import (
    failure_attribution,
    fig2_data,
    fig2_report,
    verdict_report,
)
from repro.campaign import CampaignSummary, record_golden, run_full_scan
from repro.programs import bin_sem2, sync2


def campaign(program):
    print(f"  scanning {program.name} "
          f"(Δm = {program.ram_size} bytes)...", flush=True)
    return run_full_scan(record_golden(program))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale benchmark sizes")
    args = parser.parse_args()
    rounds = bin_sem2.DEFAULT_ROUNDS if args.full else 2
    items = sync2.DEFAULT_ITEMS if args.full else 4

    print("running four full fault-space scans:")
    scans = {
        "bin_sem2": campaign(bin_sem2.baseline(rounds)),
        "bin_sem2-sumdmr": campaign(bin_sem2.hardened(rounds)),
        "sync2": campaign(sync2.baseline(items)),
        "sync2-sumdmr": campaign(sync2.hardened(items)),
    }
    summaries = {name: CampaignSummary.from_result(scan)
                 for name, scan in scans.items()}

    print()
    print(fig2_report(fig2_data(summaries)))
    print()
    print(verdict_report(summaries["bin_sem2"],
                         summaries["bin_sem2-sumdmr"], "bin_sem2"))
    print()
    print(verdict_report(summaries["sync2"], summaries["sync2-sumdmr"],
                         "sync2"))

    print("\nWhere do the remaining failures live? (weighted failure "
          "attribution)")
    for name in ("sync2", "sync2-sumdmr"):
        print(f"\n  {name}:")
        for label, weight in failure_attribution(scans[name], top=5):
            print(f"    {label:16s} {weight}")
    print("\nNote the sync2 story: the hardened variant's coverage looks "
          "better, but its absolute failure count is worse — the "
          "unprotected application buffer lives much longer because the "
          "protected kernel made the run slower (Pitfall 3).")


if __name__ == "__main__":
    main()
