"""Figure 2(d)/(e): absolute failure counts without and with weighting.

The headline reproduction: under the paper's sound metric (weighted
absolute failure counts, panel e)

* bin_sem2 genuinely improves under SUM+DMR (r < 1), and
* sync2 *worsens* (r > 1) although its fault coverage improved —
  the wrong design decision the fault-coverage metric would have caused;

while the unweighted counts (panel d) make *both* benchmarks look worse
when hardened — flipping the bin_sem2 verdict (Pitfall 1).
"""

from repro.analysis import fig2_verdicts, verdict_report
from repro.metrics import unweighted_failure_count, weighted_failure_count


def test_fig2_weighted_failure_counts(benchmark, fig2_summaries,
                                      output_dir):
    def ratios():
        out = {}
        for name in ("bin_sem2", "sync2"):
            base = weighted_failure_count(fig2_summaries[name]).total
            hard = weighted_failure_count(
                fig2_summaries[f"{name}-sumdmr"]).total
            out[name] = hard / base
        return out

    r = benchmark(ratios)
    assert r["bin_sem2"] < 0.7, r   # improves clearly
    assert r["sync2"] > 1.5, r      # worsens clearly
    report = "\n\n".join(
        verdict_report(fig2_summaries[name],
                       fig2_summaries[f"{name}-sumdmr"], name)
        for name in ("bin_sem2", "sync2"))
    (output_dir / "fig2_failures.txt").write_text(report + "\n")


def test_fig2_unweighted_counts_flip_the_verdict(benchmark,
                                                 fig2_summaries):
    benchmark(lambda: unweighted_failure_count(
        fig2_summaries["bin_sem2"]).total)
    """Panel (d): without weighting, both hardened variants look worse —
    for bin_sem2 that is the wrong design decision."""
    for name in ("bin_sem2", "sync2"):
        base = unweighted_failure_count(fig2_summaries[name]).total
        hard = unweighted_failure_count(
            fig2_summaries[f"{name}-sumdmr"]).total
        assert hard > base, name
    # The flip: bin_sem2 improves weighted but worsens unweighted.
    verdicts = fig2_verdicts(fig2_summaries["bin_sem2"],
                             fig2_summaries["bin_sem2-sumdmr"],
                             "bin_sem2")
    assert verdicts["verdicts"]["failure-count (sound)"]
    assert not verdicts["verdicts"][
        "failure-count unweighted (pitfall 1)"]
    assert "failure-count unweighted (pitfall 1)" in \
        verdicts["misleading_metrics"]


def test_fig2_coverage_hides_sync2_degradation(benchmark,
                                               fig2_summaries):
    benchmark(lambda: fig2_verdicts(fig2_summaries["sync2"],
                                    fig2_summaries["sync2-sumdmr"],
                                    "sync2"))
    """The paper's central warning, stated on our data: sync2's weighted
    coverage improves while its failure count worsens."""
    verdicts = fig2_verdicts(fig2_summaries["sync2"],
                             fig2_summaries["sync2-sumdmr"], "sync2")
    assert verdicts["coverage_delta_weighted_pp"] > 0
    assert verdicts["ratio"] > 1
    assert "coverage weighted (pitfall 3)" in \
        verdicts["misleading_metrics"]
