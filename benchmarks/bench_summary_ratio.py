"""Section V summary: the pitfall-free comparison ratio r for all pairs.

Produces the final paper-vs-reproduction scoreboard consumed by
EXPERIMENTS.md and checks every qualitative claim at once.
"""

from repro.analysis import fig2_data, fig2_report, fig2_verdicts
from repro.metrics import compare, mwtf_ratio


def test_summary_scoreboard(benchmark, fig2_summaries, hi_summaries,
                            output_dir):
    benchmark(lambda: fig2_data(fig2_summaries))
    lines = ["Final scoreboard: comparison ratio r = F_hardened/"
             "F_baseline (r < 1 improves)", ""]

    bin_sem2 = fig2_verdicts(fig2_summaries["bin_sem2"],
                             fig2_summaries["bin_sem2-sumdmr"],
                             "bin_sem2")
    sync2 = fig2_verdicts(fig2_summaries["sync2"],
                          fig2_summaries["sync2-sumdmr"], "sync2")
    hi_dft = compare(hi_summaries["hi"], hi_summaries["hi-dft4"])

    lines.append(f"bin_sem2 + SUM+DMR: r = {bin_sem2['ratio']:.3f} "
                 "(paper: clear improvement)")
    lines.append(f"sync2 + SUM+DMR:    r = {sync2['ratio']:.3f} "
                 "(paper: worsens by more than 5x)")
    lines.append(f"hi + DFT:           r = {hi_dft.ratio:.3f} "
                 "(paper: exactly 1 — dilution does not move F)")
    lines.append("")
    lines.append(fig2_report(fig2_data(fig2_summaries)))

    assert bin_sem2["ratio"] < 0.7
    assert sync2["ratio"] > 1.5
    assert hi_dft.ratio == 1.0

    # The MWTF ranking (Section VII) agrees with 1/r.
    mwtf_bin = mwtf_ratio(fig2_summaries["bin_sem2"],
                          fig2_summaries["bin_sem2-sumdmr"])
    mwtf_sync = mwtf_ratio(fig2_summaries["sync2"],
                           fig2_summaries["sync2-sumdmr"])
    assert mwtf_bin > 1  # improvement
    assert mwtf_sync < 1  # degradation
    lines.append(f"\nMWTF ratios (Section VII consistency): "
                 f"bin_sem2 {mwtf_bin:.3f}, sync2 {mwtf_sync:.3f}")

    (output_dir / "summary_scoreboard.txt").write_text(
        "\n".join(lines) + "\n")


def test_summary_ratio_throughput(benchmark, fig2_summaries):
    def compute():
        return compare(fig2_summaries["sync2"],
                       fig2_summaries["sync2-sumdmr"]).ratio

    ratio = benchmark(compute)
    assert ratio > 1
