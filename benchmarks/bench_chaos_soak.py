"""Chaos-soak telemetry: the fabric under deterministic fault injection.

A seeded :class:`ChaosPlan` drops, duplicates, corrupts and delays
result frames on every worker while a full memcopy scan runs through
the real coordinator/worker TCP stack over loopback.  Each soak is
checked bit-for-bit against the serial ground truth — the invariant the
chaos layer exists to defend — and its telemetry (events fired per
worker, integrity rejections, shard retries, wall-clock) is written to
repo-root ``BENCH_chaos_soak.json`` so CI can track how much abuse a
converging campaign absorbed, not just that it converged.

Seeds are fixed (7, 11, 13 on the memory domain, 7 on register) so the
artifact is comparable across commits: same seeds, same schedule, same
event counts — any drift in the telemetry is a code change, not noise.
"""

import socket
import threading
import time

from _bench_json import write_bench_json

from repro.campaign import RetryPolicy, record_golden, run_full_scan
from repro.campaign.dist import DistCoordinator, DistWorker
from repro.campaign.dist.chaos import ChaosPlan
from repro.campaign.dist.coordinator import serve_in_thread
from repro.campaign.dist.supervision import SupervisionPolicy
from repro.programs import micro

#: Snappy failure detection for loopback soaks.
POLICY = RetryPolicy(heartbeat=0.3, poll_interval=0.02, backoff=0.05,
                     max_retries=12)

#: Per-frame event probabilities — every worker misbehaves constantly.
RATES = dict(drop_rate=0.12, dup_rate=0.15, corrupt_rate=0.08,
             delay_rate=0.10, delay_seconds=0.005)

#: Transport chaos must not quarantine anyone — that is deliberate
#: abuse, not a sick worker — so the failure threshold is out of reach.
SUPERVISION = SupervisionPolicy(failure_threshold=100.0,
                                crosscheck_patience=30.0)

MEMORY_SEEDS = (7, 11, 13)
REGISTER_SEEDS = (7,)
WORKERS = 3
CROSSCHECK = 0.25


def _soak(golden, baseline, *, seed, domain):
    """One chaos soak; returns (telemetry row, wall-clock seconds)."""
    plan = ChaosPlan(seed=seed, **RATES)
    sock = socket.create_server(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    coordinator = DistCoordinator(
        golden, sock=sock, domain=domain, policy=POLICY, shards=4,
        keep_records=True, supervision=SUPERVISION,
        crosscheck=CROSSCHECK)
    thread = serve_in_thread(coordinator)

    spawned = []
    start = time.perf_counter()
    for index in range(WORKERS):
        worker = DistWorker("127.0.0.1", port, name=f"w{index}",
                            chaos=plan, reconnect_delay=0.05,
                            max_reconnect_delay=0.3)
        worker_thread = threading.Thread(target=worker.run, daemon=True)
        worker_thread.start()
        spawned.append((worker, worker_thread))
    result = thread.join_result(300)
    elapsed = time.perf_counter() - start
    for _, worker_thread in spawned:
        worker_thread.join(10)

    # The soak invariant: complete and bit-for-bit identical to serial.
    execution = result.execution
    assert execution.complete, (domain, seed, execution.missing)
    assert result == baseline, (domain, seed)
    assert result.records == baseline.records, (domain, seed)
    assert not execution.quarantined_workers, (domain, seed)

    fired: dict[str, int] = {}
    for worker, _ in spawned:
        for event, count in worker._chaos.fired.items():
            fired[event] = fired.get(event, 0) + count
    row = {
        "domain": domain,
        "seed": seed,
        "wall_clock_seconds": round(elapsed, 3),
        "total_units": execution.total_units,
        "chaos_events": dict(sorted(fired.items())),
        "integrity_rejected": execution.integrity_rejected,
        "crosschecked": execution.crosschecked,
        "crosscheck_mismatches": execution.crosscheck_mismatches,
        "shard_retries": execution.shard_retries,
        "workers": dict(execution.workers),
        "bit_identical_to_serial": True,
    }
    return row, elapsed


def test_chaos_soak_telemetry(output_dir):
    runs = []
    lines = [
        "chaos soak: deterministic fault injection over the dist fabric",
        f"rates={RATES}  crosscheck={CROSSCHECK}  workers={WORKERS}",
        "",
        f"{'domain':10s} {'seed':>4s} {'wall':>8s} {'events':>7s} "
        f"{'rejected':>8s} {'xchk':>5s} {'retries':>7s}",
        "-" * 54,
    ]
    for domain, seeds, program in (
            ("memory", MEMORY_SEEDS, micro.memcopy(6)),
            ("register", REGISTER_SEEDS, micro.memcopy(6))):
        golden = record_golden(program)
        baseline = run_full_scan(golden, keep_records=True,
                                 domain=domain)
        for seed in seeds:
            row, elapsed = _soak(golden, baseline, seed=seed,
                                 domain=domain)
            runs.append(row)
            lines.append(
                f"{domain:10s} {seed:4d} {elapsed:7.3f}s "
                f"{sum(row['chaos_events'].values()):7d} "
                f"{row['integrity_rejected']:8d} "
                f"{row['crosschecked']:5d} "
                f"{row['shard_retries']:7d}")

    lines += ["", "every run complete and bit-for-bit identical to "
                  "serial despite the abuse"]
    report = "\n".join(lines) + "\n"
    (output_dir / "chaos_soak.txt").write_text(report)
    print()
    print(report)

    write_bench_json("chaos_soak", {
        "rates": RATES,
        "crosscheck_fraction": CROSSCHECK,
        "workers": WORKERS,
        "runs": runs,
    })
