"""Section VI-B: the register-file fault-model generalization.

Not a paper figure — the paper leaves register faults to future work —
but DESIGN.md implements the extension, and this bench demonstrates
that the methodology carries over: def/use pruning over the register
file, weighted accounting, and the dilution-immunity of the failure
count all behave as in the memory model.  Register campaigns run
through the same unified engine as memory campaigns
(``run_full_scan(golden, domain="register")``), including the
multi-process sharder and the samplers.
"""

import pytest

from repro.campaign import record_golden, run_full_scan, run_sampling
from repro.faultspace import REGISTER
from repro.programs import hi, micro


@pytest.fixture(scope="module")
def hi_register_scans():
    return {
        "hi": run_full_scan(record_golden(hi.baseline()),
                            domain="register"),
        "hi-dft4": run_full_scan(record_golden(hi.dft_variant(4)),
                                 domain="register"),
    }


def test_sec6b_register_pruning(benchmark, output_dir):
    golden = record_golden(micro.checksum_loop(4))
    partition = benchmark(lambda: REGISTER.build_partition(golden))
    assert partition.reduction_factor() > 2.0
    assert partition.experiment_count < partition.fault_space.size
    (output_dir / "sec6b_registers.txt").write_text(
        "Section VI-B: register fault space of checksum4\n"
        f"w = {partition.fault_space.size}, "
        f"experiments = {partition.experiment_count}, "
        f"reduction = {partition.reduction_factor():.1f}x\n")


def test_sec6b_register_scan_cost(benchmark):
    golden = record_golden(micro.counter(3))
    result = benchmark.pedantic(
        lambda: run_full_scan(golden, domain="register"),
        rounds=2, iterations=1)
    assert result.experiments_conducted > 0


def test_sec6b_register_scan_parallel_parity(benchmark):
    """The sharded register scan must reproduce the serial scan
    bit-for-bit, exactly as for memory campaigns."""
    golden = record_golden(micro.counter(3))
    serial = run_full_scan(golden, domain="register")
    parallel = benchmark.pedantic(
        lambda: run_full_scan(golden, domain="register", jobs=2),
        rounds=2, iterations=1)
    assert list(parallel.class_outcomes.items()) \
        == list(serial.class_outcomes.items())
    assert parallel.weighted_counts() == serial.weighted_counts()


def test_sec6b_register_sampling_cost(benchmark):
    golden = record_golden(micro.checksum_loop(4))
    result = benchmark.pedantic(
        lambda: run_sampling(golden, 300, seed=11, domain="register"),
        rounds=2, iterations=1)
    assert result.population == REGISTER.fault_space(golden).size
    assert result.n_samples == 300


def test_sec6b_dilution_immune_in_register_space(benchmark,
                                                 hi_register_scans):
    """NOP dilution also leaves the register-space failure count intact
    while inflating register-space coverage — the pitfall is fault-model
    agnostic."""
    base = hi_register_scans["hi"]
    dft = hi_register_scans["hi-dft4"]
    benchmark(base.weighted_coverage)
    assert dft.weighted_failure_count() == base.weighted_failure_count()
    assert dft.weighted_coverage() > base.weighted_coverage()
