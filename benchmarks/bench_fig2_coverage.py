"""Figure 2(a)/(b): fault coverage without and with def/use weighting.

Regenerates both coverage panels for bin_sem2/sync2 × baseline/SUM+DMR
from full fault-space scans and checks the paper's shape:

* panel (a) vs (b): the unweighted coverage *underestimates* the
  weighted coverage for every variant, by several percentage points
  (the paper reports 9.1 up to 33.2 pp);
* panel (b): weighted coverage improves baseline → hardened for both
  benchmarks (which is exactly what makes the metric dangerous for
  sync2 — see the failure-count bench).
"""

from repro.analysis import Fig2Series, fig2_data, fig2_report
from repro.metrics import unweighted_coverage, weighted_coverage

PAIRS = [("bin_sem2", "bin_sem2-sumdmr"), ("sync2", "sync2-sumdmr")]


def test_fig2_coverage_panels(benchmark, fig2_summaries, output_dir):
    series = benchmark(fig2_data, fig2_summaries)
    by_name = {s.variant: s for s in series}

    # Shape 1: unweighted underestimates weighted, everywhere.
    for s in series:
        gap_pp = 100 * (s.coverage_weighted - s.coverage_unweighted)
        assert gap_pp > 3.0, (s.variant, gap_pp)

    # Shape 2: weighted coverage improves for both hardened variants.
    for base, hard in PAIRS:
        assert by_name[hard.replace("-sumdmr", "-sumdmr")] \
            .coverage_weighted > by_name[base].coverage_weighted

    (output_dir / "fig2_coverage.txt").write_text(
        fig2_report(series) + "\n")


def test_fig2_unweighted_coverage_bias_magnitude(benchmark,
                                                 fig2_summaries):
    benchmark(lambda: [unweighted_coverage(s)
                       for s in fig2_summaries.values()])
    """The bias spans a wide range across variants, as in the paper
    (9.1–33.2 pp there)."""
    gaps = []
    for summary in fig2_summaries.values():
        gaps.append(100 * (weighted_coverage(summary)
                           - unweighted_coverage(summary)))
    assert max(gaps) - min(gaps) > 5.0
    assert max(gaps) > 20.0


def test_fig2_coverage_metric_throughput(benchmark, fig2_summaries):
    """Metric derivation from stored summaries is cheap."""
    def compute():
        return [Fig2Series.from_summary(s)
                for s in fig2_summaries.values()]

    series = benchmark(compute)
    assert len(series) == 4
