"""Section III-C: def/use pruning effectiveness on real benchmarks.

The paper reports the sync2 baseline shrinking from a raw fault space of
w ≈ 1.5e8 to 19,553 experiments.  Our substrate is smaller, but the
benchmark checks the same structural claim: pruning reduces the
experiment count by orders of magnitude with zero loss of precision,
and measures partition-construction throughput.
"""

from repro.analysis import fig1_data
from repro.campaign import record_golden
from repro.faultspace import DefUsePartition
from repro.programs import bin_sem2, micro, sync2


def test_sec3c_pruning_effectiveness(benchmark, fig2_summaries,
                                     output_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Section III-C: def/use pruning effectiveness",
             f"{'program':18s} {'w':>12s} {'experiments':>12s} "
             f"{'reduction':>10s}"]
    for thunk in (bin_sem2.baseline, bin_sem2.hardened, sync2.baseline,
                  sync2.hardened):
        golden = record_golden(thunk())
        data = fig1_data(golden)
        lines.append(f"{data['program']:18s} "
                     f"{data['fault_space_size']:12d} "
                     f"{data['experiments']:12d} "
                     f"{data['reduction_factor']:9.1f}x")
        # Orders of magnitude, with full precision retained.
        assert data["reduction_factor"] > 50
        assert data["experiments"] < data["fault_space_size"] / 50
    (output_dir / "sec3c_pruning.txt").write_text("\n".join(lines) + "\n")


def test_sec3c_partition_construction_speed(benchmark):
    """Partition construction over the sync2 baseline trace."""
    golden = record_golden(sync2.baseline())

    def build():
        partition = DefUsePartition.from_trace(golden.trace,
                                               golden.fault_space)
        return partition.experiment_count

    experiments = benchmark(build)
    assert experiments > 0


def test_sec3c_trace_recording_overhead(benchmark):
    """Golden run with tracing vs. the raw interpreter (micro program)."""
    program = micro.memcopy(16)

    def traced_run():
        return record_golden(program).cycles

    cycles = benchmark(traced_run)
    assert cycles > 0
