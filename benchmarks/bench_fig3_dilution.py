"""Figure 3 / Section IV: the "Hi" benchmark and the dilution delusion.

Reproduces the paper's exact numbers:

* baseline: Δt = 8, w = 128, F = 48, c = 62.5 %;
* DFT (four NOPs): Δt = 12, w = 192, F = 48, c = 75.0 %;
* DFT′ (four dummy loads): same as DFT, and it also defeats the
  "count only activated faults" restriction;
* spatial dilution (unused RAM) inflates coverage just the same;
* the comparison ratio r stays exactly 1 for every dilution.
"""

import pytest

from repro.analysis import fig3_report
from repro.campaign import record_golden, run_full_scan
from repro.metrics import (
    activated_only_coverage,
    weighted_coverage,
    weighted_failure_count,
)
from repro.programs import hi


def test_fig3_exact_paper_numbers(benchmark, hi_summaries, output_dir):
    benchmark(lambda: fig3_report(hi_summaries))
    base = hi_summaries["hi"]
    dft = hi_summaries["hi-dft4"]
    prime = hi_summaries["hi-dftprime4"]
    mem = hi_summaries["hi-mem2"]

    assert base.cycles == 8
    assert base.fault_space_size == 128
    assert weighted_coverage(base) == pytest.approx(0.625)
    assert weighted_failure_count(base).total == 48

    assert dft.cycles == 12
    assert dft.fault_space_size == 192
    assert weighted_coverage(dft) == pytest.approx(0.75)
    assert weighted_failure_count(dft).total == 48

    assert weighted_coverage(prime) == pytest.approx(0.75)
    assert weighted_failure_count(prime).total == 48

    assert weighted_coverage(mem) > weighted_coverage(base)
    assert weighted_failure_count(mem).total == 48

    (output_dir / "fig3.txt").write_text(
        fig3_report(hi_summaries) + "\n")


def test_fig3_activated_only_restriction_defeated(benchmark,
                                                   hi_summaries):
    benchmark(lambda: activated_only_coverage(hi_summaries["hi"]))
    """Section IV-B: excluding never-activated faults catches DFT but
    not DFT′."""
    base = activated_only_coverage(hi_summaries["hi"])
    dft = activated_only_coverage(hi_summaries["hi-dft4"])
    prime = activated_only_coverage(hi_summaries["hi-dftprime4"])
    assert dft == pytest.approx(base)
    assert prime > base + 0.3


def test_fig3_full_scan_cost(benchmark):
    """End-to-end cost of a tiny full fault-space scan campaign."""
    def scan():
        return run_full_scan(record_golden(hi.baseline()))

    result = benchmark(scan)
    assert result.experiments_conducted == 16


def test_fig3_arbitrary_coverage_inflation(benchmark):
    """Section IV-B: 'we could arbitrarily increase the coverage to any
    c < 100% by inserting more NOPs'."""
    def coverage_sweep():
        out = []
        for nops in (0, 8, 32, 120):
            scan = run_full_scan(record_golden(hi.dft_variant(nops)))
            out.append(weighted_coverage(scan))
        return out

    coverages = benchmark.pedantic(coverage_sweep, rounds=1, iterations=1)
    assert coverages == sorted(coverages)
    assert coverages[-1] > 0.96
    assert all(c < 1.0 for c in coverages)
