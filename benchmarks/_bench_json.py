"""Machine-readable benchmark artifacts.

Benchmarks that track the performance trajectory of the engine write a
compact JSON summary next to their human-readable report: repo-root
``BENCH_<name>.json`` files that CI uploads as workflow artifacts, so
successive commits leave a comparable perf record without anyone
parsing free-form text.

The module name starts with an underscore so pytest (whose
``python_files`` pattern includes ``bench_*.py``) does not collect it
as a benchmark module.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Repository root — the parent of the ``benchmarks/`` directory.
REPO_ROOT = Path(__file__).resolve().parent.parent


def write_bench_json(name: str, payload: dict) -> Path:
    """Write ``payload`` to ``<repo-root>/BENCH_<name>.json``.

    Keys are sorted and floats should be pre-rounded by the caller so
    diffs between runs stay readable.  Returns the written path.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
