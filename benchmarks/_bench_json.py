"""Machine-readable benchmark artifacts.

Benchmarks that track the performance trajectory of the engine write a
compact JSON summary next to their human-readable report: repo-root
``BENCH_<name>.json`` files that CI uploads as workflow artifacts, so
successive commits leave a comparable perf record without anyone
parsing free-form text.

The module name starts with an underscore so pytest (whose
``python_files`` pattern includes ``bench_*.py``) does not collect it
as a benchmark module.
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path

#: Repository root — the parent of the ``benchmarks/`` directory.
REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_sha() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
        return proc.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def provenance() -> dict:
    """Commit and wall-clock identity of one benchmark run.

    Every ``BENCH_*.json`` carries this block so a perf number can be
    traced to the exact tree and time that produced it — two artifacts
    are only comparable when their ``git_sha`` differs and nothing else
    about the machine does.
    """
    return {
        "git_sha": _git_sha(),
        "written_at": datetime.now(timezone.utc)
        .isoformat(timespec="seconds"),
    }


def write_bench_json(name: str, payload: dict) -> Path:
    """Write ``payload`` to ``<repo-root>/BENCH_<name>.json``.

    Keys are sorted and floats should be pre-rounded by the caller so
    diffs between runs stay readable.  A ``provenance`` block (git SHA
    + UTC timestamp) is always stamped, overwriting any caller-supplied
    one so re-running an old artifact cannot keep a stale identity.
    Returns the written path.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    payload = dict(payload)
    payload["provenance"] = provenance()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
