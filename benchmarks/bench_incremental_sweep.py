"""Incremental hardening sweep: cold vs. warm variant comparison.

The compositional result store's payoff in one number: running the
four-variant ``guarded`` family (baseline, detect-only checksum,
SUM+DMR, TMR) against a warm section store must be at least 3× faster
than the cold sweep — every class composes from cached sections instead
of re-simulating — while remaining *bit-for-bit identical*: same
campaign results, same comparison table, byte-identical comparison CSV.

Writes ``benchmarks/output/incremental_sweep.txt`` (human-readable) and
repo-root ``BENCH_incremental_sweep.json`` (machine-readable, uploaded
by CI as a perf-trajectory artifact).
"""

import time

from _bench_json import write_bench_json

from repro.campaign import record_golden, run_full_scan
from repro.metrics import comparison_report, export_comparison_csv
from repro.programs import guarded

VARIANTS = guarded.VARIANT_NAMES
#: Loop count for the swept family: large enough that simulation
#: dominates the cold sweep (the warm one pays only store reads).
ITERATIONS = 10
MIN_SPEEDUP = 3.0


def _sweep(goldens, journal, *, resume):
    """One full sweep over the family; returns (results, seconds)."""
    results = {}
    start = time.perf_counter()
    for name in VARIANTS:
        results[name] = run_full_scan(goldens[name], journal=journal,
                                      resume=resume, keep_records=True)
    return results, time.perf_counter() - start


def _reports(results):
    baseline = results[VARIANTS[0]]
    return [comparison_report(name, baseline, results[name])
            for name in VARIANTS[1:]]


def test_warm_sweep_is_faster_and_bit_identical(tmp_path, output_dir):
    factories = {
        "guarded": guarded.baseline,
        "guarded-sum": guarded.sum_variant,
        "guarded-sumdmr": guarded.sumdmr_variant,
        "guarded-tmr": guarded.tmr_variant,
    }
    goldens = {name: record_golden(factory(ITERATIONS))
               for name, factory in factories.items()}
    journal = tmp_path / "sweep.sqlite"

    cold, cold_s = _sweep(goldens, journal, resume=True)
    # resume=False discards each campaign's own rows, so the warm sweep
    # must rebuild every result purely by composing from the section
    # store — the hardest version of the warm path.
    warm, warm_s = _sweep(goldens, journal, resume=False)

    composed = {}
    for name in VARIANTS:
        assert warm[name] == cold[name], name
        assert warm[name].execution.executed == 0, name
        assert warm[name].execution.composed_hits > 0, name
        composed[name] = warm[name].execution.composed_hits

    cold_csv = tmp_path / "cold.csv"
    warm_csv = tmp_path / "warm.csv"
    export_comparison_csv(_reports(cold), cold_csv)
    export_comparison_csv(_reports(warm), warm_csv)
    assert warm_csv.read_bytes() == cold_csv.read_bytes()

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert speedup >= MIN_SPEEDUP, (
        f"warm sweep only {speedup:.1f}x faster than cold "
        f"({warm_s:.3f}s vs {cold_s:.3f}s), expected >= {MIN_SPEEDUP}x")

    lines = [
        "incremental hardening sweep (guarded family, memory domain)",
        "===========================================================",
        f"variants                {', '.join(VARIANTS)}",
        f"cold sweep              {cold_s:.3f} s",
        f"warm sweep              {warm_s:.3f} s "
        f"({speedup:.1f}x faster)",
        f"experiments composed    "
        f"{sum(composed.values())} "
        f"({', '.join(f'{k}: {v}' for k, v in composed.items())})",
        "comparison CSV          byte-identical cold vs. warm",
    ]
    (output_dir / "incremental_sweep.txt").write_text(
        "\n".join(lines) + "\n")

    write_bench_json("incremental_sweep", {
        "variants": list(VARIANTS),
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(speedup, 2),
        "min_speedup_asserted": MIN_SPEEDUP,
        "composed_hits": composed,
        "total_units": {name: cold[name].execution.total_units
                        for name in VARIANTS},
        "comparison_csv_byte_identical": True,
    })


def test_variant_edit_recomputes_only_changed_sections(tmp_path):
    """The FastFlip scenario: after an edit to one section, the sweep
    composes the unchanged sections and re-executes only the classes
    the changed section owns.  Uses the entry-swap mutant (identical
    semantics, one changed section) in the register domain, where the
    mutated instruction's operand reads put live classes inside the
    changed section."""
    from repro.faultspace import build_section_map
    from repro.isa.assembler import assemble

    template = guarded.baseline(ITERATIONS).source.replace(
        "start:", "start: add  r4, r5, r6\n      ", 1)
    swapped = template.replace("add  r4, r5, r6", "add  r4, r6, r5", 1)
    golden_a = record_golden(assemble(template, name="edit-a",
                                      ram_size=4))
    golden_b = record_golden(assemble(swapped, name="edit-b",
                                      ram_size=4))
    journal = tmp_path / "edit.sqlite"
    run_full_scan(golden_a, domain="register", journal=journal)
    reference = run_full_scan(golden_b, domain="register",
                              keep_records=True)
    warm = run_full_scan(golden_b, domain="register", journal=journal,
                         keep_records=True)
    assert warm == reference
    changed_window = build_section_map(golden_b, "register") \
        .sections[0].last_slot
    changed = sum(1 for interval in warm.partition.live_classes()
                  if interval.injection_slot <= changed_window)
    assert warm.execution.executed == changed
    assert 0 < changed < warm.execution.total_units
    assert warm.execution.composed_hits \
        == (warm.execution.total_units - changed) * warm.domain.bits
