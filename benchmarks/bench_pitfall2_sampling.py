"""Pitfall 2: biased sampling vs. raw-fault-space sampling.

Quantifies, on a program with strongly size-skewed equivalence classes,
how far the biased class sampler's failure-proportion estimate drifts
from the full-scan ground truth while raw-uniform sampling converges.
"""

import pytest

from repro.campaign import record_golden, run_full_scan, run_sampling
from repro.metrics import weighted_coverage
from repro.programs import micro


@pytest.fixture(scope="module")
def golden():
    return record_golden(micro.memcopy(8))


@pytest.fixture(scope="module")
def truth(golden):
    return 1.0 - weighted_coverage(run_full_scan(golden))


def test_pitfall2_uniform_sampling_converges(benchmark, golden, truth):
    def estimate():
        result = run_sampling(golden, 1500, seed=0, sampler="uniform")
        return result.failure_count() / result.n_samples

    value = benchmark.pedantic(estimate, rounds=3, iterations=1)
    assert value == pytest.approx(truth, abs=0.04)


def test_pitfall2_biased_sampling_is_off(benchmark, golden, truth,
                                         output_dir):
    def estimate():
        result = run_sampling(golden, 1500, seed=0,
                              sampler="biased-class")
        return result.failure_count() / result.n_samples

    value = benchmark.pedantic(estimate, rounds=3, iterations=1)
    bias = abs(value - truth)
    assert bias > 0.05, (value, truth)
    (output_dir / "pitfall2_sampling.txt").write_text(
        "Pitfall 2: sampling estimator bias on memcopy8\n"
        f"ground truth failure proportion: {truth:.4f}\n"
        f"biased class-sampler estimate:   {value:.4f} "
        f"(bias {bias:+.4f})\n")


def test_pitfall2_sample_sharing_efficiency(benchmark, golden):
    """Def/use sharing: thousands of samples, far fewer experiments."""
    def run():
        result = run_sampling(golden, 4000, seed=1)
        return result.experiments_conducted

    experiments = benchmark.pedantic(run, rounds=3, iterations=1)
    assert experiments < 400
