"""Serial vs. parallel campaign wall-clock: the multi-process engine.

Measures a def/use-pruned full scan of the largest Figure 2 benchmark
(sync2) executed serially and with the slot-sharded multiprocessing
engine over a range of worker counts, writing the scaling curve to
``output/parallel_scan.txt``.  Every parallel run is also checked for
bit-for-bit equivalence with the serial result — speed must never buy
back exactness.

Scale knobs (environment):

``REPRO_BENCH_PARALLEL_SCALE=full``
    Paper-scale sync2 (items=10) instead of the quick default (items=4).
``REPRO_BENCH_PARALLEL_JOBS``
    Comma-separated worker counts (default: ``1,2,4`` plus the CPU count
    when larger).

The ≥2× speedup assertion at 4 workers only applies on machines with at
least 4 usable CPUs — a container pinned to one core cannot exhibit
multi-core scaling, but still exercises (and verifies) the engine.
"""

import os
import time

from repro.campaign import record_golden, run_full_scan
from repro.programs import sync2


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _worker_counts() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_PARALLEL_JOBS")
    if raw:
        return [int(part) for part in raw.split(",") if part.strip()]
    counts = [1, 2, 4]
    cpus = _usable_cpus()
    if cpus > 4:
        counts.append(cpus)
    return counts


def test_parallel_scan_scaling(output_dir):
    full_scale = os.environ.get("REPRO_BENCH_PARALLEL_SCALE") == "full"
    program = sync2.baseline() if full_scale else sync2.baseline(4)
    golden = record_golden(program)
    partition = golden.partition()

    start = time.perf_counter()
    serial = run_full_scan(golden, partition=partition)
    t_serial = time.perf_counter() - start

    rows = [("serial", 1, t_serial, 1.0)]
    speedups = {}
    for jobs in _worker_counts():
        start = time.perf_counter()
        parallel = run_full_scan(golden, partition=partition, jobs=jobs)
        t_parallel = time.perf_counter() - start
        assert list(parallel.class_outcomes.items()) \
            == list(serial.class_outcomes.items()), jobs
        assert parallel.weighted_counts() == serial.weighted_counts(), jobs
        speedups[jobs] = t_serial / t_parallel
        rows.append((f"jobs={jobs}", jobs, t_parallel, speedups[jobs]))

    cpus = _usable_cpus()
    lines = [
        f"parallel full scan of {program.name} "
        f"({'paper' if full_scale else 'quick'} scale)",
        f"Δt={golden.cycles} cycles, Δm={program.ram_size} bytes, "
        f"{len(partition.live_classes())} live classes, "
        f"{partition.experiment_count} experiments",
        f"usable CPUs: {cpus}",
        "",
        f"{'engine':10s} {'workers':>7s} {'wall-clock':>11s} "
        f"{'speedup':>8s}",
        "-" * 40,
    ]
    for label, jobs, elapsed, speedup in rows:
        lines.append(f"{label:10s} {jobs:7d} {elapsed:10.3f}s "
                     f"{speedup:7.2f}x")
    report = "\n".join(lines) + "\n"
    (output_dir / "parallel_scan.txt").write_text(report)
    print()
    print(report)

    if cpus >= 4 and 4 in speedups:
        assert speedups[4] >= 2.0, (
            f"expected >= 2x speedup at 4 workers on a {cpus}-CPU "
            f"machine, measured {speedups[4]:.2f}x")
