"""Campaign-engine wall-clock: parallel scaling and convergence A/B.

Two experiments over def/use-pruned full scans of the Figure 2
benchmarks, with a human-readable report in
``output/parallel_scan.txt`` and a machine-readable perf trajectory in
repo-root ``BENCH_parallel_scan.json`` (uploaded by CI as an artifact):

* **Parallel scaling** — the largest baseline variant executed
  serially and with the slot-sharded multiprocessing engine over a
  range of worker counts.
* **Convergence A/B** — the SUM+DMR-hardened variant scanned with the
  convergence early-exit system (checkpoint-digest ladder, masked
  probes, criticality pre-skip) enabled and disabled.  The enabled
  scan must be at least 2× faster *and* bit-for-bit identical: same
  ``CampaignResult``, same exported CSV bytes — speed must never buy
  back exactness.

Scale knobs (environment):

``REPRO_BENCH_PARALLEL_SCALE=full``
    Paper-scale sync2 (items=10) instead of the quick default (items=4).
``REPRO_BENCH_PARALLEL_JOBS``
    Comma-separated worker counts (default: ``1,2,4`` plus the CPU count
    when larger).

The ≥2× parallel-speedup assertion at 4 workers only applies on
machines with at least 4 usable CPUs — a container pinned to one core
cannot exhibit multi-core scaling, but still exercises (and verifies)
the engine.  Worker counts above the usable CPUs are marked
``oversubscribed: true`` in the JSON so trajectory consumers skip
them instead of reading scheduler contention as a scaling regression.  The ≥2× convergence-speedup assertion has no such caveat:
it is a single-process property of the executor.
"""

import json
import os
import time

from _bench_json import write_bench_json

from repro.campaign import (
    ExecutorConfig,
    export_class_results_csv,
    record_golden,
    run_full_scan,
)
from repro.programs import sync2


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _worker_counts() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_PARALLEL_JOBS")
    if raw:
        return [int(part) for part in raw.split(",") if part.strip()]
    counts = [1, 2, 4]
    cpus = _usable_cpus()
    if cpus > 4:
        counts.append(cpus)
    return counts


def _full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_PARALLEL_SCALE") == "full"


def _merge_bench_json(section: str, payload: dict) -> None:
    """Update one section of BENCH_parallel_scan.json, keeping the other."""
    from _bench_json import REPO_ROOT
    path = REPO_ROOT / "BENCH_parallel_scan.json"
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    write_bench_json("parallel_scan", data)


def test_parallel_scan_scaling(output_dir):
    program = sync2.baseline() if _full_scale() else sync2.baseline(4)
    golden = record_golden(program)
    partition = golden.partition()

    start = time.perf_counter()
    serial = run_full_scan(golden, partition=partition)
    t_serial = time.perf_counter() - start

    cpus = _usable_cpus()
    rows = [("serial", 1, t_serial, 1.0, False)]
    speedups = {}
    for jobs in _worker_counts():
        # A worker count above the usable CPUs cannot scale — it only
        # measures scheduler contention.  Still run it once (the
        # bit-identity assertion is engine coverage either way) but
        # mark the record so the JSON trajectory and the CI A/B job
        # don't read a pinned-to-one-core container as a regression.
        oversubscribed = jobs > cpus
        start = time.perf_counter()
        parallel = run_full_scan(golden, partition=partition, jobs=jobs)
        t_parallel = time.perf_counter() - start
        assert list(parallel.class_outcomes.items()) \
            == list(serial.class_outcomes.items()), jobs
        assert parallel.weighted_counts() == serial.weighted_counts(), jobs
        if not oversubscribed:
            speedups[jobs] = t_serial / t_parallel
        rows.append((f"jobs={jobs}", jobs, t_parallel,
                     t_serial / t_parallel, oversubscribed))

    experiments = partition.experiment_count
    lines = [
        f"parallel full scan of {program.name} "
        f"({'paper' if _full_scale() else 'quick'} scale)",
        f"Δt={golden.cycles} cycles, Δm={program.ram_size} bytes, "
        f"{len(partition.live_classes())} live classes, "
        f"{experiments} experiments",
        f"usable CPUs: {cpus}",
        "",
        f"{'engine':10s} {'workers':>7s} {'wall-clock':>11s} "
        f"{'speedup':>8s}",
        "-" * 40,
    ]
    for label, jobs, elapsed, speedup, oversubscribed in rows:
        suffix = "  (oversubscribed)" if oversubscribed else ""
        lines.append(f"{label:10s} {jobs:7d} {elapsed:10.3f}s "
                     f"{speedup:7.2f}x{suffix}")
    report = "\n".join(lines) + "\n"
    (output_dir / "parallel_scan.txt").write_text(report)
    print()
    print(report)

    _merge_bench_json("scaling", {
        "program": program.name,
        "golden_cycles": golden.cycles,
        "experiments": experiments,
        "usable_cpus": cpus,
        "serial_seconds": round(t_serial, 3),
        "runs": [
            {"workers": jobs, "wall_clock_seconds": round(elapsed, 3),
             "speedup": round(speedup, 2),
             "oversubscribed": oversubscribed}
            for _, jobs, elapsed, speedup, oversubscribed in rows
        ],
    })

    if cpus >= 4 and 4 in speedups:
        assert speedups[4] >= 2.0, (
            f"expected >= 2x speedup at 4 workers on a {cpus}-CPU "
            f"machine, measured {speedups[4]:.2f}x")


def test_convergence_ab(output_dir, tmp_path):
    """Convergence on/off: ≥2× faster, bit-for-bit identical.

    The timing A/B is pinned to the interpreter engine: it isolates
    the convergence subsystem, and the ≥2× floor was calibrated
    against interpreter-speed tail cycles.  Under the compiled engine
    the saved cycles are ~15× cheaper while the digest probes are
    not, so the win shrinks with Δt (measured 0.7–1.1× at quick
    scale — see EXPERIMENTS.md); those numbers are recorded in the
    JSON artifact without a floor.  Exactness is asserted for both
    engines.
    """
    program = sync2.hardened() if _full_scale() else sync2.hardened(2)
    golden = record_golden(program)
    partition = golden.partition()

    start = time.perf_counter()
    on = run_full_scan(golden, partition=partition,
                       config=ExecutorConfig(use_convergence=True,
                                             engine="interp"))
    t_on = time.perf_counter() - start
    start = time.perf_counter()
    off = run_full_scan(golden, partition=partition,
                        config=ExecutorConfig(use_convergence=False,
                                              engine="interp"))
    t_off = time.perf_counter() - start

    start = time.perf_counter()
    on_jit = run_full_scan(golden, partition=partition,
                           config=ExecutorConfig(use_convergence=True,
                                                 engine="compiled"))
    t_on_jit = time.perf_counter() - start
    start = time.perf_counter()
    off_jit = run_full_scan(golden, partition=partition,
                            config=ExecutorConfig(use_convergence=False,
                                                  engine="compiled"))
    t_off_jit = time.perf_counter() - start
    assert on_jit == on and off_jit == off, \
        "compiled engine changed campaign outcomes"

    # Exactness first: the optimized scan must be indistinguishable.
    assert on == off, "convergence early-exit changed campaign outcomes"
    on_csv, off_csv = tmp_path / "on.csv", tmp_path / "off.csv"
    export_class_results_csv(on, on_csv)
    export_class_results_csv(off, off_csv)
    assert on_csv.read_bytes() == off_csv.read_bytes(), \
        "convergence early-exit changed exported CSV bytes"

    experiments = partition.experiment_count
    conv = on.execution.convergence_hits
    skips = on.execution.slice_hits
    speedup = t_off / t_on
    hit_rate = (conv + skips) / experiments

    lines = [
        f"convergence A/B on {program.name} "
        f"({'paper' if _full_scale() else 'quick'} scale)",
        f"Δt={golden.cycles} cycles, {experiments} experiments",
        f"  convergence on : {t_on:8.3f}s "
        f"({experiments / t_on:8.0f} experiments/s)",
        f"  convergence off: {t_off:8.3f}s "
        f"({experiments / t_off:8.0f} experiments/s)",
        f"  speedup: {speedup:.2f}x",
        f"  ladder hits: {conv} ({conv / experiments:.1%}), "
        f"criticality pre-skips: {skips} ({skips / experiments:.1%})",
        f"  combined hit rate: {hit_rate:.1%}",
        f"  compiled engine  : on {t_on_jit:.3f}s / off {t_off_jit:.3f}s "
        f"({t_off_jit / t_on_jit:.2f}x)",
    ]
    report = "\n".join(lines) + "\n"
    with (output_dir / "parallel_scan.txt").open("a") as fh:
        fh.write("\n" + report)
    print()
    print(report)

    _merge_bench_json("convergence_ab", {
        "program": program.name,
        "golden_cycles": golden.cycles,
        "experiments": experiments,
        "wall_clock_on_seconds": round(t_on, 3),
        "wall_clock_off_seconds": round(t_off, 3),
        "experiments_per_second_on": round(experiments / t_on, 1),
        "experiments_per_second_off": round(experiments / t_off, 1),
        "speedup": round(speedup, 2),
        "convergence_hits": conv,
        "slice_hits": skips,
        "hit_rate": round(hit_rate, 4),
        "compiled_wall_clock_on_seconds": round(t_on_jit, 3),
        "compiled_wall_clock_off_seconds": round(t_off_jit, 3),
        "compiled_speedup": round(t_off_jit / t_on_jit, 2),
    })

    # Floor: full scale has a long post-injection tail and comfortably
    # clears 2x; quick scale (Δt ~ 2k cycles) hovers around 1.8-2.3x
    # depending on host load, so its floor is set where only a genuine
    # convergence regression (ratio ~ 1.0) can land.
    floor = 2.0 if _full_scale() else 1.5
    assert speedup >= floor, (
        f"expected the convergence early-exit to cut the scan at least "
        f"{floor}x, measured {speedup:.2f}x")
