"""Figure 2(g): runtime (CPU cycles) and memory usage of the variants.

Checks the overhead shape the paper reports: both hardened variants pay
runtime and memory overhead, and sync2's hardened runtime is *extremely*
increased relative to its baseline — the driver of its failure-count
degradation.
"""

from repro.campaign import record_golden
from repro.programs import bin_sem2, sync2


def test_fig2_runtime_and_memory(benchmark, fig2_summaries, output_dir):
    benchmark(lambda: [(s.cycles, s.ram_bytes)
                       for s in fig2_summaries.values()])
    rows = []
    for name, summary in fig2_summaries.items():
        rows.append((name, summary.cycles, summary.ram_bytes))
    by_name = {name: (cycles, ram) for name, cycles, ram in rows}

    for base_name in ("bin_sem2", "sync2"):
        base_cycles, base_ram = by_name[base_name]
        hard_cycles, hard_ram = by_name[f"{base_name}-sumdmr"]
        assert hard_cycles > base_cycles
        assert hard_ram > base_ram

    # sync2's hallmark: an extreme runtime increase.
    sync2_ratio = by_name["sync2-sumdmr"][0] / by_name["sync2"][0]
    assert sync2_ratio > 3.0, sync2_ratio

    lines = ["Figure 2(g): runtime and memory usage",
             f"{'variant':18s} {'cycles':>8s} {'RAM bytes':>10s}"]
    for name, cycles, ram in rows:
        lines.append(f"{name:18s} {cycles:8d} {ram:10d}")
    lines.append(f"\nsync2 hardened/baseline runtime ratio: "
                 f"{sync2_ratio:.2f}x")
    (output_dir / "fig2_runtime.txt").write_text("\n".join(lines) + "\n")


def test_golden_run_cost_bin_sem2(benchmark):
    """Golden-run recording cost for the baseline kernel benchmark."""
    golden = benchmark(lambda: record_golden(bin_sem2.baseline()))
    assert golden.output.endswith(b"!")


def test_golden_run_cost_sync2_hardened(benchmark):
    """Golden-run recording cost for the heaviest variant."""
    benchmark.pedantic(lambda: record_golden(sync2.hardened()),
                       rounds=2, iterations=1)
