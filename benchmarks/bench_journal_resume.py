"""Journal crash-tolerance smoke: interrupt, kill, resume, verify.

Not a paper figure — this exercises the durable experiment journal the
way a real long campaign would hit it: a scan is interrupted partway
(and, separately, a worker process is killed mid-shard), then resumed
from the journal.  The resumed result must be bit-for-bit identical to
an uninterrupted run, and the resume must re-execute only the missing
work units.

Also reports the resume-time saving to ``output/journal_resume.txt``:
the fraction of experiments replayed from the journal is the fraction
of campaign wall-clock a crash no longer costs.
"""

import os
import time

from repro.campaign import RetryPolicy, record_golden, run_full_scan
from repro.programs import hi, sync2


def _program():
    if os.environ.get("REPRO_BENCH_JOURNAL_SCALE") == "full":
        return sync2.baseline(items=4)
    return hi.baseline()


class _Interrupt(Exception):
    pass


def test_interrupted_scan_resumes_bit_for_bit(tmp_path, output_dir):
    golden = record_golden(_program())
    baseline = run_full_scan(golden, keep_records=True)
    total = baseline.execution.total_units
    journal = tmp_path / "journal.sqlite"
    kill_after = max(1, total // 2)

    def bomb(done, _total):
        if done >= kill_after:
            raise _Interrupt

    start = time.perf_counter()
    try:
        run_full_scan(golden, journal=journal, keep_records=True,
                      progress=bomb)
        raise AssertionError("interrupt never fired")
    except _Interrupt:
        pass
    first_leg = time.perf_counter() - start

    start = time.perf_counter()
    resumed = run_full_scan(golden, journal=journal, keep_records=True)
    second_leg = time.perf_counter() - start

    assert resumed == baseline
    assert resumed.execution.resumed >= kill_after
    assert resumed.execution.executed \
        == total - resumed.execution.resumed

    lines = [
        "journal crash-tolerance smoke",
        "=============================",
        f"work units              {total}",
        f"interrupted after       {kill_after}",
        f"resumed from journal    {resumed.execution.resumed}",
        f"re-executed             {resumed.execution.executed}",
        f"first leg (crashed)     {first_leg:.3f} s",
        f"resume leg              {second_leg:.3f} s",
    ]
    (output_dir / "journal_resume.txt").write_text("\n".join(lines) + "\n")


def test_killed_worker_is_retried_and_result_unchanged(tmp_path):
    """SIGKILL a shard worker mid-campaign; retry must restore exactness."""
    golden = record_golden(_program())
    baseline = run_full_scan(golden, keep_records=True)
    os.environ["REPRO_CHAOS"] = \
        '{"die": [[0, 0]], "die_delay": 0.2}'
    try:
        survived = run_full_scan(
            golden, jobs=2, keep_records=True,
            journal=tmp_path / "chaos.sqlite",
            policy=RetryPolicy(backoff=0.05))
    finally:
        del os.environ["REPRO_CHAOS"]
    assert survived == baseline
    assert survived.execution.shard_retries >= 1
    assert survived.execution.complete
