"""Pitfall 3, Corollary 2: extrapolating sampled counts to the fault space.

Sweeps the sample count and shows the extrapolated absolute failure
count F converging to the full-scan ground truth, for both the raw
population w and the reduced live-only population w′ (Corollary 1
refinement); raw sample counts, by contrast, just track N_sampled.
"""

import pytest

from repro.campaign import record_golden, run_full_scan, run_sampling
from repro.metrics import (
    extrapolated_failure_count,
    extrapolated_failure_interval,
    raw_sample_failure_count,
    weighted_failure_count,
)
from repro.programs import micro


@pytest.fixture(scope="module")
def golden():
    return record_golden(micro.checksum_loop(4))


@pytest.fixture(scope="module")
def exact_f(golden):
    return weighted_failure_count(run_full_scan(golden)).total


def test_pitfall3_extrapolation_converges(benchmark, golden, exact_f,
                                          output_dir):
    def sweep():
        rows = []
        for n in (200, 800, 3200):
            result = run_sampling(golden, n, seed=3)
            estimate = extrapolated_failure_count(result).total
            interval = extrapolated_failure_interval(result, 0.95)
            raw = raw_sample_failure_count(result).total
            rows.append((n, raw, estimate, interval))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Raw counts scale with N; extrapolated counts approach the truth.
    assert rows[-1][1] > 8 * rows[0][1]
    assert rows[-1][2] == pytest.approx(exact_f, rel=0.1)
    assert rows[-1][3].contains(exact_f)

    lines = ["Pitfall 3, Corollary 2: extrapolation sweep "
             f"(ground truth F = {exact_f:.0f})",
             f"{'N':>6s} {'F_raw':>8s} {'F_extrapolated':>15s} "
             f"{'95% CI':>20s}"]
    for n, raw, estimate, interval in rows:
        lines.append(f"{n:6d} {raw:8.0f} {estimate:15.1f} "
                     f"[{interval.low:8.1f}, {interval.high:8.1f}]")
    (output_dir / "pitfall3_extrapolation.txt").write_text(
        "\n".join(lines) + "\n")


def test_pitfall3_live_only_population_ablation(benchmark, golden,
                                                exact_f):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Sampling from w′ (live coordinates only) must extrapolate to the
    same F, with fewer wasted samples."""
    raw_space = run_sampling(golden, 2000, seed=5, sampler="uniform")
    live_only = run_sampling(golden, 2000, seed=5, sampler="live-only")
    f_raw = extrapolated_failure_count(raw_space).total
    f_live = extrapolated_failure_count(live_only).total
    assert f_raw == pytest.approx(exact_f, rel=0.15)
    assert f_live == pytest.approx(exact_f, rel=0.15)
    # Every live-only sample needed an experiment outcome; none were
    # spent on a-priori-known No Effect coordinates.
    assert live_only.population < raw_space.population


def test_pitfall3_sampling_campaign_cost(benchmark, golden):
    """End-to-end sampled-campaign cost (1000 samples)."""
    def run():
        return run_sampling(golden, 1000, seed=9).failure_count()

    failures = benchmark.pedantic(run, rounds=3, iterations=1)
    assert failures > 0
