"""Shared fixtures for the benchmark harness.

The paper-scale campaigns (full fault-space scans of the four Figure 2
variants) take minutes; their summaries are cached on disk under
``benchmarks/.cache`` keyed by program content, so repeated benchmark
runs only pay the cost once.  Reports regenerated from the results are
written to ``benchmarks/output/`` as plain-text artifacts.
"""

from pathlib import Path

import pytest

from repro.campaign import (
    CampaignCache,
    CampaignSummary,
    record_golden,
    run_full_scan,
)
from repro.programs import bin_sem2, hi, sync2

CACHE_DIR = Path(__file__).parent / ".cache"
OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def campaign_cache() -> CampaignCache:
    return CampaignCache(CACHE_DIR)


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


def _scan_summary(cache: CampaignCache, program) -> CampaignSummary:
    return cache.get_or_run(
        program, lambda: run_full_scan(record_golden(program)))


@pytest.fixture(scope="session")
def fig2_summaries(campaign_cache) -> dict:
    """Full-scan summaries of the four Figure 2 variants (paper scale)."""
    return {
        "bin_sem2": _scan_summary(campaign_cache, bin_sem2.baseline()),
        "bin_sem2-sumdmr": _scan_summary(campaign_cache,
                                         bin_sem2.hardened()),
        "sync2": _scan_summary(campaign_cache, sync2.baseline()),
        "sync2-sumdmr": _scan_summary(campaign_cache, sync2.hardened()),
    }


@pytest.fixture(scope="session")
def hi_summaries(campaign_cache) -> dict:
    """Full-scan summaries of the Section IV variants."""
    return {
        "hi": _scan_summary(campaign_cache, hi.baseline()),
        "hi-dft4": _scan_summary(campaign_cache, hi.dft_variant(4)),
        "hi-dftprime4": _scan_summary(campaign_cache,
                                      hi.dft_prime_variant(4)),
        "hi-mem2": _scan_summary(campaign_cache,
                                 hi.memory_diluted_variant(2)),
    }


@pytest.fixture(scope="session")
def hi_golden():
    return record_golden(hi.baseline())
