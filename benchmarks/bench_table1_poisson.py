"""Table I: Poisson probabilities for k independent faults per run.

Regenerates the table from the published FIT rates and the paper's
Δt = 1 s / Δm = 2^20 bit parametrization, checks its shape (P(0) ≈ 1,
each subsequent k at least twelve orders of magnitude rarer) and writes
the rendered table to ``benchmarks/output/table1.txt``.
"""

import pytest

from repro.analysis import table1_data, table1_report
from repro.metrics import PoissonFaultModel, paper_table1_model


def test_table1_poisson(benchmark, output_dir):
    rows = benchmark(table1_data, 5)
    by_k = {row["k"]: row["probability"] for row in rows}
    assert by_k[0] == pytest.approx(1.0, abs=1e-10)
    assert by_k[1] == pytest.approx(1.66e-14, rel=0.02)
    for k in range(1, 5):
        assert by_k[k + 1] < by_k[k] * 1e-12
    (output_dir / "table1.txt").write_text(table1_report() + "\n")


def test_single_fault_dominance_footnote(benchmark):
    """The paper's footnote 4: even at g = 1e-20 the gap between one and
    two faults exceeds four orders of magnitude."""
    model = PoissonFaultModel(rate=1e-20,
                              fault_space_size=10 ** 9 * 2 ** 20)
    dominance = benchmark(model.single_fault_dominance)
    assert dominance > 1e4


def test_failure_probability_derivation(benchmark):
    """Equations 5-6: P(Failure) ∝ F with negligible error."""
    model = paper_table1_model()
    p = benchmark(model.failure_probability, 12345)
    assert p == pytest.approx(12345 * model.rate, rel=1e-9)
    assert model.proportionality_error() < 1e-12
