"""Distributed-fabric wall-clock: worker scaling and node-loss overhead.

Full def/use-pruned scans of the sync2 baseline run through the
coordinator/worker fabric with real ``python -m repro worker``
subprocesses over loopback, at 1, 2 and 4 workers, each checked
bit-for-bit against the serial ground truth (same ``CampaignResult``,
same CSV bytes).  A final chaos run SIGKILLs one of two workers
mid-campaign and asserts the surviving fabric still converges to the
identical result — the robustness the fabric exists for, measured
rather than assumed.

Human-readable report in ``output/dist_scan.txt``; machine-readable
perf trajectory in repo-root ``BENCH_dist_scan.json`` (uploaded by CI
as an artifact, stamped with git SHA + timestamp by the shared
``_bench_json`` writer).

Scale knobs (environment):

``REPRO_BENCH_DIST_SCALE=full``
    Paper-scale sync2 (items=10) instead of the quick default (items=2).
``REPRO_BENCH_DIST_WORKERS``
    Comma-separated worker counts (default: ``1,2,4``).

On a single-core container the fabric cannot exhibit scaling — worker
subprocesses time-share one CPU — but the equality and chaos
assertions hold regardless, which is the point: correctness properties
must not depend on the machine being generous.
"""

import json
import os
import signal
import socket
import threading
import time

from _bench_json import write_bench_json

from repro.campaign import (
    RetryPolicy,
    export_class_results_csv,
    record_golden,
    run_full_scan,
)
from repro.campaign.dist import run_distributed_scan
from repro.campaign.dist.coordinator import DistCoordinator, serve_in_thread
from repro.programs import sync2

#: Snappy failure detection for loopback chaos runs.
POLICY = RetryPolicy(heartbeat=0.5, poll_interval=0.05, backoff=0.1)


def _full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_DIST_SCALE") == "full"


def _worker_counts() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_DIST_WORKERS")
    if raw:
        return [int(part) for part in raw.split(",") if part.strip()]
    return [1, 2, 4]


def test_dist_scan_scaling(output_dir, tmp_path):
    program = sync2.baseline() if _full_scale() else sync2.baseline(2)
    golden = record_golden(program)

    start = time.perf_counter()
    serial = run_full_scan(golden, keep_records=True)
    t_serial = time.perf_counter() - start
    serial_csv = tmp_path / "serial.csv"
    export_class_results_csv(serial, serial_csv)

    rows = [("serial", 1, t_serial, 1.0)]
    for workers in _worker_counts():
        start = time.perf_counter()
        dist = run_distributed_scan(golden, workers=workers,
                                    keep_records=True, policy=POLICY)
        elapsed = time.perf_counter() - start
        assert dist == serial, workers
        assert dist.records == serial.records, workers
        dist_csv = tmp_path / f"dist{workers}.csv"
        export_class_results_csv(dist, dist_csv)
        assert dist_csv.read_bytes() == serial_csv.read_bytes(), workers
        rows.append((f"workers={workers}", workers, elapsed,
                     t_serial / elapsed))

    live = len(serial.class_outcomes)
    lines = [
        f"distributed full scan of {program.name} "
        f"({'paper' if _full_scale() else 'quick'} scale)",
        f"Δt={golden.cycles} cycles, {live} live classes; every run "
        f"verified bit-for-bit against serial (result + CSV bytes)",
        "",
        f"{'engine':12s} {'workers':>7s} {'wall-clock':>11s} "
        f"{'speedup':>8s}",
        "-" * 42,
    ]
    for label, workers, elapsed, speedup in rows:
        lines.append(f"{label:12s} {workers:7d} {elapsed:10.3f}s "
                     f"{speedup:7.2f}x")
    report = "\n".join(lines) + "\n"
    (output_dir / "dist_scan.txt").write_text(report)
    print()
    print(report)

    write_bench_json("dist_scan", {
        "program": program.name,
        "golden_cycles": golden.cycles,
        "live_classes": live,
        "serial_seconds": round(t_serial, 3),
        "runs": [
            {"workers": workers,
             "wall_clock_seconds": round(elapsed, 3),
             "speedup": round(speedup, 2)}
            for _, workers, elapsed, speedup in rows[1:]
        ],
    })


def test_dist_scan_survives_sigkill(output_dir, tmp_path):
    """Two workers, one SIGKILLed mid-campaign: identical CSV anyway."""
    program = sync2.baseline() if _full_scale() else sync2.baseline(2)
    golden = record_golden(program)
    serial = run_full_scan(golden, keep_records=True)
    serial_csv = tmp_path / "serial.csv"
    export_class_results_csv(serial, serial_csv)

    sock = socket.create_server(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    progressed = threading.Event()
    coordinator = DistCoordinator(
        golden, sock=sock, policy=POLICY, keep_records=True,
        progress=lambda done, total: progressed.set() if done >= 2
        else None)
    thread = serve_in_thread(coordinator)

    import subprocess
    import sys

    import repro

    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))

    def spawn(name):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"127.0.0.1:{port}", "--name", name],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)

    start = time.perf_counter()
    victim, survivor = spawn("victim"), spawn("survivor")
    try:
        assert progressed.wait(120), "no progress before the kill"
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=10)
        result = thread.join_result(600)
    finally:
        for proc in (victim, survivor):
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    elapsed = time.perf_counter() - start

    assert victim.returncode == -signal.SIGKILL
    assert result == serial
    assert result.execution.complete
    chaos_csv = tmp_path / "chaos.csv"
    export_class_results_csv(result, chaos_csv)
    assert chaos_csv.read_bytes() == serial_csv.read_bytes()

    report = (
        f"node-loss chaos on {program.name}: one of two workers "
        f"SIGKILLed mid-campaign\n"
        f"  wall-clock {elapsed:.3f}s, "
        f"{result.execution.shard_retries} shard retries, "
        f"workers={dict(result.execution.workers)}\n"
        f"  final CSV byte-identical to serial: yes\n")
    with (output_dir / "dist_scan.txt").open("a") as fh:
        fh.write("\n" + report)
    print()
    print(report)

    from _bench_json import REPO_ROOT

    artifact = REPO_ROOT / "BENCH_dist_scan.json"
    data = {}
    if artifact.exists():
        try:
            data = json.loads(artifact.read_text())
        except json.JSONDecodeError:
            data = {}
    data["chaos"] = {
        "wall_clock_seconds": round(elapsed, 3),
        "shard_retries": result.execution.shard_retries,
        "csv_byte_identical": True,
    }
    write_bench_json("dist_scan", data)
