"""Ablation: snapshot fast-forward vs. naive re-execution in campaigns.

DESIGN.md calls this design choice out: executing experiments in
ascending injection-slot order and forking the pristine machine from
snapshots turns the pre-injection cost from O(experiments × Δt) into
O(Δt).  This benchmark measures both paths on the same campaign.
"""

import pytest

from repro.campaign import (
    ExperimentExecutor,
    record_golden,
    run_full_scan,
)
from repro.programs import micro


@pytest.fixture(scope="module")
def golden():
    return record_golden(micro.memcopy(12))


@pytest.fixture(scope="module")
def partition(golden):
    return golden.partition()


def _scan(golden, partition, use_snapshots):
    executor = ExperimentExecutor(golden, use_snapshots=use_snapshots)
    return run_full_scan(golden, partition=partition, executor=executor)


def test_ablation_snapshot_fast_forward(benchmark, golden, partition):
    result = benchmark.pedantic(
        lambda: _scan(golden, partition, True), rounds=3, iterations=1)
    assert result.experiments_conducted == partition.experiment_count


def test_ablation_naive_reexecution(benchmark, golden, partition):
    result = benchmark.pedantic(
        lambda: _scan(golden, partition, False), rounds=3, iterations=1)
    assert result.experiments_conducted == partition.experiment_count


def test_ablation_paths_agree_exactly(benchmark, golden, partition):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fast = _scan(golden, partition, True)
    slow = _scan(golden, partition, False)
    assert fast.class_outcomes == slow.class_outcomes
