"""Figure 1: def/use equivalence classes extracted from a program trace.

The paper's illustrative fault space (Figure 1a/1b) shows the pruning of
a write-at-4 / read-at-11 pattern over a 12-cycle run.  This benchmark
regenerates the same structure from a real trace of an equivalent
program, measures partition construction, and writes the rendered
fault-space diagrams to ``benchmarks/output/fig1.txt``.
"""

import pytest

from repro.analysis import fig1_data, render_fault_space
from repro.campaign import record_golden
from repro.faultspace import DefUsePartition
from repro.isa import assemble

#: Write a byte early, read it late, pad the run to 12 cycles — the
#: temporal structure of the paper's Figure 1 example.
FIG1_SOURCE = """
        .data
cell:   .byte 0
        .text
start:  nop
        nop
        li   r1, 0x5A
        sb   r1, cell(zero)
        nop
        nop
        nop
        nop
        nop
        nop
        lbu  r2, cell(zero)
        out  r2
"""


@pytest.fixture(scope="module")
def fig1_golden():
    return record_golden(assemble(FIG1_SOURCE, name="fig1", ram_size=1))


def test_fig1_partition_structure(benchmark, fig1_golden, output_dir):
    partition = benchmark(
        lambda: DefUsePartition.from_trace(fig1_golden.trace,
                                           fig1_golden.fault_space))
    partition.validate()
    data = fig1_data(fig1_golden, partition)
    # 12 cycles x 8 bits = 96 coordinates; a single live class (the
    # write->read window, 7 cycles long) needs 8 experiments.
    assert data["cycles"] == 12
    assert data["fault_space_size"] == 96
    assert data["experiments"] == 8
    assert data["reduction_factor"] == pytest.approx(12.0)
    live = partition.live_classes()
    assert len(live) == 1
    assert (live[0].first_slot, live[0].last_slot) == (5, 11)
    assert live[0].length == 7
    art = render_fault_space(fig1_golden)
    (output_dir / "fig1.txt").write_text(
        "Figure 1: def/use equivalence classes "
        "(W/R = accesses, # = live, . = known No Effect)\n\n"
        + art + f"\n\n{data}\n")


def test_fig1_locate_throughput(benchmark, fig1_golden):
    """Coordinate-to-class lookup is the sampling hot path."""
    partition = fig1_golden.partition()
    space = fig1_golden.fault_space
    coords = [space.coordinate(i) for i in range(space.size)]

    def locate_all():
        return sum(1 for c in coords
                   if partition.locate(c).kind == "live")

    live_hits = benchmark(locate_all)
    assert live_hits == 7 * 8
