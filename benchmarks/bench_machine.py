"""Substrate microbenchmarks: engines, snapshots, assembler.

Not a paper figure — these measure the simulator substrate itself so
performance regressions in the machine show up independently of the
campaign-level benchmarks.  The throughput tests write (and
incrementally merge) ``BENCH_machine.json`` at the repo root (see
``_bench_json``) so the cycles/second trajectory of every engine tier
is tracked commit over commit.

``test_compiled_throughput`` doubles as the acceptance gate for the
compiled execution core: the template-JIT must sustain at least 10×
the interpreter's throughput on the same loop, measured back-to-back
under identical conditions (steady state — machines are reused via
``reset()``, the way campaign executors use them).
"""

import time

from _bench_json import write_bench_json

from repro.campaign import ExecutorConfig, record_golden, run_full_scan
from repro.engine.batch import LockstepLanes
from repro.engine.compiled import CompiledMachine
from repro.engine.fused import compile_fused
from repro.faultspace import get_domain
from repro.isa import Assembler, Machine, assemble
from repro.programs import chain, hi, micro, msgq, prio, sync2

LOOP_SOURCE = """
        .data
v:      .word 0
        .text
start:  li   r3, 2000
loop:   lw   r1, v(zero)
        addi r1, r1, 1
        sw   r1, v(zero)
        addi r3, r3, -1
        bnez r3, loop
        halt
"""

LOOP_CYCLES = 2 + 5 * 2000

#: Merged across the throughput tests, rewritten after each one, so a
#: partial run still leaves a valid artifact.
_PAYLOAD: dict = {}


def _record(section: str, payload: dict) -> None:
    _PAYLOAD[section] = payload
    write_bench_json("machine", _PAYLOAD)


def _steady_cps(machine, repeats: int = 7) -> float:
    """Best-of-N steady-state throughput of one reused machine."""
    best = float("inf")
    for _ in range(repeats):
        machine.reset()
        start = time.perf_counter()
        machine.run(100_000)
        best = min(best, time.perf_counter() - start)
        assert machine.cycle == LOOP_CYCLES
    return LOOP_CYCLES / best


def test_interpreter_throughput(benchmark):
    program = assemble(LOOP_SOURCE, ram_size=4)

    def run():
        machine = Machine(program)
        machine.run(100_000)
        return machine.cycle

    cycles = benchmark(run)
    assert cycles == LOOP_CYCLES
    if benchmark.stats is not None:
        mean = benchmark.stats.stats.mean
    else:
        # --benchmark-disable (CI smoke): time one run by hand so the
        # JSON artifact still gets written and uploaded.
        start = time.perf_counter()
        run()
        mean = time.perf_counter() - start
    _record("interpreter", {
        "benchmark": "interpreter_throughput",
        "cycles_per_run": cycles,
        "mean_seconds": round(mean, 6),
        "cycles_per_second": round(cycles / mean),
    })


def test_compiled_throughput():
    """A/B gate: the template JIT must be >= 10x the interpreter.

    Both sides run the same loop under the same protocol (best-of-N on
    a reused machine) in the same process, so machine speed, CPU
    frequency scaling and interpreter warm-up cancel out of the ratio.
    """
    program = assemble(LOOP_SOURCE, ram_size=4)
    interp_cps = _steady_cps(Machine(program))
    compiled_cps = _steady_cps(CompiledMachine(program))
    speedup = compiled_cps / interp_cps
    _record("compiled", {
        "benchmark": "compiled_throughput",
        "cycles_per_run": LOOP_CYCLES,
        "interp_cycles_per_second": round(interp_cps),
        "compiled_cycles_per_second": round(compiled_cps),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 10.0, (
        f"compiled engine is only {speedup:.1f}x the interpreter "
        f"({compiled_cps:.0f} vs {interp_cps:.0f} cycles/s); the "
        f"acceptance floor is 10x")


def test_batch_lane_throughput():
    """Aggregate lane-cycles/second of the lockstep batch engine."""
    program = assemble(LOOP_SOURCE, ram_size=4)
    state = Machine(program).snapshot()
    lanes_n = 64
    best = float("inf")
    for _ in range(3):
        lanes = LockstepLanes(program, state, lanes_n)
        start = time.perf_counter()
        lanes.run_to(100_000)
        best = min(best, time.perf_counter() - start)
        exits = lanes.pop_exits()
        assert len(exits) == lanes_n
        assert all(e.cycle == LOOP_CYCLES for e in exits)
    lane_cps = LOOP_CYCLES * lanes_n / best
    _record("batch", {
        "benchmark": "batch_lane_throughput",
        "lanes": lanes_n,
        "cycles_per_lane": LOOP_CYCLES,
        "lane_cycles_per_second": round(lane_cps),
    })


def _batch_cps(program, state, n, fused, repeats=3):
    """Best-of-N aggregate lane-cycles/second of one pack."""
    best = float("inf")
    for _ in range(repeats):
        lanes = LockstepLanes(program, state, n, fused=fused)
        start = time.perf_counter()
        lanes.run_to(100_000)
        best = min(best, time.perf_counter() - start)
        exits = lanes.pop_exits()
        assert len(exits) == n
        assert all(e.cycle == LOOP_CYCLES for e in exits)
    return LOOP_CYCLES * n / best


def test_fused_batch_throughput():
    """A/B gate: fused dispatch must be >= 2x the per-instruction
    batch path at the pack-planner's 32-lane target width.

    Both sides run identical packs of the same loop under the same
    best-of-N protocol, so the ratio isolates the dispatch mechanism
    (one generated kernel per basic block vs ~7 numpy calls per
    opcode).  The eviction-rate figures come from a real stuck-at
    campaign — the domain whose covering stores force lanes off the
    lockstep path — so pack attrition is tracked alongside raw
    throughput.
    """
    program = assemble(LOOP_SOURCE, ram_size=4)
    state = Machine(program).snapshot()
    fused = compile_fused(program)
    assert fused is not None, "benchmark loop must be fusable"
    widths = {}
    for n in (8, 32, 64):
        plain = _batch_cps(program, state, n, None)
        fast = _batch_cps(program, state, n, fused)
        widths[n] = {
            "lane_cycles_per_second": round(fast),
            "per_instruction_lane_cycles_per_second": round(plain),
            "fused_speedup": round(fast / plain, 2),
        }

    # Pack attrition under the eviction-heavy domain: every armed
    # stuck-at latch covered by a store retires its lane, and each
    # eviction either re-admits or finishes on the scalar tier.
    from repro.campaign.experiment import BatchExperimentExecutor
    golden = record_golden(hi.dft_prime_variant())
    domain = get_domain("stuck")
    coords = []
    for interval in domain.build_partition(golden).live_classes():
        for index in range(domain.experiment_count(interval)):
            coords.append(domain.experiment_coordinate(interval, index))
    executor = BatchExperimentExecutor(golden, domain=domain)
    executor.run_many(coords)
    evictions = (executor.readmitted_lanes
                 + executor.scalar_tail_experiments)

    _record("batch_fused", {
        "benchmark": "fused_batch_throughput",
        "cycles_per_lane": LOOP_CYCLES,
        "widths": {str(n): payload for n, payload in widths.items()},
        "stuck_campaign": {
            "program": golden.program.name,
            "packed_lanes": executor.packed_lanes,
            "packs_opened": executor.packs_opened,
            "evictions": evictions,
            "readmitted_lanes": executor.readmitted_lanes,
            "scalar_tail_experiments":
                executor.scalar_tail_experiments,
            "eviction_rate":
                round(evictions / max(1, executor.packed_lanes), 4),
        },
    })
    speedup_32 = widths[32]["fused_speedup"]
    assert speedup_32 >= 2.0, (
        f"fused dispatch is only {speedup_32:.2f}x the "
        f"per-instruction batch path at 32 lanes; the acceptance "
        f"floor is 2x")


def test_auto_engine_kernel_gate():
    """Planner gate: ``auto`` must not lose to pinned ``compiled`` on
    any registered kernel benchmark.

    The auto tier's promise is "never worse than the tier you would
    have pinned": on the scheduler kernels its planner either picks
    compiled outright or a batch split that beats it, so the wall
    clock must track pinned-compiled within measurement noise.  The
    1.25x ceiling is far above planner overhead (one partition build)
    but below any genuinely wrong tier choice (interp on a kernel
    would be ~15x; a bad batch split ~2x).  Outcomes must be
    bit-identical — auto is an optimization, never a semantic knob.
    """
    kernels = {}
    for name, builder in (("chain", chain.baseline),
                          ("msgq", msgq.baseline),
                          ("prio", prio.baseline)):
        golden = record_golden(builder())
        partition = golden.partition()
        timings = {}
        results = {}
        # Best-of-2 per engine: a single load spike on a shared CI
        # runner must not read as a planner regression.
        for engine in ("compiled", "auto"):
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                results[engine] = run_full_scan(
                    golden, partition=partition,
                    config=ExecutorConfig(engine=engine))
                best = min(best, time.perf_counter() - start)
            timings[engine] = best
        assert results["auto"] == results["compiled"], name
        ratio = timings["auto"] / timings["compiled"]
        kernels[name] = {
            "compiled_seconds": round(timings["compiled"], 3),
            "auto_seconds": round(timings["auto"], 3),
            "auto_over_compiled": round(ratio, 3),
        }
        assert ratio <= 1.25, (
            f"auto engine took {ratio:.2f}x pinned compiled on "
            f"{name}; the acceptance ceiling is 1.25x")
    _record("auto_kernels", {
        "benchmark": "auto_engine_kernel_gate",
        "kernels": kernels,
    })


def test_snapshot_restore_cost(benchmark):
    machine = Machine(micro.memcopy(16))
    machine.run_to_cycle(20)
    state = machine.snapshot()

    def roundtrip():
        machine.restore(state)
        return machine.cycle

    assert benchmark(roundtrip) == 20


def test_assembler_throughput(benchmark):
    source = sync2.baseline().source

    def assemble_it():
        return Assembler(ram_size=4096).assemble(source)

    program = benchmark(assemble_it)
    assert program.rom_size > 100


def test_golden_trace_overhead(benchmark):
    """Tracing overhead relative to the raw interpreter run."""
    program = micro.checksum_loop(8)

    def traced():
        return record_golden(program).cycles

    assert benchmark(traced) > 0
