"""Substrate microbenchmarks: interpreter, snapshots, assembler.

Not a paper figure — these measure the simulator substrate itself so
performance regressions in the machine show up independently of the
campaign-level benchmarks.  The interpreter-throughput test also
writes ``BENCH_machine.json`` at the repo root (see ``_bench_json``)
so the cycles/second trajectory is tracked commit over commit.
"""

import time

from _bench_json import write_bench_json

from repro.campaign import record_golden
from repro.isa import Assembler, Machine, assemble
from repro.programs import micro, sync2

LOOP_SOURCE = """
        .data
v:      .word 0
        .text
start:  li   r3, 2000
loop:   lw   r1, v(zero)
        addi r1, r1, 1
        sw   r1, v(zero)
        addi r3, r3, -1
        bnez r3, loop
        halt
"""


def test_interpreter_throughput(benchmark):
    program = assemble(LOOP_SOURCE, ram_size=4)

    def run():
        machine = Machine(program)
        machine.run(100_000)
        return machine.cycle

    cycles = benchmark(run)
    assert cycles == 2 + 5 * 2000
    if benchmark.stats is not None:
        mean = benchmark.stats.stats.mean
    else:
        # --benchmark-disable (CI smoke): time one run by hand so the
        # JSON artifact still gets written and uploaded.
        start = time.perf_counter()
        run()
        mean = time.perf_counter() - start
    write_bench_json("machine", {
        "benchmark": "interpreter_throughput",
        "cycles_per_run": cycles,
        "mean_seconds": round(mean, 6),
        "cycles_per_second": round(cycles / mean),
    })


def test_snapshot_restore_cost(benchmark):
    machine = Machine(micro.memcopy(16))
    machine.run_to_cycle(20)
    state = machine.snapshot()

    def roundtrip():
        machine.restore(state)
        return machine.cycle

    assert benchmark(roundtrip) == 20


def test_assembler_throughput(benchmark):
    source = sync2.baseline().source

    def assemble_it():
        return Assembler(ram_size=4096).assemble(source)

    program = benchmark(assemble_it)
    assert program.rom_size > 100


def test_golden_trace_overhead(benchmark):
    """Tracing overhead relative to the raw interpreter run."""
    program = micro.checksum_loop(8)

    def traced():
        return record_golden(program).cycles

    assert benchmark(traced) > 0
