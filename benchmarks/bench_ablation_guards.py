"""Ablation: SUM+DMR guard granularity ("access" vs. "op").

The hardened kernel re-checks protected objects before every member
access group by default (GOP style).  The cheaper alternative checks
once per operation, leaving larger unguarded windows.  This ablation
measures both the runtime cost and the protection quality difference on
a reduced bin_sem2 campaign.
"""

import pytest

from repro.campaign import record_golden, run_full_scan
from repro.kernel import KernelBuilder
from repro.metrics import weighted_failure_count


def build_pingpong(granularity):
    kb = KernelBuilder(n_threads=2, protect=True,
                       guard_granularity=granularity)
    kb.add_semaphore("go", initial=0)
    kb.add_semaphore("done", initial=0)
    kb.set_thread_body(0, [
        "addi r3, zero, 3",
        "m_loop:",
        "call go_post",
        "call done_wait",
        "li   r4, 'a'",
        "out  r4",
        "addi r3, r3, -1",
        "bnez r3, m_loop",
        "halt",
    ])
    kb.set_thread_body(1, [
        "w_loop:",
        "call go_wait",
        "call done_post",
        "j    w_loop",
    ])
    return kb.build(f"pingpong-{granularity}")


@pytest.fixture(scope="module")
def campaigns():
    return {gran: run_full_scan(record_golden(build_pingpong(gran)))
            for gran in ("access", "op")}


def test_ablation_guard_granularity_tradeoff(benchmark, campaigns,
                                             output_dir):
    benchmark(lambda: weighted_failure_count(campaigns["access"]).total)
    access = campaigns["access"]
    op = campaigns["op"]
    # Per-access guarding costs cycles...
    assert access.golden.cycles > op.golden.cycles
    # ...but the failure *rate* per fault-space coordinate is lower
    # (tighter windows); compare F normalized by fault-space size.
    access_rate = weighted_failure_count(access).total \
        / access.fault_space_size
    op_rate = weighted_failure_count(op).total / op.fault_space_size
    assert access_rate < op_rate
    (output_dir / "ablation_guards.txt").write_text(
        "Guard granularity ablation (protected ping-pong)\n"
        f"per-access: Δt={access.golden.cycles}, "
        f"F={weighted_failure_count(access).total:.0f}, "
        f"failure rate {access_rate:.4f}\n"
        f"per-op:     Δt={op.golden.cycles}, "
        f"F={weighted_failure_count(op).total:.0f}, "
        f"failure rate {op_rate:.4f}\n")


def test_ablation_guard_cost_golden_run(benchmark):
    program = build_pingpong("access")
    golden = benchmark(lambda: record_golden(program))
    assert golden.output == b"aaa"
