"""A bounded message-queue kernel test (ring buffer + index words).

A producer/consumer pair communicates through a circular ring smaller
than the item count, so the run exercises every wrap-around path:

* thread 0 (producer, main) enqueues ``i * VALUE_STEP`` at the head
  index under the queue mutex, advancing and wrapping ``head``; item
  and space counting semaphores provide the blocking;
* thread 1 (consumer) dequeues at the tail index, folds the value into
  an accumulator and advances/wraps ``tail``.

After the done flag the producer verifies the accumulator *and* that
``head == tail`` — a fault that desynchronizes the index words (the
queue's critical kernel-adjacent state) is caught even when the sum
happens to survive.  The ring, the index words and the accumulator are
application data and stay unprotected in both variants; the hardened
variant protects the kernel objects with SUM+DMR.
"""

from __future__ import annotations

from ..isa.assembler import Program
from ..kernel.builder import KernelBuilder

#: Messages passed through the queue per run.
DEFAULT_ITEMS = 7
#: Ring capacity in messages; below DEFAULT_ITEMS to force wrap-around.
DEFAULT_CAPACITY = 3
#: Value enqueued for item ``i`` (1-based) is ``i * VALUE_STEP``.
VALUE_STEP = 6
#: Flag bit the consumer raises when it is done.
DONE_BIT = 1


def expected_accumulator(items: int) -> int:
    """Sum the consumer accumulates over a fault-free run."""
    return VALUE_STEP * items * (items + 1) // 2


def _wrap(reg: str, capacity: int, label: str) -> list[str]:
    """Advance index ``reg`` by one, wrapping at ``capacity``."""
    return [
        f"addi {reg}, {reg}, 1",
        f"slti r7, {reg}, {capacity}",
        f"bnez r7, {label}",
        f"addi {reg}, zero, 0",
        f"{label}:",
    ]


def _build(*, protect: bool, items: int, capacity: int,
           name: str) -> Program:
    if items < 1:
        raise ValueError("need at least one item")
    if capacity < 1:
        raise ValueError("need at least one ring slot")
    kb = KernelBuilder(n_threads=2, protect=protect)
    kb.add_mutex("mtx")
    kb.add_semaphore("s_items", initial=0)
    kb.add_semaphore("s_space", initial=capacity)
    kb.add_flag("f_done")
    kb.add_buffer("ring", n_words=capacity)  # application data
    kb.add_word("head", init=0)
    kb.add_word("tail", init=0)
    kb.add_word("acc", init=0)

    body0 = [
        f"addi r3, zero, {items}",
        "addi r5, zero, 1",             # item counter i = 1..items
        "p_loop:",
        "call s_space_wait",
        "call mtx_lock",
        "call head_load",
        "addi r6, r1, 0",               # slot = head
        f"addi r7, zero, {VALUE_STEP}",
        "mul  r2, r5, r7",              # value = i * step
        "addi r1, r6, 0",
        "call ring_put",
        *_wrap("r6", capacity, "p_nowrap"),
        "addi r1, r6, 0",
        "call head_store",
        "call mtx_unlock",
        "call s_items_post",
        "li   r7, 'p'",
        "out  r7",
        "addi r5, r5, 1",
        "addi r3, r3, -1",
        "bnez r3, p_loop",
        f"addi r1, zero, {DONE_BIT}",
        "call f_done_wait",
        # Verify the accumulator, then that the index words re-aligned.
        "call acc_load",
        f"li   r6, {expected_accumulator(items)}",
        "bne  r1, r6, v_fail",
        "call head_load",
        "addi r6, r1, 0",
        "call tail_load",
        "bne  r1, r6, v_fail",
        "li   r7, '!'",
        "out  r7",
        "halt",
        "v_fail:",
        "li   r7, 'X'",
        "out  r7",
        "halt",
    ]
    body1 = [
        f"addi r3, zero, {items}",
        "c_loop:",
        "call s_items_wait",
        "call mtx_lock",
        "call tail_load",
        "addi r5, r1, 0",               # slot = tail
        "call ring_get",                # r1 = ring[tail]
        "addi r6, r1, 0",
        "call acc_load",
        "add  r1, r1, r6",
        "call acc_store",
        *_wrap("r5", capacity, "c_nowrap"),
        "addi r1, r5, 0",
        "call tail_store",
        "call mtx_unlock",
        "call s_space_post",
        "li   r7, '.'",
        "out  r7",
        "addi r3, r3, -1",
        "bnez r3, c_loop",
        f"addi r1, zero, {DONE_BIT}",
        "call f_done_set",
    ]
    kb.set_thread_body(0, body0)
    kb.set_thread_body(1, body1)
    return kb.build(name)


def baseline(items: int = DEFAULT_ITEMS,
             capacity: int = DEFAULT_CAPACITY) -> Program:
    """Unprotected message queue."""
    return _build(protect=False, items=items, capacity=capacity,
                  name="msgq")


def hardened(items: int = DEFAULT_ITEMS,
             capacity: int = DEFAULT_CAPACITY) -> Program:
    """SUM+DMR-hardened variant: kernel objects protected."""
    return _build(protect=True, items=items, capacity=capacity,
                  name="msgq-sumdmr")
