"""Registry of benchmark variants used by examples and the bench harness.

Each entry is a named, parameter-free thunk producing a
:class:`~repro.isa.assembler.Program`, grouped into baseline/hardened
pairs where applicable.  The benchmark harness iterates over
:func:`paper_pairs` to regenerate every Figure 2 series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..isa.assembler import Program
from . import bin_sem2, guarded, hi, micro, sync2

ProgramThunk = Callable[[], Program]


@dataclass(frozen=True)
class BenchmarkPair:
    """A baseline/hardened pair compared throughout the evaluation."""

    name: str
    baseline: ProgramThunk
    hardened: ProgramThunk
    description: str


def paper_pairs() -> list[BenchmarkPair]:
    """The two benchmark pairs of the paper's Figure 2."""
    return [
        BenchmarkPair(
            name="bin_sem2",
            baseline=bin_sem2.baseline,
            hardened=bin_sem2.hardened,
            description=("binary-semaphore ping-pong kernel test; "
                         "SUM+DMR protection genuinely improves it"),
        ),
        BenchmarkPair(
            name="sync2",
            baseline=sync2.baseline,
            hardened=sync2.hardened,
            description=("mutex/semaphore/flag producer-consumer kernel "
                         "test; SUM+DMR overhead makes it worse despite "
                         "better coverage"),
        ),
    ]


def hi_variants() -> dict[str, ProgramThunk]:
    """The Section IV Gedankenexperiment programs."""
    return {
        "hi": hi.baseline,
        "hi-dft4": lambda: hi.dft_variant(4),
        "hi-dftprime4": lambda: hi.dft_prime_variant(4),
        "hi-mem2": lambda: hi.memory_diluted_variant(2),
    }


def micro_programs() -> dict[str, ProgramThunk]:
    """Single-threaded micro-benchmarks for tests and sampling studies."""
    return {
        "counter": micro.counter,
        "memcopy": micro.memcopy,
        "checksum": micro.checksum_loop,
        "stack_echo": micro.stack_echo,
    }


def guarded_variants() -> dict[str, ProgramThunk]:
    """The four-variant hardening family swept by ``repro compare``."""
    return {
        "guarded": guarded.baseline,
        "guarded-sum": guarded.sum_variant,
        "guarded-sumdmr": guarded.sumdmr_variant,
        "guarded-tmr": guarded.tmr_variant,
    }


def all_programs() -> dict[str, ProgramThunk]:
    """Every registered program by name."""
    programs: dict[str, ProgramThunk] = {}
    programs.update(hi_variants())
    programs.update(micro_programs())
    programs.update(guarded_variants())
    for pair in paper_pairs():
        programs[pair.name] = pair.baseline
        programs[f"{pair.name}-sumdmr"] = pair.hardened
    return programs
