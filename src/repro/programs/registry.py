"""Registry of benchmark variants used by examples and the bench harness.

Each entry is a named, parameter-free thunk producing a
:class:`~repro.isa.assembler.Program`, grouped into baseline/hardened
pairs where applicable.  The benchmark harness iterates over
:func:`paper_pairs` to regenerate every Figure 2 series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..isa.assembler import Program
from . import bin_sem2, chain, guarded, hi, micro, msgq, prio, sync2

ProgramThunk = Callable[[], Program]


@dataclass(frozen=True)
class BenchmarkPair:
    """A baseline/hardened pair compared throughout the evaluation."""

    name: str
    baseline: ProgramThunk
    hardened: ProgramThunk
    description: str


@dataclass(frozen=True)
class KernelBenchmark:
    """Registry metadata for one kernel workload.

    ``expected_fault_space`` is the memory-domain fault-space size
    (``Δt × Δm × 8``) of the *baseline* at default parameters — golden
    runs are deterministic, so the registry can pin the exact number
    and the program tests assert it, catching accidental changes to a
    benchmark's runtime or footprint (which would silently shift every
    weighted comparison built on it).
    """

    name: str
    category: str
    baseline: ProgramThunk
    hardened: ProgramThunk | None
    expected_fault_space: int
    description: str


def paper_pairs() -> list[BenchmarkPair]:
    """The two benchmark pairs of the paper's Figure 2."""
    return [
        BenchmarkPair(
            name="bin_sem2",
            baseline=bin_sem2.baseline,
            hardened=bin_sem2.hardened,
            description=("binary-semaphore ping-pong kernel test; "
                         "SUM+DMR protection genuinely improves it"),
        ),
        BenchmarkPair(
            name="sync2",
            baseline=sync2.baseline,
            hardened=sync2.hardened,
            description=("mutex/semaphore/flag producer-consumer kernel "
                         "test; SUM+DMR overhead makes it worse despite "
                         "better coverage"),
        ),
    ]


def kernel_benchmarks() -> list[KernelBenchmark]:
    """The kernel workload suite beyond the paper's two benchmarks."""
    return [
        KernelBenchmark(
            name="chain",
            category="pipeline",
            baseline=chain.baseline,
            hardened=chain.hardened,
            expected_fault_space=6_332_928,
            description=("three-stage producer/transformer/consumer "
                         "pipeline over two capacity-one handoff cells"),
        ),
        KernelBenchmark(
            name="msgq",
            category="queue",
            baseline=msgq.baseline,
            hardened=msgq.hardened,
            expected_fault_space=3_718_080,
            description=("bounded circular message queue with wrapping "
                         "head/tail index words under a mutex"),
        ),
        KernelBenchmark(
            name="prio",
            category="mutex",
            baseline=prio.baseline,
            hardened=prio.hardened,
            expected_fault_space=3_065_440,
            description=("priority-inversion scenario: low holds the "
                         "resource mutex while high blocks and medium "
                         "runs unrelated work"),
        ),
    ]


def hi_variants() -> dict[str, ProgramThunk]:
    """The Section IV Gedankenexperiment programs."""
    return {
        "hi": hi.baseline,
        "hi-dft4": lambda: hi.dft_variant(4),
        "hi-dftprime4": lambda: hi.dft_prime_variant(4),
        "hi-mem2": lambda: hi.memory_diluted_variant(2),
    }


def micro_programs() -> dict[str, ProgramThunk]:
    """Single-threaded micro-benchmarks for tests and sampling studies."""
    return {
        "counter": micro.counter,
        "memcopy": micro.memcopy,
        "checksum": micro.checksum_loop,
        "stack_echo": micro.stack_echo,
    }


def guarded_variants() -> dict[str, ProgramThunk]:
    """The four-variant hardening family swept by ``repro compare``."""
    return {
        "guarded": guarded.baseline,
        "guarded-sum": guarded.sum_variant,
        "guarded-sumdmr": guarded.sumdmr_variant,
        "guarded-tmr": guarded.tmr_variant,
    }


def all_programs() -> dict[str, ProgramThunk]:
    """Every registered program by name."""
    programs: dict[str, ProgramThunk] = {}
    programs.update(hi_variants())
    programs.update(micro_programs())
    programs.update(guarded_variants())
    for pair in paper_pairs():
        programs[pair.name] = pair.baseline
        programs[f"{pair.name}-sumdmr"] = pair.hardened
    for bench in kernel_benchmarks():
        programs[bench.name] = bench.baseline
        if bench.hardened is not None:
            programs[f"{bench.name}-sumdmr"] = bench.hardened
    return programs
