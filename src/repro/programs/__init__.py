"""Benchmark programs: the paper's examples and kernel-test analogs."""

from . import bin_sem2, chain, guarded, hi, micro, msgq, prio, sync2
from .registry import (
    BenchmarkPair,
    KernelBenchmark,
    all_programs,
    guarded_variants,
    hi_variants,
    kernel_benchmarks,
    micro_programs,
    paper_pairs,
)

__all__ = [
    "BenchmarkPair",
    "KernelBenchmark",
    "all_programs",
    "bin_sem2",
    "chain",
    "guarded",
    "guarded_variants",
    "hi",
    "hi_variants",
    "kernel_benchmarks",
    "micro",
    "micro_programs",
    "msgq",
    "paper_pairs",
    "prio",
    "sync2",
]
