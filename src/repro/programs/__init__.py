"""Benchmark programs: the paper's examples and kernel-test analogs."""

from . import bin_sem2, guarded, hi, micro, sync2
from .registry import (
    BenchmarkPair,
    all_programs,
    guarded_variants,
    hi_variants,
    micro_programs,
    paper_pairs,
)

__all__ = [
    "BenchmarkPair",
    "all_programs",
    "bin_sem2",
    "guarded",
    "guarded_variants",
    "hi",
    "hi_variants",
    "micro",
    "micro_programs",
    "paper_pairs",
    "sync2",
]
