"""A three-stage producer/transformer/consumer pipeline kernel test.

Three threads pass values through two capacity-one handoff cells:

* thread 0 (producer, main) writes ``i * VALUE_STEP`` into the first
  cell for each item, then blocks on the "consumer done" flag and
  verifies the consumer's accumulator against the closed form;
* thread 1 (transformer) reads the first cell, applies ``y = 2x + 3``
  and forwards the result through the second cell;
* thread 2 (consumer) folds each transformed value into an accumulator
  word and raises the done flag after the last item.

Each link is a classic semaphore pair (full/free), so every item forces
at least two scheduler round trips — the chain shape stresses the
kernel's context-switch path far more than the two-thread benchmarks.
The cells and the accumulator are application data and stay unprotected
in both variants; the hardened variant protects the kernel objects
(TCBs, semaphores, flags) with SUM+DMR exactly like ``sync2``.
"""

from __future__ import annotations

from ..isa.assembler import Program
from ..kernel.builder import KernelBuilder

#: Items pushed through the pipeline per run.
DEFAULT_ITEMS = 6
#: The producer emits ``i * VALUE_STEP`` for item ``i`` (1-based).
VALUE_STEP = 5
#: Flag bit the consumer raises when it is done.
DONE_BIT = 1


def transform(value: int) -> int:
    """The transformer stage's function."""
    return 2 * value + 3


def expected_accumulator(items: int) -> int:
    """Sum the consumer accumulates over a fault-free run."""
    return sum(transform(i * VALUE_STEP) for i in range(1, items + 1))


def _build(*, protect: bool, items: int, name: str) -> Program:
    if items < 1:
        raise ValueError("need at least one item")
    kb = KernelBuilder(n_threads=3, protect=protect)
    kb.add_semaphore("s1_full", initial=0)
    kb.add_semaphore("s1_free", initial=1)
    kb.add_semaphore("s2_full", initial=0)
    kb.add_semaphore("s2_free", initial=1)
    kb.add_flag("f_done")
    kb.add_word("cell1", init=0)          # application data: unprotected
    kb.add_word("cell2", init=0)          # application data: unprotected
    kb.add_word("acc", init=0)            # application data: unprotected

    body0 = [
        f"addi r3, zero, {items}",
        "addi r5, zero, 1",             # item counter i = 1..items
        "p_loop:",
        "call s1_free_wait",
        f"addi r7, zero, {VALUE_STEP}",
        "mul  r1, r5, r7",              # value = i * step
        "call cell1_store",
        "call s1_full_post",
        "li   r7, 'p'",
        "out  r7",
        "addi r5, r5, 1",
        "addi r3, r3, -1",
        "bnez r3, p_loop",
        f"addi r1, zero, {DONE_BIT}",
        "call f_done_wait",
        "call acc_load",
        f"li   r6, {expected_accumulator(items)}",
        "bne  r1, r6, v_fail",
        "li   r7, '!'",
        "out  r7",
        "halt",
        "v_fail:",
        "li   r7, 'X'",
        "out  r7",
        "halt",
    ]
    body1 = [
        f"addi r3, zero, {items}",
        "t_loop:",
        "call s1_full_wait",
        "call cell1_load",
        "call s1_free_post",
        "slli r1, r1, 1",               # y = 2x + 3
        "addi r1, r1, 3",
        "call s2_free_wait",
        "call cell2_store",
        "call s2_full_post",
        "addi r3, r3, -1",
        "bnez r3, t_loop",
    ]
    body2 = [
        f"addi r3, zero, {items}",
        "c_loop:",
        "call s2_full_wait",
        "call cell2_load",
        "call s2_free_post",
        "addi r6, r1, 0",
        "call acc_load",
        "add  r1, r1, r6",
        "call acc_store",
        "li   r7, '.'",
        "out  r7",
        "addi r3, r3, -1",
        "bnez r3, c_loop",
        f"addi r1, zero, {DONE_BIT}",
        "call f_done_set",
    ]
    kb.set_thread_body(0, body0)
    kb.set_thread_body(1, body1)
    kb.set_thread_body(2, body2)
    return kb.build(name)


def baseline(items: int = DEFAULT_ITEMS) -> Program:
    """Unprotected pipeline chain."""
    return _build(protect=False, items=items, name="chain")


def hardened(items: int = DEFAULT_ITEMS) -> Program:
    """SUM+DMR-hardened variant: kernel objects protected."""
    return _build(protect=True, items=items, name="chain-sumdmr")
