"""A priority-inversion mutex kernel test (three contending threads).

The classic Mars-Pathfinder shape, mapped onto the cooperative
round-robin kernel (priorities exist in the scenario, not the
scheduler):

* thread 2 ("low") acquires the shared resource mutex first, prints
  ``L``, releases the "go" flag and then sits in its critical section
  for ``HOLD_YIELDS`` scheduler round trips before bumping the shared
  work word, printing ``l`` and unlocking;
* thread 0 ("high", main) requests the same mutex one yield later
  (prints ``h``) and spins in the mutex wait loop until low releases —
  the inversion window;
* thread 1 ("medium") runs unrelated work during exactly that window:
  ``M_WORK`` iterations bumping its own counter and printing ``M``.

The serial trace therefore *shows* the inversion (``L h M ... l H``),
and the final verification — high checks the work word saw both
critical sections and medium's counter hit ``M_WORK`` — turns any
fault that corrupts the mutex, the flags or the counters into a
detectable wrong-output run.  Both counters are application data and
stay unprotected; the hardened variant protects the kernel objects
with SUM+DMR.
"""

from __future__ import annotations

from ..isa.assembler import Program
from ..kernel.builder import KernelBuilder

#: Scheduler round trips low spends inside its critical section.
DEFAULT_HOLD_YIELDS = 4
#: Iterations of medium's unrelated work.
DEFAULT_M_WORK = 3
#: Flag bit low raises to start medium's work.
GO_BIT = 1
#: Flag bit medium raises when its work is done.
MDONE_BIT = 1
#: The work word's expected final value: one bump per critical section.
EXPECTED_WORK = 2


def _build(*, protect: bool, hold_yields: int, m_work: int,
           name: str) -> Program:
    if hold_yields < 1:
        raise ValueError("low must hold the lock for at least one yield")
    if m_work < 1:
        raise ValueError("medium needs at least one work iteration")
    kb = KernelBuilder(n_threads=3, protect=protect)
    kb.add_mutex("res")
    kb.add_flag("f_go")
    kb.add_flag("f_mdone")
    kb.add_word("work", init=0)           # application data: unprotected
    kb.add_word("mcount", init=0)         # application data: unprotected

    body0 = [                             # high priority (main)
        "call __yield",                   # let low grab the resource
        "li   r7, 'h'",                   # high now requests the lock
        "out  r7",
        "call res_lock",                  # blocks across the inversion
        "li   r7, 'H'",
        "out  r7",
        "call work_load",
        "addi r1, r1, 1",
        "call work_store",
        "call res_unlock",
        f"addi r1, zero, {MDONE_BIT}",
        "call f_mdone_wait",
        "call work_load",
        f"addi r6, zero, {EXPECTED_WORK}",
        "bne  r1, r6, v_fail",
        "call mcount_load",
        f"addi r6, zero, {m_work}",
        "bne  r1, r6, v_fail",
        "li   r7, '!'",
        "out  r7",
        "halt",
        "v_fail:",
        "li   r7, 'X'",
        "out  r7",
        "halt",
    ]
    body1 = [                             # medium priority
        f"addi r1, zero, {GO_BIT}",
        "call f_go_wait",
        f"addi r3, zero, {m_work}",
        "m_loop:",
        "call mcount_load",
        "addi r1, r1, 1",
        "call mcount_store",
        "li   r7, 'M'",
        "out  r7",
        "call __yield",
        "addi r3, r3, -1",
        "bnez r3, m_loop",
        f"addi r1, zero, {MDONE_BIT}",
        "call f_mdone_set",
    ]
    body2 = [                             # low priority
        "call res_lock",
        "li   r7, 'L'",
        "out  r7",
        f"addi r1, zero, {GO_BIT}",
        "call f_go_set",
        f"addi r3, zero, {hold_yields}",
        "l_hold:",
        "call __yield",
        "addi r3, r3, -1",
        "bnez r3, l_hold",
        "call work_load",
        "addi r1, r1, 1",
        "call work_store",
        "li   r7, 'l'",
        "out  r7",
        "call res_unlock",
    ]
    kb.set_thread_body(0, body0)
    kb.set_thread_body(1, body1)
    kb.set_thread_body(2, body2)
    return kb.build(name)


def baseline(hold_yields: int = DEFAULT_HOLD_YIELDS,
             m_work: int = DEFAULT_M_WORK) -> Program:
    """Unprotected priority-inversion scenario."""
    return _build(protect=False, hold_yields=hold_yields, m_work=m_work,
                  name="prio")


def hardened(hold_yields: int = DEFAULT_HOLD_YIELDS,
             m_work: int = DEFAULT_M_WORK) -> Program:
    """SUM+DMR-hardened variant: kernel objects protected."""
    return _build(protect=True, hold_yields=hold_yields, m_work=m_work,
                  name="prio-sumdmr")
