"""A counter workload in four hardening variants.

The compositional result store makes sweeps over program *variants*
incremental; this module provides the canonical four-variant family the
``repro compare`` subcommand and the incremental-sweep benchmark
iterate over:

``guarded``
    unprotected baseline (the micro ``counter`` shape).
``guarded-sum``
    additive checksum of the counter word, detect-only: a mismatch
    announces an unrecoverable error and fail-stops.
``guarded-sumdmr``
    checksum plus duplicate via :class:`~repro.hardening.sumdmr`\\ 's
    generic object protection — detect *and* correct.
``guarded-tmr``
    the counter word triplicated via :mod:`~repro.hardening.tmr`,
    majority-vote reads with in-place repair.

All four perform the same computation — increment a RAM-resident
counter ``iterations`` times and print it — so their failure counts
are directly comparable under the paper's sound metric
(r = F_hardened / F_baseline, Section V).
"""

from __future__ import annotations

from ..campaign.outcomes import PANIC_CODE
from ..hardening.sumdmr import ProtectedObject, SumDmrEmitter
from ..hardening.tmr import TmrEmitter, TmrWord
from ..isa.assembler import Program, assemble

#: Default loop count — small enough that a four-variant full scan
#: stays cheap, long enough that the counter word has real lifetime.
ITERATIONS = 3


def _check_iterations(iterations: int) -> None:
    if not 1 <= iterations <= 255:
        raise ValueError("iterations must fit an output byte")


def baseline(iterations: int = ITERATIONS) -> Program:
    """Unprotected counter loop — the comparison baseline."""
    _check_iterations(iterations)
    source = f"""\
        .data
count:  .word 0
        .text
start:  addi r3, zero, {iterations}
loop:   lw   r1, count(zero)
        addi r1, r1, 1
        sw   r1, count(zero)
        addi r3, r3, -1
        bnez r3, loop
        lw   r1, count(zero)
        out  r1
        halt
"""
    return assemble(source, name="guarded", ram_size=4)


def sum_variant(iterations: int = ITERATIONS) -> Program:
    """Detect-only checksum: mismatch announces a panic and fail-stops.

    For the one-word object the additive checksum equals the word, so
    the guard is a comparison against a shadow word refreshed on every
    store — detection without any means of recovery.
    """
    _check_iterations(iterations)
    source = f"""\
        .data
count:  .word 0
sum:    .word 0
        .text
start:  addi r3, zero, {iterations}
loop:   lw   r1, count(zero)
        lw   r10, sum(zero)
        beq  r1, r10, __ck0
        detect {PANIC_CODE:#x}
        halt
__ck0:  addi r1, r1, 1
        sw   r1, count(zero)
        sw   r1, sum(zero)
        addi r3, r3, -1
        bnez r3, loop
        lw   r1, count(zero)
        lw   r10, sum(zero)
        beq  r1, r10, __ck1
        detect {PANIC_CODE:#x}
        halt
__ck1:  out  r1
        halt
"""
    return assemble(source, name="guarded-sum", ram_size=8)


def sumdmr_variant(iterations: int = ITERATIONS) -> Program:
    """SUM+DMR generic object protection around the counter word."""
    _check_iterations(iterations)
    emitter = SumDmrEmitter()
    obj = ProtectedObject("count", 1)
    data = "\n".join(emitter.data_lines(obj, [0]))
    check_loop = "\n".join(emitter.emit_check(obj))
    update = "\n".join(emitter.emit_update(obj))
    check_out = "\n".join(emitter.emit_check(obj))
    source = f"""\
        .data
{data}
        .text
start:  addi r3, zero, {iterations}
loop:
{check_loop}
        lw   r1, count(zero)
        addi r1, r1, 1
        sw   r1, count(zero)
{update}
        addi r3, r3, -1
        bnez r3, loop
{check_out}
        lw   r1, count(zero)
        out  r1
        halt
"""
    return assemble(source, name="guarded-sumdmr",
                    ram_size=obj.size_bytes)


def tmr_variant(iterations: int = ITERATIONS) -> Program:
    """Triplicated counter word with majority-vote reads."""
    _check_iterations(iterations)
    emitter = TmrEmitter()
    word = TmrWord("count")
    data = "\n".join(emitter.data_lines(word, 0))
    load_loop = "\n".join(emitter.emit_load(word, "r1"))
    store = "\n".join(emitter.emit_store(word, "r1"))
    load_out = "\n".join(emitter.emit_load(word, "r1"))
    source = f"""\
        .data
{data}
        .text
start:  addi r3, zero, {iterations}
loop:
{load_loop}
        addi r1, r1, 1
{store}
        addi r3, r3, -1
        bnez r3, loop
{load_out}
        out  r1
        halt
"""
    return assemble(source, name="guarded-tmr", ram_size=word.size_bytes)


#: Sweep order: baseline first, then the three hardened variants.
VARIANT_NAMES = ("guarded", "guarded-sum", "guarded-sumdmr",
                 "guarded-tmr")


def variants() -> dict[str, "Program"]:
    """Name → assembled program for the whole four-variant family."""
    return {
        "guarded": baseline(),
        "guarded-sum": sum_variant(),
        "guarded-sumdmr": sumdmr_variant(),
        "guarded-tmr": tmr_variant(),
    }
