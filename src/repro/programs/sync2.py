"""The ``sync2`` benchmark analog (eCos synchronization kernel test).

A producer/consumer pair exercising three synchronization primitives at
once — a mutex, a counting semaphore and an event flag — over a shared
message buffer:

* thread 0 (producer/verifier) fills the buffer under the mutex,
  posting the item semaphore per element; it then blocks on the
  "consumer done" flag and finally re-reads and verifies the *entire*
  buffer and the consumer's accumulator before printing the verdict;
* thread 1 (consumer) consumes each item under the mutex and folds it
  into an accumulator word, then sets the done flag.

The buffer and the accumulator are *application* data and stay
unprotected in both variants (the SUM+DMR mechanism hardens critical
kernel data); because the verifier re-reads them at the very end of the
run, their failure weight grows with the benchmark runtime.  The
hardened variant pays heavy kernel-object protection overhead on every
one of the many synchronization operations, inflating Δt — which is
exactly the paper's sync2 story (Figure 2(e)/(g)): weighted fault
*coverage* improves while the extrapolated absolute failure count
*worsens* severely.
"""

from __future__ import annotations

from ..isa.assembler import Program
from ..kernel.builder import KernelBuilder

#: Items passed from producer to consumer per run.
DEFAULT_ITEMS = 10
#: Value stored for item ``i`` (0-based) is ``(i + 1) * VALUE_STEP``.
VALUE_STEP = 7
#: Flag bit the consumer raises when it is done.
DONE_BIT = 1


def expected_accumulator(items: int) -> int:
    """Sum the consumer accumulates over a fault-free run."""
    return VALUE_STEP * items * (items + 1) // 2


def _build(*, protect: bool, items: int, name: str) -> Program:
    if items < 1:
        raise ValueError("need at least one item")
    kb = KernelBuilder(n_threads=2, protect=protect)
    kb.add_mutex("mtx")
    kb.add_semaphore("s_items", initial=0)
    # Bounded handoff: the producer needs a free slot credit per item,
    # which the consumer returns — the classic producer/consumer chain
    # that forces the two threads to interleave through the scheduler.
    kb.add_semaphore("s_space", initial=1)
    kb.add_flag("f_done")
    kb.add_buffer("buf", n_words=items)   # application data: unprotected
    kb.add_word("acc", init=0)            # application data: unprotected

    body0 = [
        f"addi r3, zero, {items}",
        "addi r5, zero, 0",             # index
        "p_loop:",
        "call s_space_wait",
        "call mtx_lock",
        "addi r1, r5, 0",
        "addi r6, r5, 1",
        f"addi r7, zero, {VALUE_STEP}",
        "mul  r2, r6, r7",              # value = (i+1) * step
        "call buf_put",
        "call mtx_unlock",
        "call s_items_post",
        "li   r7, 'p'",
        "out  r7",
        "addi r5, r5, 1",
        "addi r3, r3, -1",
        "bnez r3, p_loop",
        # Wait until the consumer signals completion.
        f"addi r1, zero, {DONE_BIT}",
        "call f_done_wait",
        # Verify every buffer cell (long-lifetime final reads).
        "addi r5, zero, 0",
        f"addi r3, zero, {items}",
        "v_loop:",
        "addi r1, r5, 0",
        "call buf_get",
        "addi r6, r5, 1",
        f"addi r7, zero, {VALUE_STEP}",
        "mul  r6, r6, r7",
        "bne  r1, r6, v_fail",
        "addi r5, r5, 1",
        "addi r3, r3, -1",
        "bnez r3, v_loop",
        # Verify the accumulator.
        "call acc_load",
        f"li   r6, {expected_accumulator(items)}",
        "bne  r1, r6, v_fail",
        "li   r7, '!'",
        "out  r7",
        "halt",
        "v_fail:",
        "li   r7, 'X'",
        "out  r7",
        "halt",
    ]
    body1 = [
        f"addi r3, zero, {items}",
        "addi r5, zero, 0",
        "c_loop:",
        "call s_items_wait",
        "call mtx_lock",
        "addi r1, r5, 0",
        "call buf_get",
        "addi r6, r1, 0",
        "call acc_load",
        "add  r1, r1, r6",
        "call acc_store",
        "call mtx_unlock",
        "call s_space_post",
        "li   r7, '.'",
        "out  r7",
        "addi r5, r5, 1",
        "addi r3, r3, -1",
        "bnez r3, c_loop",
        f"addi r1, zero, {DONE_BIT}",
        "call f_done_set",
    ]
    kb.set_thread_body(0, body0)
    kb.set_thread_body(1, body1)
    return kb.build(name)


def baseline(items: int = DEFAULT_ITEMS) -> Program:
    """Unprotected ``sync2`` analog."""
    return _build(protect=False, items=items, name="sync2")


def hardened(items: int = DEFAULT_ITEMS) -> Program:
    """SUM+DMR-hardened variant: kernel objects protected."""
    return _build(protect=True, items=items, name="sync2-sumdmr")
