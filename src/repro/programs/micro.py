"""Single-threaded micro-benchmarks.

Small deterministic programs used by tests (especially the brute-force
vs. pruned-scan equivalence properties), by examples, and by the
sampling benchmarks, where full scans of tiny fault spaces provide
exact ground truth cheaply.
"""

from __future__ import annotations

from ..isa.assembler import Program, assemble


def counter(iterations: int = 5) -> Program:
    """Increment a RAM-resident counter in a loop and print it."""
    if not 1 <= iterations <= 255:
        raise ValueError("iterations must fit an output byte")
    source = f"""\
        .data
count:  .word 0
        .text
start:  addi r3, zero, {iterations}
loop:   lw   r1, count(zero)
        addi r1, r1, 1
        sw   r1, count(zero)
        addi r3, r3, -1
        bnez r3, loop
        lw   r1, count(zero)
        out  r1
        halt
"""
    return assemble(source, name=f"counter{iterations}", ram_size=4)


def memcopy(length: int = 8) -> Program:
    """Copy a byte string within RAM and print the copy."""
    if not 1 <= length <= 26:
        raise ValueError("length must be in 1..26")
    text = "".join(chr(ord("a") + i) for i in range(length))
    source = f"""\
        .equ LEN, {length}
        .data
src:    .ascii "{text}"
        .align 4
dst:    .space {length}
        .text
start:  addi r3, zero, 0
copy:   lbu  r1, src(r3)
        sb   r1, dst(r3)
        addi r3, r3, 1
        slti r2, r3, LEN
        bnez r2, copy
        addi r3, zero, 0
print:  lbu  r1, dst(r3)
        out  r1
        addi r3, r3, 1
        slti r2, r3, LEN
        bnez r2, print
        halt
"""
    # RAM: src + padding + dst.
    ram = ((length + 3) // 4) * 4 + length
    return assemble(source, name=f"memcopy{length}", ram_size=ram)


def checksum_loop(words: int = 4) -> Program:
    """Sum a word table and print the low byte of the sum."""
    if not 1 <= words <= 16:
        raise ValueError("words must be in 1..16")
    values = [(i * 37 + 11) & 0xFF for i in range(words)]
    table = ", ".join(str(v) for v in values)
    source = f"""\
        .equ N, {words}
        .data
table:  .word {table}
sum:    .word 0
        .text
start:  addi r3, zero, 0
        addi r2, zero, 0
acc:    slli r4, r3, 2
        lw   r1, table(r4)
        add  r2, r2, r1
        addi r3, r3, 1
        slti r4, r3, N
        bnez r4, acc
        sw   r2, sum(zero)
        lw   r1, sum(zero)
        out  r1
        halt
"""
    return assemble(source, name=f"checksum{words}",
                    ram_size=4 * words + 4)


def stack_echo(depth: int = 3) -> Program:
    """Push bytes onto a stack region, pop and print them in reverse.

    Exercises load/store through a moving pointer — a useful shape for
    def/use pruning tests because every stack byte has several
    generations of defs and uses.
    """
    if not 1 <= depth <= 8:
        raise ValueError("depth must be in 1..8")
    source = f"""\
        .equ DEPTH, {depth}
        .data
stack:  .space {4 * depth}
        .text
start:  li   sp, stack+{4 * depth}
        addi r3, zero, 0
push:   addi r1, r3, 'A'
        addi sp, sp, -4
        sw   r1, 0(sp)
        addi r3, r3, 1
        slti r2, r3, DEPTH
        bnez r2, push
pop:    lw   r1, 0(sp)
        addi sp, sp, 4
        out  r1
        addi r3, r3, -1
        bnez r3, pop
        halt
"""
    return assemble(source, name=f"stack_echo{depth}",
                    ram_size=4 * depth)
