"""The ``bin_sem2`` benchmark analog (eCos binary-semaphore kernel test).

Two threads ping-pong through two binary semaphores, handing a token
value back and forth and checking it each round — the synchronization
pattern of the eCos ``bin_sem2`` kernel test.  Each round produces
deterministic serial output, so any corruption of kernel state (TCBs,
semaphore counters, the scheduler's current-thread word) or of the
token surfaces as a failure.

The benchmark's failure weight is dominated by *kernel* data with long
lifetimes (saved thread contexts between schedules, semaphore words
alive across the whole run).  The SUM+DMR-hardened variant
(``hardened()``) protects exactly that data, so — as in the paper's
Figure 2(e) — its extrapolated absolute failure count *improves* over
the baseline despite the runtime and memory overhead.
"""

from __future__ import annotations

from ..isa.assembler import Program
from ..kernel.builder import KernelBuilder

#: Ping-pong rounds per run.
DEFAULT_ROUNDS = 4
#: Token increment applied by the echo thread each round.
ECHO_INCREMENT = 100


def _build(*, protect: bool, rounds: int, name: str) -> Program:
    if rounds < 1:
        raise ValueError("need at least one round")
    kb = KernelBuilder(n_threads=2, protect=protect)
    kb.add_semaphore("s_req", initial=0)
    kb.add_semaphore("s_ack", initial=0)
    # The token is the test's critical datum; the hardened configuration
    # protects it along with the kernel objects (selective protection of
    # long-lived critical data, as in the paper's SUM+DMR setup).
    kb.add_word("token", init=0, protected=protect)

    # Thread 0 (main): send round number, wait for the echo, verify.
    body0 = [
        f"addi r3, zero, {rounds}",   # rounds remaining
        "addi r5, zero, 1",           # current round number
        "t0_loop:",
        "addi r1, r5, 0",
        "call token_store",           # token <- round
        "call s_req_post",            # wake the echo thread
        "call s_ack_wait",            # wait for its answer
        "call token_load",            # r1 = echoed token
        f"addi r6, r5, {ECHO_INCREMENT}",
        "bne  r1, r6, t0_fail",
        "li   r7, 'k'",               # per-round success marker
        "out  r7",
        "addi r5, r5, 1",
        "addi r3, r3, -1",
        "bnez r3, t0_loop",
        "li   r7, '!'",               # overall success marker
        "out  r7",
        "halt",
        "t0_fail:",
        "li   r7, 'X'",               # data corruption observed
        "out  r7",
        "halt",
    ]
    # Thread 1 (echo): increment the token and acknowledge.
    body1 = [
        "t1_loop:",
        "call s_req_wait",
        "call token_load",
        f"addi r1, r1, {ECHO_INCREMENT}",
        "call token_store",
        "call s_ack_post",
        "j    t1_loop",
    ]
    kb.set_thread_body(0, body0)
    kb.set_thread_body(1, body1)
    return kb.build(name)


def baseline(rounds: int = DEFAULT_ROUNDS) -> Program:
    """Unprotected ``bin_sem2`` analog."""
    return _build(protect=False, rounds=rounds, name="bin_sem2")


def hardened(rounds: int = DEFAULT_ROUNDS) -> Program:
    """SUM+DMR-hardened variant: kernel objects protected."""
    return _build(protect=True, rounds=rounds, name="bin_sem2-sumdmr")
