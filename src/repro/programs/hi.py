"""The "Hi" benchmark of Section IV (Figure 3) and its DFT variants.

The baseline is the paper's eight-instruction program: it materializes
``'H'`` and ``'i'``, stores them into the two-byte ``msg`` array, loads
them back and writes them to the serial port.  Its fault space is
8 cycles × 16 bits = 128 coordinates, of which exactly 48 fail
(3 cycles × 8 bits per message byte), giving the paper's

    c_baseline = 1 - 48/128 = 62.5 %.

``dft_variant(4)`` prepends four NOPs: 12 × 16 = 192 coordinates, still
48 failures — coverage "improves" to 75.0 % although the transformation
is useless.  ``dft_prime_variant(4)`` uses dummy loads of the message
bytes instead, defeating the "count only activated faults" restriction
the same way (Section IV-B).
"""

from __future__ import annotations

from ..hardening.dft import load_dilution, nop_dilution
from ..isa.assembler import Program, assemble

#: Exactly the paper's instruction stream: four loads, four stores
#: (``out`` is the store to the serial device), no explicit halt — the
#: machine halts by falling off the ROM end, so Δt is exactly 8 cycles.
HI_SOURCE = """\
        .data
msg:    .byte 0, 0
        .text
start:  li   r1, 'H'
        sb   r1, msg(zero)
        li   r2, 'i'
        sb   r2, msg+1(zero)
        lb   r3, msg(zero)
        out  r3
        lb   r4, msg+1(zero)
        out  r4
"""

#: The two-byte RAM footprint gives the paper's 16-bit memory axis.
HI_RAM_SIZE = 2


def baseline() -> Program:
    """The eight-cycle, 16-bit "Hi" benchmark of Figure 3(a)."""
    return assemble(HI_SOURCE, name="hi", ram_size=HI_RAM_SIZE)


def dft_variant(nops: int = 4) -> Program:
    """Figure 3(b): "Dilution Fault Tolerance" — ``nops`` prepended NOPs."""
    return nop_dilution(nops).apply_to_program(baseline())


def dft_prime_variant(loads: int = 4) -> Program:
    """DFT′: dummy loads of the message bytes instead of NOPs.

    The paper's counter to the "exclude never-activated faults"
    restriction: the prepended loads activate (and discard) the faults
    in the padding region.
    """
    return load_dilution(loads, ["msg", "msg+1"]).apply_to_program(
        baseline())


def memory_diluted_variant(extra_bytes: int = 2) -> Program:
    """Spatial dilution: same program, larger never-used RAM footprint.

    Section IV-C: "The DFT could also simply have used more memory for
    no particular purpose instead of prolonging the benchmark's runtime."
    """
    if extra_bytes < 0:
        raise ValueError("extra_bytes must be non-negative")
    return assemble(HI_SOURCE, name=f"hi-mem{extra_bytes}",
                    ram_size=HI_RAM_SIZE + extra_bytes)
