"""Persistence for campaign results.

Stores campaign summaries and per-class results as JSON/CSV.  The cache
keyed by program content lets the benchmark harness regenerate every
figure without re-running campaigns that have not changed — the same
role FAIL*'s experiment database plays in the original toolchain.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..isa.assembler import Program
from .outcomes import Outcome
from .runner import CampaignResult


@dataclass(frozen=True)
class CampaignSummary:
    """Everything the metrics layer needs from a full-scan campaign."""

    program_name: str
    cycles: int
    ram_bytes: int
    fault_space_size: int
    experiments: int
    weighted_counts: dict[str, int]
    raw_counts: dict[str, int]
    known_no_effect_weight: int

    @classmethod
    def from_result(cls, result: CampaignResult) -> "CampaignSummary":
        golden = result.golden
        return cls(
            program_name=golden.program.name,
            cycles=golden.cycles,
            ram_bytes=golden.program.ram_size,
            fault_space_size=result.fault_space_size,
            experiments=result.experiments_conducted,
            weighted_counts={o.value: n for o, n in
                             result.weighted_counts().items()},
            raw_counts={o.value: n for o, n in result.raw_counts().items()},
            known_no_effect_weight=result.partition.known_no_effect_weight,
        )

    def weighted(self) -> dict[Outcome, int]:
        return {Outcome(k): v for k, v in self.weighted_counts.items()}

    def raw(self) -> dict[Outcome, int]:
        return {Outcome(k): v for k, v in self.raw_counts.items()}

    def to_json(self) -> str:
        return json.dumps(self.__dict__, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSummary":
        return cls(**json.loads(text))


def program_fingerprint(program: Program) -> str:
    """Content hash identifying a program variant for caching."""
    digest = hashlib.sha256()
    digest.update(program.name.encode())
    digest.update(str(program.ram_size).encode())
    digest.update(program.source.encode())
    digest.update(program.data)
    for instr in program.rom:
        digest.update(
            f"{instr.op}|{instr.rd}|{instr.rs1}|{instr.rs2}|{instr.imm}"
            .encode())
    return digest.hexdigest()[:24]


class CampaignCache:
    """A directory of :class:`CampaignSummary` JSON files keyed by program.

    ``get_or_run`` is the main entry point: it returns the cached summary
    when the program (source, data, ROM, RAM size) is unchanged, and
    otherwise invokes the supplied campaign thunk and stores its summary.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, program: Program) -> Path:
        return self.directory / (
            f"{program.name}-{program_fingerprint(program)}.json")

    def load(self, program: Program) -> CampaignSummary | None:
        path = self._path(program)
        if not path.exists():
            return None
        try:
            return CampaignSummary.from_json(path.read_text())
        except (json.JSONDecodeError, TypeError):
            return None  # stale or corrupt cache entry; recompute

    def store(self, program: Program, summary: CampaignSummary) -> None:
        self._path(program).write_text(summary.to_json())

    def get_or_run(self, program: Program, thunk) -> CampaignSummary:
        """Return the cached summary or run ``thunk() -> CampaignResult``."""
        cached = self.load(program)
        if cached is not None:
            return cached
        summary = CampaignSummary.from_result(thunk())
        self.store(program, summary)
        return summary


def export_class_results_csv(result: CampaignResult,
                             path: str | Path) -> None:
    """Write per-class experiment results to a CSV file.

    Columns: byte address, interval bounds, lifetime weight, and the
    eight per-bit outcomes.
    """
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["addr", "first_slot", "last_slot", "length"]
                        + [f"bit{b}" for b in range(8)])
        for interval, outcomes in result.class_records():
            writer.writerow(
                [interval.addr, interval.first_slot, interval.last_slot,
                 interval.length] + [o.value for o in outcomes])


def import_class_results_csv(path: str | Path) -> list[dict]:
    """Read back a CSV produced by :func:`export_class_results_csv`."""
    rows = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            rows.append({
                "addr": int(row["addr"]),
                "first_slot": int(row["first_slot"]),
                "last_slot": int(row["last_slot"]),
                "length": int(row["length"]),
                "outcomes": tuple(Outcome(row[f"bit{b}"])
                                  for b in range(8)),
            })
    return rows
