"""Persistence for campaign results.

Stores campaign summaries and per-class results as JSON/CSV.  The cache
keyed by program content lets the benchmark harness regenerate every
figure without re-running campaigns that have not changed — the same
role FAIL*'s experiment database plays in the original toolchain.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..isa.assembler import Program
from .outcomes import Outcome
from .runner import CampaignResult


@dataclass(frozen=True)
class CampaignSummary:
    """Everything the metrics layer needs from a full-scan campaign.

    ``domain`` names the fault model the campaign scanned (``"memory"``
    or ``"register"``); summaries serialized before the field existed
    load as memory-domain summaries.
    """

    program_name: str
    cycles: int
    ram_bytes: int
    fault_space_size: int
    experiments: int
    weighted_counts: dict[str, int]
    raw_counts: dict[str, int]
    known_no_effect_weight: int
    domain: str = "memory"

    @classmethod
    def from_result(cls, result: CampaignResult) -> "CampaignSummary":
        golden = result.golden
        return cls(
            program_name=golden.program.name,
            cycles=golden.cycles,
            ram_bytes=golden.program.ram_size,
            fault_space_size=result.fault_space_size,
            experiments=result.experiments_conducted,
            weighted_counts={o.value: n for o, n in
                             result.weighted_counts().items()},
            raw_counts={o.value: n for o, n in result.raw_counts().items()},
            known_no_effect_weight=result.partition.known_no_effect_weight,
            domain=result.domain.name,
        )

    def weighted(self) -> dict[Outcome, int]:
        return {Outcome(k): v for k, v in self.weighted_counts.items()}

    def raw(self) -> dict[Outcome, int]:
        return {Outcome(k): v for k, v in self.raw_counts.items()}

    def to_json(self) -> str:
        return json.dumps(self.__dict__, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSummary":
        data = json.loads(text)
        # Summaries written before the domain field existed are all
        # memory-domain scans.
        data.setdefault("domain", "memory")
        return cls(**data)


def program_fingerprint(program: Program) -> str:
    """Content hash identifying a program variant for caching."""
    digest = hashlib.sha256()
    digest.update(program.name.encode())
    digest.update(str(program.ram_size).encode())
    digest.update(program.source.encode())
    digest.update(program.data)
    for instr in program.rom:
        digest.update(
            f"{instr.op}|{instr.rd}|{instr.rs1}|{instr.rs2}|{instr.imm}"
            .encode())
    return digest.hexdigest()[:24]


class CampaignCache:
    """A directory of :class:`CampaignSummary` JSON files keyed by program.

    ``get_or_run`` is the main entry point: it returns the cached summary
    when the program (source, data, ROM, RAM size) is unchanged, and
    otherwise invokes the supplied campaign thunk and stores its summary.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, program: Program, domain: str = "memory") -> Path:
        # Memory-domain entries keep the original (domain-less) file
        # names so caches written before fault domains existed still
        # hit; other domains get a suffix to avoid collisions.
        suffix = "" if domain == "memory" else f"-{domain}"
        return self.directory / (
            f"{program.name}-{program_fingerprint(program)}{suffix}.json")

    def load(self, program: Program,
             domain: str = "memory") -> CampaignSummary | None:
        path = self._path(program, domain)
        if not path.exists():
            return None
        try:
            return CampaignSummary.from_json(path.read_text())
        except (json.JSONDecodeError, TypeError):
            return None  # stale or corrupt cache entry; recompute

    def store(self, program: Program, summary: CampaignSummary) -> None:
        self._path(program, summary.domain).write_text(summary.to_json())

    def get_or_run(self, program: Program, thunk,
                   domain: str = "memory") -> CampaignSummary:
        """Return the cached summary or run ``thunk() -> CampaignResult``."""
        cached = self.load(program, domain)
        if cached is not None:
            return cached
        summary = CampaignSummary.from_result(thunk())
        self.store(program, summary)
        return summary


def export_class_results_csv(result: CampaignResult,
                             path: str | Path) -> None:
    """Write per-class experiment results to a CSV file.

    Columns: spatial axis index (byte address or register number),
    interval bounds, lifetime weight, and the domain's per-bit outcomes
    (8 columns for memory, 32 for registers).
    """
    domain = result.domain
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["addr", "first_slot", "last_slot", "length"]
                        + [f"bit{b}" for b in range(domain.bits)])
        for interval, outcomes in result.class_records():
            writer.writerow(
                [domain.axis_of(interval), interval.first_slot,
                 interval.last_slot, interval.length]
                + [o.value for o in outcomes])


def import_class_results_csv(path: str | Path) -> list[dict]:
    """Read back a CSV produced by :func:`export_class_results_csv`."""
    rows = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        bit_columns = [name for name in (reader.fieldnames or [])
                       if name.startswith("bit")]
        for row in reader:
            rows.append({
                "addr": int(row["addr"]),
                "first_slot": int(row["first_slot"]),
                "last_slot": int(row["last_slot"]),
                "length": int(row["length"]),
                "outcomes": tuple(Outcome(row[name])
                                  for name in bit_columns),
            })
    return rows
