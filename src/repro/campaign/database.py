"""Persistence for campaign results.

Stores campaign summaries and per-class results as JSON/CSV.  The cache
keyed by program content lets the benchmark harness regenerate every
figure without re-running campaigns that have not changed — the same
role FAIL*'s experiment database plays in the original toolchain.

Summary caching has been folded into the experiment journal (schema v2
``summaries`` table): :class:`JournalCache` offers the same
``load``/``store``/``get_or_run`` surface on top of an open
:class:`~repro.campaign.journal.ExperimentJournal`, so the summaries
live in the same SQLite file as the campaigns and section results they
came from.  The directory-of-JSON :class:`CampaignCache` remains as a
compatibility shim for existing cache directories.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..isa.assembler import Program
from .outcomes import Outcome
from .runner import CampaignResult


@dataclass(frozen=True)
class CampaignSummary:
    """Everything the metrics layer needs from a full-scan campaign.

    ``domain`` names the fault model the campaign scanned (``"memory"``
    or ``"register"``); summaries serialized before the field existed
    load as memory-domain summaries.
    """

    program_name: str
    cycles: int
    ram_bytes: int
    fault_space_size: int
    experiments: int
    weighted_counts: dict[str, int]
    raw_counts: dict[str, int]
    known_no_effect_weight: int
    domain: str = "memory"

    @classmethod
    def from_result(cls, result: CampaignResult) -> "CampaignSummary":
        golden = result.golden
        return cls(
            program_name=golden.program.name,
            cycles=golden.cycles,
            ram_bytes=golden.program.ram_size,
            fault_space_size=result.fault_space_size,
            experiments=result.experiments_conducted,
            weighted_counts={o.value: n for o, n in
                             result.weighted_counts().items()},
            raw_counts={o.value: n for o, n in result.raw_counts().items()},
            known_no_effect_weight=result.partition.known_no_effect_weight,
            domain=result.domain.name,
        )

    def weighted(self) -> dict[Outcome, int]:
        return {Outcome(k): v for k, v in self.weighted_counts.items()}

    def raw(self) -> dict[Outcome, int]:
        return {Outcome(k): v for k, v in self.raw_counts.items()}

    def to_json(self) -> str:
        return json.dumps(self.__dict__, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSummary":
        data = json.loads(text)
        # Summaries written before the domain field existed are all
        # memory-domain scans.
        data.setdefault("domain", "memory")
        return cls(**data)


def program_fingerprint(program: Program) -> str:
    """Content hash identifying a program variant for caching."""
    digest = hashlib.sha256()
    digest.update(program.name.encode())
    digest.update(str(program.ram_size).encode())
    digest.update(program.source.encode())
    digest.update(program.data)
    for instr in program.rom:
        digest.update(
            f"{instr.op}|{instr.rd}|{instr.rs1}|{instr.rs2}|{instr.imm}"
            .encode())
    return digest.hexdigest()[:24]


class CampaignCache:
    """A directory of :class:`CampaignSummary` JSON files keyed by program.

    ``get_or_run`` is the main entry point: it returns the cached summary
    when the program (source, data, ROM, RAM size) is unchanged, and
    otherwise invokes the supplied campaign thunk and stores its summary.

    .. deprecated::
        New code should use :class:`JournalCache`, which stores the same
        summaries inside the experiment journal next to the campaign and
        section-result rows they were computed from.  This class is kept
        so existing cache directories keep hitting.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, program: Program, domain: str = "memory") -> Path:
        # Memory-domain entries keep the original (domain-less) file
        # names so caches written before fault domains existed still
        # hit; other domains get a suffix to avoid collisions.
        suffix = "" if domain == "memory" else f"-{domain}"
        return self.directory / (
            f"{program.name}-{program_fingerprint(program)}{suffix}.json")

    def load(self, program: Program,
             domain: str = "memory") -> CampaignSummary | None:
        path = self._path(program, domain)
        if not path.exists():
            return None
        try:
            return CampaignSummary.from_json(path.read_text())
        except (json.JSONDecodeError, TypeError):
            return None  # stale or corrupt cache entry; recompute

    def store(self, program: Program, summary: CampaignSummary) -> None:
        self._path(program, summary.domain).write_text(summary.to_json())

    def get_or_run(self, program: Program, thunk,
                   domain: str = "memory") -> CampaignSummary:
        """Return the cached summary or run ``thunk() -> CampaignResult``."""
        cached = self.load(program, domain)
        if cached is not None:
            return cached
        summary = CampaignSummary.from_result(thunk())
        self.store(program, summary)
        return summary


class JournalCache:
    """Campaign-summary cache backed by the experiment journal.

    The journal-native successor of :class:`CampaignCache`: summaries
    are stored in the journal's ``summaries`` table (schema v2), keyed
    by program fingerprint and fault domain, so one SQLite file carries
    the campaigns, the cross-campaign section store *and* the summary
    cache the figure/benchmark harnesses read.
    """

    def __init__(self, journal):
        self.journal = journal  # an open ExperimentJournal

    def load(self, program: Program,
             domain: str = "memory") -> CampaignSummary | None:
        text = self.journal.load_summary(program_fingerprint(program),
                                         domain)
        if text is None:
            return None
        try:
            return CampaignSummary.from_json(text)
        except (json.JSONDecodeError, TypeError):
            return None  # stale or corrupt summary row; recompute

    def store(self, program: Program, summary: CampaignSummary) -> None:
        self.journal.store_summary(
            program_fingerprint(program), summary.domain,
            summary.program_name, summary.to_json())

    def get_or_run(self, program: Program, thunk,
                   domain: str = "memory") -> CampaignSummary:
        """Return the cached summary or run ``thunk() -> CampaignResult``."""
        cached = self.load(program, domain)
        if cached is not None:
            return cached
        summary = CampaignSummary.from_result(thunk())
        self.store(program, summary)
        return summary


def export_class_results_csv(result: CampaignResult,
                             path: str | Path) -> None:
    """Write per-class experiment results to a CSV file.

    Columns: spatial axis index (byte address or register number),
    interval bounds, lifetime weight, and the domain's per-bit outcomes
    (8 columns for memory, 32 for registers).
    """
    domain = result.domain
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["addr", "first_slot", "last_slot", "length"]
                        + [f"bit{b}" for b in range(domain.bits)])
        for interval, outcomes in result.class_records():
            writer.writerow(
                [domain.axis_of(interval), interval.first_slot,
                 interval.last_slot, interval.length]
                + [o.value for o in outcomes])


def import_class_results_csv(path: str | Path) -> list[dict]:
    """Read back a CSV produced by :func:`export_class_results_csv`.

    Robust against files that went through a spreadsheet or another CSV
    tool: bit columns are matched strictly (``bit<N>``) and ordered by
    their *numeric* index — a lexicographic sort would put ``bit10``
    before ``bit2`` and silently permute 32-bit register outcomes — and
    the integer fields tolerate surrounding whitespace.  A missing
    header, a non-contiguous bit-column set or a malformed value raises
    :class:`ValueError` instead of producing a silently wrong import.
    """
    rows = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        fields = reader.fieldnames or []
        missing = [name for name in ("addr", "first_slot", "last_slot",
                                     "length") if name not in fields]
        if missing:
            raise ValueError(
                f"{path}: not a class-results CSV; missing column(s) "
                f"{', '.join(missing)}")
        bit_columns = sorted(
            (name for name in fields
             if name.startswith("bit") and name[3:].isdigit()),
            key=lambda name: int(name[3:]))
        if not bit_columns:
            raise ValueError(f"{path}: no bit<N> outcome columns")
        indices = [int(name[3:]) for name in bit_columns]
        if indices != list(range(len(indices))):
            raise ValueError(
                f"{path}: bit columns are not contiguous from bit0 "
                f"(got {', '.join(bit_columns)})")
        for line, row in enumerate(reader, start=2):
            try:
                rows.append({
                    "addr": int(row["addr"].strip()),
                    "first_slot": int(row["first_slot"].strip()),
                    "last_slot": int(row["last_slot"].strip()),
                    "length": int(row["length"].strip()),
                    "outcomes": tuple(Outcome(row[name].strip())
                                      for name in bit_columns),
                })
            except (AttributeError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}: malformed row at line {line}: {exc}") \
                    from exc
    return rows


def export_class_rows_csv(rows: list[dict], path: str | Path) -> None:
    """Write rows in :func:`import_class_results_csv` form back to CSV.

    The inverse of the importer: re-exporting an imported file produces
    a byte-identical copy, which is what makes the CSV a faithful
    interchange format (and what the round-trip tests assert).
    """
    if not rows:
        raise ValueError("no rows to export")
    bits = len(rows[0]["outcomes"])
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["addr", "first_slot", "last_slot", "length"]
                        + [f"bit{b}" for b in range(bits)])
        for row in rows:
            if len(row["outcomes"]) != bits:
                raise ValueError(
                    "rows mix outcome widths; cannot export one CSV")
            writer.writerow(
                [row["addr"], row["first_slot"], row["last_slot"],
                 row["length"]] + [o.value for o in row["outcomes"]])
