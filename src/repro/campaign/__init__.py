"""Fault-injection campaign engine (the FAIL*-equivalent substrate)."""

from .compose import SectionComposer, build_composer, compose_into_completed
from .database import (
    CampaignCache,
    CampaignSummary,
    JournalCache,
    export_class_results_csv,
    export_class_rows_csv,
    import_class_results_csv,
    program_fingerprint,
)
from .experiment import (
    DEFAULT_TIMEOUT_FACTOR,
    DEFAULT_TIMEOUT_SLACK,
    ExecutorConfig,
    ExperimentExecutor,
    ExperimentRecord,
)
from .journal import (
    ExecutionReport,
    ExperimentJournal,
    JournalError,
    JournalMismatchError,
)
from .dist import DistCoordinator, DistWorker, run_distributed_scan
from .parallel import ParallelCampaign, RetryPolicy, resolve_jobs
from .golden import (
    DEFAULT_GOLDEN_CYCLE_LIMIT,
    MAX_CHECKPOINTS,
    CheckpointLadder,
    GoldenRun,
    GoldenRunError,
    record_golden,
)
from .outcomes import (
    BENIGN_OUTCOMES,
    CORRECTED_CODE,
    FAILURE_OUTCOMES,
    Outcome,
    PANIC_CODE,
    classify,
)
from .registers import (
    RegisterCampaignResult,
    RegisterExperimentExecutor,
    collect_pc_trace,
    register_partition,
    run_register_brute_force,
    run_register_scan,
)
from .runner import (
    BruteForceResult,
    CampaignResult,
    SAMPLERS,
    SamplingResult,
    run_brute_force,
    run_full_scan,
    run_sampling,
)

__all__ = [
    "BENIGN_OUTCOMES",
    "BruteForceResult",
    "CORRECTED_CODE",
    "CampaignCache",
    "CampaignResult",
    "CampaignSummary",
    "DEFAULT_GOLDEN_CYCLE_LIMIT",
    "DEFAULT_TIMEOUT_FACTOR",
    "DEFAULT_TIMEOUT_SLACK",
    "DistCoordinator",
    "DistWorker",
    "ExecutionReport",
    "ExecutorConfig",
    "ExperimentExecutor",
    "ExperimentJournal",
    "ExperimentRecord",
    "FAILURE_OUTCOMES",
    "JournalCache",
    "JournalError",
    "JournalMismatchError",
    "SectionComposer",
    "build_composer",
    "compose_into_completed",
    "ParallelCampaign",
    "RetryPolicy",
    "resolve_jobs",
    "CheckpointLadder",
    "GoldenRun",
    "GoldenRunError",
    "MAX_CHECKPOINTS",
    "Outcome",
    "PANIC_CODE",
    "RegisterCampaignResult",
    "RegisterExperimentExecutor",
    "SAMPLERS",
    "collect_pc_trace",
    "register_partition",
    "run_register_brute_force",
    "run_register_scan",
    "SamplingResult",
    "classify",
    "export_class_results_csv",
    "export_class_rows_csv",
    "import_class_results_csv",
    "program_fingerprint",
    "record_golden",
    "run_brute_force",
    "run_distributed_scan",
    "run_full_scan",
    "run_sampling",
]
