"""Deterministic fault injection into the campaign fabric itself.

The paper's comparisons rest on absolute failure counts being exact; a
fabric that silently drops, duplicates or corrupts a result frame
invalidates them more subtly than any sampling bias.  This module turns
the fault injector on its own transport: a :class:`ChaosPlan` is a
seeded, serializable schedule of frame drops, duplications, byte
corruptions, delays, worker kills and hangs, applied through a proxy
wrapper around the frame protocol (:class:`ChaosFrameStream`) so that
every chaos run is **exactly reproducible** from ``(seed, params)``.

Determinism contract: whether chaos fires on a worker's *n*-th result
frame is a pure function of ``(plan.seed, worker_name, n)`` — never of
wall-clock time, scheduling or socket buffering.  Counters are
cumulative across reconnects, so the schedule is unaffected by how the
failures it injects reshuffle the work.

Event taxonomy (all independent per result frame):

=============  ===============================================================
``drop``       close the connection right after sending (in-flight loss)
``dup``        send the frame twice (at-least-once delivery stress)
``corrupt``    tamper the result rows but keep the *stale* CRC — models
               payload corruption in transit; caught by the coordinator's
               frame CRC check
``lie``        tamper the rows and recompute the CRC — models a byzantine
               or silently-miscomputing worker; only cross-check sampling
               can catch it
``delay``      sleep before sending (reordering / lease-expiry stress)
``kill``       ``os._exit(13)`` — only sane for subprocess workers
``hang``       sleep a long time mid-lease (wedged worker)
=============  ===============================================================

``lie`` additionally honors :attr:`ChaosPlan.liars`: when non-empty,
only the named workers ever lie, which is how the byzantine-detection
tests plant exactly one corrupted worker in an otherwise honest fleet.

The legacy ``REPRO_DIST_CHAOS`` env hooks (``die_after_results``,
``drop_after_results``, ``duplicate_results``) are kept as counter
fields on the plan and routed through the same proxy; specifying them
via the old env variable still works behind :func:`plan_from_env` but
emits a :class:`DeprecationWarning`.  New code ships a whole plan via
``REPRO_CHAOS_PLAN`` (JSON) or the ``chaos=`` constructor argument.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import time
import warnings

from ..outcomes import Outcome
from .protocol import FrameStream, result_digest

#: Environment variable carrying a full serialized :class:`ChaosPlan`.
PLAN_ENV = "REPRO_CHAOS_PLAN"
#: Legacy environment variable (counter dict); deprecated.
LEGACY_ENV = "REPRO_DIST_CHAOS"

_LEGACY_KEYS = frozenset(
    {"die_after_results", "drop_after_results", "duplicate_results"})


class ChaosInterrupt(ConnectionError):
    """A chaos event severed this worker's connection (simulated death).

    Subclasses :class:`ConnectionError` so the worker's run loop treats
    it exactly like a real network failure: back off, reconnect, ask
    for work again.
    """


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """One seeded, serializable chaos schedule.

    Rates are per-result-frame probabilities in ``[0, 1]``, drawn from a
    private deterministic stream per ``(seed, worker, frame index)``.
    The plan is frozen and JSON-serializable (:meth:`to_json` /
    :meth:`from_json`) so a chaos run can be named, shipped to
    subprocess workers via :data:`PLAN_ENV`, and replayed bit-for-bit.
    """

    seed: int = 0
    #: Close the connection right after sending a result frame.
    drop_rate: float = 0.0
    #: Send a result frame twice.
    dup_rate: float = 0.0
    #: Tamper rows, keep the stale CRC (CRC-detectable corruption).
    corrupt_rate: float = 0.0
    #: Tamper rows *and* recompute the CRC (byzantine; cross-check only).
    lie_rate: float = 0.0
    #: Sleep :attr:`delay_seconds` before sending.
    delay_rate: float = 0.0
    delay_seconds: float = 0.02
    #: ``os._exit(13)`` instead of sending (subprocess workers only).
    kill_rate: float = 0.0
    #: Sleep :attr:`hang_seconds` after sending (wedged worker).
    hang_rate: float = 0.0
    hang_seconds: float = 30.0
    #: Workers allowed to ``lie``; empty means every worker may.
    liars: tuple[str, ...] = ()
    #: Class keys whose execution kills the worker (poison-shard tests).
    die_on_keys: tuple[tuple[int, int], ...] = ()
    #: Legacy counters (cumulative across reconnects, firing once).
    die_after_results: int | None = None
    drop_after_results: int | None = None
    duplicate_results: int = 0
    #: Coordinator-side schedule: simulate a coordinator crash after
    #: accepting this many fresh results (maps to ``stop_after_results``).
    stop_coordinator_after: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "liars", tuple(self.liars))
        object.__setattr__(
            self, "die_on_keys",
            tuple(tuple(int(v) for v in key) for key in self.die_on_keys))

    @property
    def active(self) -> bool:
        """True when any worker-side event can ever fire."""
        return bool(
            self.drop_rate or self.dup_rate or self.corrupt_rate
            or self.lie_rate or self.delay_rate or self.kill_rate
            or self.hang_rate or self.die_on_keys
            or self.die_after_results is not None
            or self.drop_after_results is not None
            or self.duplicate_results)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["liars"] = list(self.liars)
        out["die_on_keys"] = [list(key) for key in self.die_on_keys]
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown chaos plan field(s): {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        return cls.from_dict(json.loads(text))


def plan_from_spec(spec, *, warn: bool = True) -> ChaosPlan | None:
    """Normalize a ``chaos=`` argument into a :class:`ChaosPlan`.

    Accepts ``None``, a plan, a plan-shaped dict, or a legacy
    ``REPRO_DIST_CHAOS``-style counter dict (deprecation shim: the old
    counters become plan fields and warn once per call site).
    """
    if spec is None or isinstance(spec, ChaosPlan):
        return spec
    if not isinstance(spec, dict):
        raise TypeError(f"chaos spec must be a dict or ChaosPlan, "
                        f"got {type(spec).__name__}")
    if spec and set(spec) <= _LEGACY_KEYS:
        if warn:
            warnings.warn(
                "counter-style chaos dicts (die_after_results/"
                "drop_after_results/duplicate_results) are deprecated; "
                "pass a ChaosPlan (campaign.dist.chaos) instead",
                DeprecationWarning, stacklevel=3)
        return ChaosPlan(**spec)
    return ChaosPlan.from_dict(spec) if spec else None


def plan_from_env(environ=None) -> ChaosPlan | None:
    """The chaos plan a worker process inherits from its environment.

    ``REPRO_CHAOS_PLAN`` (a serialized plan) wins; the legacy
    ``REPRO_DIST_CHAOS`` counter dict is honored behind a
    :class:`DeprecationWarning`.
    """
    environ = os.environ if environ is None else environ
    text = environ.get(PLAN_ENV)
    if text:
        return ChaosPlan.from_json(text)
    legacy = environ.get(LEGACY_ENV)
    if legacy:
        warnings.warn(
            f"{LEGACY_ENV} is deprecated; set {PLAN_ENV} to a "
            f"serialized ChaosPlan instead", DeprecationWarning,
            stacklevel=2)
        return plan_from_spec(json.loads(legacy), warn=False)
    return None


#: Fixed draw order — part of the reproducibility contract: adding a new
#: event type must append here, never reorder.
_EVENTS = ("corrupt", "lie", "dup", "drop", "delay", "kill", "hang")


class WorkerChaos:
    """One worker's deterministic chaos state (cumulative across sessions).

    The object outlives individual connections — reconnects triggered by
    the chaos it injects must not reset the schedule — so the worker
    owns one instance and wraps each session's :class:`FrameStream`
    through :meth:`wrap`.
    """

    def __init__(self, plan: ChaosPlan, worker: str):
        self.plan = plan
        self.worker = worker
        #: Result frames sent so far, over the whole worker lifetime.
        self.results_sent = 0
        #: Telemetry: event name → times fired.
        self.fired: dict[str, int] = {}

    def wrap(self, stream: FrameStream) -> "ChaosFrameStream":
        return ChaosFrameStream(stream, self)

    def _rng(self, index: int) -> random.Random:
        return random.Random(f"{self.plan.seed}/{self.worker}/{index}")

    def events_for(self, index: int) -> tuple[str, ...]:
        """Chaos events for this worker's ``index``-th result frame.

        Pure in ``(seed, worker, index)``; at most one payload-tampering
        event (``corrupt`` beats ``lie``) and at most one
        connection-ending event fire per frame.
        """
        plan = self.plan
        rng = self._rng(index)
        hit = []
        for name in _EVENTS:
            draw = rng.random()
            rate = getattr(plan, f"{name}_rate")
            if name == "lie" and plan.liars \
                    and self.worker not in plan.liars:
                continue
            if rate and draw < rate:
                hit.append(name)
        if "corrupt" in hit and "lie" in hit:
            hit.remove("lie")
        if "drop" in hit and "kill" in hit:
            hit.remove("kill")
        return tuple(hit)

    def tampered(self, message: dict, index: int) -> dict:
        """A deterministically corrupted copy of a result message.

        Flips one row's outcome to a different (valid) class and bumps
        its end cycle — the kind of wrong-but-well-formed payload a
        miscomputing worker would produce, which shape validation alone
        cannot reject.
        """
        rows = [list(row) for row in message["rows"]]
        if rows:
            victim = rows[index % len(rows)]
            outcomes = [o.value for o in Outcome]
            current = outcomes.index(str(victim[1])) \
                if str(victim[1]) in outcomes else 0
            victim[1] = outcomes[(current + 1) % len(outcomes)]
            victim[2] = int(victim[2]) + 1
        out = dict(message)
        out["rows"] = rows
        return out

    def before_class(self, key: tuple[int, int]) -> None:
        """Kill the worker before executing a poisoned class key."""
        if tuple(key) in self.plan.die_on_keys:
            self.fired["die_on_key"] = self.fired.get("die_on_key", 0) + 1
            raise ChaosInterrupt(f"chaos: worker died executing {key}")

    def _count(self, name: str) -> None:
        self.fired[name] = self.fired.get(name, 0) + 1


class ChaosFrameStream:
    """Proxy over :class:`FrameStream` applying the plan to result frames.

    Non-result frames (hello, request, heartbeat, lease_done) pass
    through untouched — the schedule is defined over *result* frames so
    it stays aligned with the legacy counters and with what actually
    threatens result integrity.
    """

    def __init__(self, stream: FrameStream, chaos: WorkerChaos):
        self._stream = stream
        self._chaos = chaos

    # Delegated surface (the worker uses exactly these four).

    def close(self) -> None:
        self._stream.close()

    def read(self, timeout: float | None = None):
        return self._stream.read(timeout)

    def poll(self):
        return self._stream.poll()

    def send(self, message: dict) -> None:
        if message.get("type") != "result":
            self._stream.send(message)
            return
        chaos, plan = self._chaos, self._chaos.plan
        index = chaos.results_sent
        if plan.die_after_results is not None \
                and index == plan.die_after_results:
            chaos._count("die")
            os._exit(13)
        events = chaos.events_for(index)
        if "kill" in events:
            chaos._count("kill")
            os._exit(13)
        out = message
        if "corrupt" in events:
            # Stale CRC: the payload changed after digesting, exactly
            # what in-flight corruption looks like to the coordinator.
            chaos._count("corrupt")
            out = chaos.tampered(message, index)
        elif "lie" in events:
            # Fresh CRC over wrong rows: indistinguishable from honest
            # work without cross-check sampling.
            chaos._count("lie")
            out = chaos.tampered(message, index)
            out["crc"] = result_digest(out["key"], out["rows"])
        if "delay" in events:
            chaos._count("delay")
            time.sleep(plan.delay_seconds)
        self._stream.send(out)
        chaos.results_sent += 1
        if "dup" in events or chaos.results_sent <= plan.duplicate_results:
            chaos._count("dup")
            self._stream.send(out)
        if "drop" in events \
                or chaos.results_sent == plan.drop_after_results:
            chaos._count("drop")
            self._stream.close()
            raise ChaosInterrupt("chaos: dropped connection")
        if "hang" in events:
            chaos._count("hang")
            time.sleep(plan.hang_seconds)


__all__ = [
    "LEGACY_ENV",
    "PLAN_ENV",
    "ChaosFrameStream",
    "ChaosInterrupt",
    "ChaosPlan",
    "WorkerChaos",
    "plan_from_env",
    "plan_from_spec",
]
