"""Wire protocol of the distributed campaign fabric.

Length-prefixed JSON frames: every message is one UTF-8 JSON object
preceded by a 4-byte big-endian byte count.  JSON (not pickle) keeps the
protocol inspectable, language-agnostic and safe — a coordinator never
executes anything a worker sent, and vice versa; both sides validate
structure and re-derive every object (programs are re-assembled from
source, intervals are looked up in a locally built partition) instead of
trusting the peer's serialization.

Message vocabulary (``type`` field):

==================  =========  ==============================================
type                direction  meaning
==================  =========  ==============================================
``hello``           w → c      worker introduces itself (name, version)
``campaign``        c → w      campaign spec: program source, fingerprint,
                               golden facts, executor config
``ready``           w → c      worker rebuilt + verified the golden run
``reject``          c → w      verification failed; worker must not execute
``error``           w → c      worker-side verification failure (diagnostic)
``request``         w → c      give me work
``lease``           c → w      a shard lease: id, class keys, deadline
``wait``            c → w      no assignable work right now; retry in N s
``done``            c → w      campaign finished; disconnect
``result``          w → c      one class's experiment rows (streamed),
                               carrying a :func:`result_digest` CRC the
                               coordinator re-derives before merging
``lease_done``      w → c      every key of the lease was submitted
``heartbeat``       w → c      liveness signal (sent from a timer thread)
==================  =========  ==============================================

Version 2 added end-to-end result integrity: every ``result`` frame
carries ``crc`` (:func:`result_digest` over its key and rows), and
``lease`` frames may carry ``verify: true`` with a negative lease id —
a cross-check lease asking the worker to re-execute classes another
worker already delivered so the coordinator can byte-compare the two
(workers execute verify leases identically; only the coordinator treats
the results differently).

Two transport bindings share the codec: :class:`FrameStream` wraps a
blocking ``socket`` for the worker (with a non-blocking :meth:`poll` so
a worker can notice a mid-lease ``done`` between classes), and
:func:`read_frame` / :func:`write_frame` bind the same frames to
``asyncio`` streams for the coordinator.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib

#: Bumped on incompatible protocol changes; both sides send it in the
#: handshake and refuse mismatching peers.  Version 2: result CRCs and
#: cross-check verify leases.
PROTOCOL_VERSION = 2

#: Refuse absurd frame lengths outright — a peer speaking a different
#: protocol (or garbage) would otherwise make us allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer violated the framing or message contract."""


def result_digest(key, rows) -> int:
    """CRC-32 of a result frame's semantic content.

    Computed over the canonical JSON of ``[key, rows]`` — the class
    identity plus every ``(bit, outcome, end_cycle, trap)`` row — so it
    is invariant to framing, field order elsewhere in the message, and
    list-vs-tuple representation.  The worker stamps it on each
    ``result`` frame; the coordinator re-derives it from the decoded
    payload before merging, which catches corruption anywhere between
    the worker's executor and the coordinator's journal (including a
    serialization bug on either side).  It is also the byte-comparison
    unit of cross-check sampling: two honest executions of the same
    class necessarily produce equal digests.
    """
    payload = json.dumps(
        [[int(v) for v in key],
         [[int(row[0]), str(row[1]), int(row[2]), str(row[3])]
          for row in rows]],
        separators=(",", ":"))
    return zlib.crc32(payload.encode("utf-8"))


def encode_frame(message: dict) -> bytes:
    """One message as length-prefixed JSON bytes."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Decode one frame body (the bytes after the length prefix)."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(
            f"frame is not a typed message: {message!r:.80}")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (limit "
            f"{MAX_FRAME_BYTES}); not speaking this protocol?")


class FrameStream:
    """Blocking-socket binding of the frame codec (worker side).

    Owns a receive buffer so partially delivered frames survive between
    reads — in particular, :meth:`poll` may consume half a frame
    without blocking and a later :meth:`read` completes it.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buffer = bytearray()

    def close(self) -> None:
        self._sock.close()

    def send(self, message: dict) -> None:
        """Send one frame (callers serialize concurrent senders)."""
        self._sock.sendall(encode_frame(message))

    def _extract(self) -> dict | None:
        """Pop one complete frame from the buffer, if present."""
        if len(self._buffer) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack_from(self._buffer)
        _check_length(length)
        end = _HEADER.size + length
        if len(self._buffer) < end:
            return None
        payload = bytes(self._buffer[_HEADER.size:end])
        del self._buffer[:end]
        return decode_frame(payload)

    def read(self, timeout: float | None = None) -> dict | None:
        """Read one frame, blocking up to ``timeout``; None on clean EOF.

        Raises ``socket.timeout`` (an ``OSError``) when the deadline
        passes mid-frame — callers treat that as a lost connection.
        """
        self._sock.settimeout(timeout)
        while True:
            frame = self._extract()
            if frame is not None:
                return frame
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError("connection closed mid-frame")
                return None
            self._buffer.extend(chunk)

    def poll(self) -> dict | None:
        """Return a buffered frame without blocking, else None."""
        frame = self._extract()
        if frame is not None:
            return frame
        self._sock.settimeout(0.0)
        try:
            while True:
                chunk = self._sock.recv(65536)
                if not chunk:
                    # EOF: surface it on the next blocking read.
                    return self._extract()
                self._buffer.extend(chunk)
                frame = self._extract()
                if frame is not None:
                    return frame
        except (BlockingIOError, InterruptedError):
            return None
        finally:
            self._sock.settimeout(None)


# -- asyncio binding (coordinator side) ----------------------------------------


async def read_frame(reader) -> dict | None:
    """Read one frame from an asyncio stream; None on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("connection closed mid-frame") from exc
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_frame(payload)


def write_frame(writer, message: dict) -> None:
    """Queue one frame on an asyncio stream writer.

    A single ``write()`` call appends the whole frame to the transport
    buffer, so frames from different tasks can interleave but never
    tear; callers ``await writer.drain()`` at their own cadence.
    """
    writer.write(encode_frame(message))
