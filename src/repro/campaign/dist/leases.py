"""Work leases: who may execute which shard, and for how long.

The coordinator never *sends* work, it *leases* it: a shard grant
carries a wall-clock deadline derived from the shard's remaining
estimated cycle cost (:meth:`RetryPolicy.deadline_for`, the same
derivation the in-process pool uses).  Liveness is measured by
*progress*, not by heartbeats — every accepted class result refreshes
the lease deadline against the now-smaller remaining cost, so a worker
that keeps finishing classes keeps its lease indefinitely, while a
wedged worker whose heartbeat thread still ticks loses the lease the
moment its cost-derived deadline passes.

Failure handling is explicit state, not exceptions:

* An **expired** or **disconnected** lease releases its shard back to
  the pending pool, charged one attempt and embargoed for
  ``backoff * backoff_factor ** (attempts - 1)`` seconds of exponential
  backoff.
* A shard whose attempts exceed :attr:`RetryPolicy.max_retries` is
  marked **failed** — permanently lost; its remaining classes surface
  in ``ExecutionReport.missing`` instead of hanging the campaign.
* Results are accepted from *any* lease, current or revoked: work is
  work (experiments are deterministic), and :meth:`LeaseBoard.progress`
  plus the journal's idempotent merge turn at-least-once delivery into
  exactly-once accounting.

The board is plain single-threaded state driven by the coordinator's
event loop; it does no I/O and takes ``now`` as an argument, which is
what makes the chaos tests deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..parallel import RetryPolicy

#: A live class identity: ``(axis, first_slot)`` — the journal key.
Key = tuple[int, int]

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
#: Terminal: the shard was bisected into child shards (poison hunt).
SPLIT = "split"
#: Terminal: a single-key shard proven to kill distinct workers.
POISON = "poison"

#: Statuses from which a shard can never produce more work.
TERMINAL = (DONE, FAILED, SPLIT, POISON)


@dataclass
class ShardLease:
    """One grant of a shard to a worker."""

    lease_id: int
    shard: int
    worker: str
    #: The keys still unfinished at grant time, in execution order.
    keys: tuple[Key, ...]
    granted_at: float
    deadline: float
    #: Whether any key was accounted under this lease.  A lease that
    #: dies with *zero* progress is the poison-detection signal: a
    #: genuinely poisonous key kills the worker before it can deliver,
    #: whereas transport chaos (drops, corruption) strikes after real
    #: work was merged.
    progressed: bool = False


@dataclass
class _Shard:
    index: int
    #: Full planned key list (stable across coordinator restarts).
    keys: tuple[Key, ...]
    #: Keys not yet accounted, in execution order.
    remaining: list[Key]
    attempts: int = 0
    available_at: float = 0.0
    status: str = PENDING
    lease: ShardLease | None = None
    #: Distinct workers whose lease attempt on this shard ended with no
    #: progress at all (died, disconnected or expired before delivering
    #: a single key) — the poison-detection signal.  Attempts that made
    #: progress before failing are ordinary transport trouble and are
    #: not attributed, so frame-drop chaos cannot frame innocent keys.
    failed_workers: set[str] = field(default_factory=set)
    #: Workers this shard refuses (cross-check tiebreaks exclude the
    #: two disputing workers), until ``excluded_until`` passes —
    #: liveness beats attribution quality if nobody else shows up.
    excluded: frozenset[str] = frozenset()
    excluded_until: float = 0.0


@dataclass
class LeaseBoard:
    """Single-writer lease state machine over one shard plan."""

    policy: RetryPolicy
    #: Per-key estimated cycle cost (drives deadline derivation).
    key_costs: dict[Key, int]
    #: Re-queues after an expiry or disconnect (for the report).
    retries: int = 0
    #: Shards abandoned after exhausting the retry budget.
    failed_shards: int = 0
    #: Bisections performed while isolating poisonous keys.
    splits: int = 0
    _shards: list[_Shard] = field(default_factory=list)
    _next_lease_id: int = 0

    def add_shard(self, index: int, keys: list[Key],
                  remaining: list[Key]) -> None:
        shard = _Shard(index=index, keys=tuple(keys),
                       remaining=list(remaining))
        if not shard.remaining:
            shard.status = DONE
        self._shards.append(shard)

    def restore(self, index: int, *, attempts: int, status: str) -> None:
        """Re-apply journaled retry state after a coordinator restart."""
        shard = self._shards[index]
        shard.attempts = attempts
        if status == FAILED:
            shard.status = FAILED
        elif shard.status == PENDING and attempts:
            # Interrupted attempts embargo the shard exactly as a live
            # expiry would, so a crash-looping worker cannot burn the
            # retry budget instantly after every coordinator restart.
            self._embargo(shard, now=0.0)

    # -- queries ---------------------------------------------------------------

    def shards(self) -> list[_Shard]:
        return list(self._shards)

    def done(self) -> bool:
        """True when no shard can ever produce more work."""
        return all(s.status in TERMINAL for s in self._shards)

    def failed_keys(self) -> list[Key]:
        """Keys permanently lost, in plan order."""
        out: list[Key] = []
        for shard in self._shards:
            if shard.status in (FAILED, POISON):
                out.extend(shard.remaining)
        return out

    def poison_keys(self) -> list[Key]:
        """Keys isolated as poisonous (they kill distinct workers)."""
        out: list[Key] = []
        for shard in self._shards:
            if shard.status == POISON:
                out.extend(shard.remaining)
        return out

    def poison_suspects(self, workers: int) -> list[_Shard]:
        """Pending shards charged to at least ``workers`` distinct workers."""
        return [shard for shard in self._shards
                if shard.status == PENDING
                and len(shard.failed_workers) >= workers]

    def _remaining_cost(self, shard: _Shard) -> int:
        return sum(self.key_costs.get(key, 1) for key in shard.remaining)

    # -- transitions -----------------------------------------------------------

    def acquire(self, worker: str, now: float) \
            -> ShardLease | float | None:
        """Grant the next assignable shard to ``worker``.

        Returns a :class:`ShardLease`, or the number of seconds the
        worker should wait before asking again (work exists but is
        leased out or embargoed), or ``None`` when the campaign has no
        more work at all.
        """
        wait: float | None = None
        for shard in self._shards:
            if shard.status == LEASED:
                wait = min(wait or self.policy.heartbeat,
                           self.policy.heartbeat)
            elif shard.status == PENDING:
                if worker in shard.excluded and now < shard.excluded_until:
                    delay = shard.excluded_until - now
                    wait = min(wait, delay) if wait is not None else delay
                elif shard.available_at > now:
                    delay = shard.available_at - now
                    wait = min(wait, delay) if wait is not None else delay
                else:
                    return self._grant(shard, worker, now)
        if wait is None:
            return None
        return max(0.05, wait)

    def _grant(self, shard: _Shard, worker: str,
               now: float) -> ShardLease:
        self._next_lease_id += 1
        lease = ShardLease(
            lease_id=self._next_lease_id, shard=shard.index,
            worker=worker, keys=tuple(shard.remaining), granted_at=now,
            deadline=now + self.policy.deadline_for(
                self._remaining_cost(shard)))
        shard.status = LEASED
        shard.lease = lease
        return lease

    def progress(self, shard_index: int, key: Key, now: float, *,
                 worker: str | None = None) -> bool:
        """Account one submitted class; False for a duplicate.

        Accepts the key whether or not the submitting lease is still
        current; refreshes the active lease's deadline against the
        shrunken remaining cost (progress is the liveness signal).
        ``worker`` names the submitter so the active lease is only
        marked progressed by its own holder's work, not by a late
        retransmit from a previous holder.
        """
        shard = self._shards[shard_index]
        try:
            shard.remaining.remove(key)
        except ValueError:
            return False
        if shard.lease is not None \
                and (worker is None or shard.lease.worker == worker):
            shard.lease.progressed = True
        if not shard.remaining and shard.status in (PENDING, LEASED):
            shard.status = DONE
            shard.lease = None
        elif shard.lease is not None:
            shard.lease.deadline = now + self.policy.deadline_for(
                self._remaining_cost(shard))
        return True

    def finish(self, shard_index: int, lease_id: int, now: float) -> None:
        """A worker claims its lease is exhausted.

        Normally every key was already accounted and the shard is done;
        a ``lease_done`` with keys still remaining means results were
        lost in flight — treat it as a failed attempt so the remainder
        is re-leased.
        """
        shard = self._shards[shard_index]
        lease = shard.lease
        if lease is None or lease.lease_id != lease_id:
            return  # stale claim from a revoked lease; nothing to do
        if shard.remaining:
            self._charge(shard, now)
        else:
            shard.status = DONE
            shard.lease = None

    def release_worker(self, worker: str, now: float) -> list[int]:
        """A worker disconnected; re-queue its active leases."""
        released = []
        for shard in self._shards:
            if shard.status == LEASED and shard.lease is not None \
                    and shard.lease.worker == worker:
                self._charge(shard, now)
                released.append(shard.index)
        return released

    def expire(self, now: float) -> list[int]:
        """Revoke every lease whose deadline passed."""
        expired = []
        for shard in self._shards:
            if shard.status == LEASED and shard.lease is not None \
                    and now >= shard.lease.deadline:
                self._charge(shard, now)
                expired.append(shard.index)
        return expired

    def _charge(self, shard: _Shard, now: float) -> None:
        if shard.lease is not None and not shard.lease.progressed:
            shard.failed_workers.add(shard.lease.worker)
        shard.lease = None
        shard.attempts += 1
        if shard.attempts > self.policy.max_retries:
            shard.status = FAILED
            self.failed_shards += 1
        else:
            shard.status = PENDING
            self.retries += 1
            self._embargo(shard, now=now)

    def _embargo(self, shard: _Shard, *, now: float) -> None:
        shard.available_at = now + self.policy.backoff * (
            self.policy.backoff_factor ** max(0, shard.attempts - 1))

    # -- poison-shard bisection and dynamic requeue ----------------------------

    def split_shard(self, index: int, now: float) -> list[int]:
        """Bisect a suspect shard into two children with fresh budgets.

        The poison hunt: a shard whose ``failed_workers`` set keeps
        growing contains at least one key whose execution kills
        workers.  Halving the remaining keys (preserving execution
        order, so snapshot fast-forward still pays) narrows the suspect
        range by one bit per round; a single remaining key that still
        kills distinct workers is declared :data:`POISON` by
        :meth:`mark_poison` instead of looping forever.  Returns the
        new child indices.
        """
        shard = self._shards[index]
        if shard.status != PENDING or len(shard.remaining) < 2:
            return []
        half = len(shard.remaining) // 2
        children = []
        for part in (shard.remaining[:half], shard.remaining[half:]):
            child = _Shard(index=len(self._shards), keys=tuple(part),
                           remaining=list(part))
            self._shards.append(child)
            children.append(child.index)
        shard.status = SPLIT
        shard.remaining = []
        shard.lease = None
        self.splits += 1
        return children

    def mark_poison(self, index: int) -> list[Key]:
        """Declare a shard poisonous; its keys become permanent losses."""
        shard = self._shards[index]
        shard.status = POISON
        shard.lease = None
        return list(shard.remaining)

    def requeue(self, keys: list[Key], *, now: float,
                excluded: frozenset[str] = frozenset(),
                exclusion_seconds: float = 0.0) -> int:
        """Append a fresh shard re-queuing already-planned keys.

        Used when journaled results are discarded (a byzantine worker's
        unverified deliveries) or a cross-check dispute needs a third,
        independent execution — ``excluded`` names workers the new
        shard refuses until ``now + exclusion_seconds``.  The shard
        gets a full fresh retry budget.
        """
        child = _Shard(index=len(self._shards), keys=tuple(keys),
                       remaining=list(keys),
                       excluded=frozenset(excluded),
                       excluded_until=now + exclusion_seconds)
        if not child.remaining:
            child.status = DONE
        self._shards.append(child)
        return child.index
