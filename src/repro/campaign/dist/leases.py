"""Work leases: who may execute which shard, and for how long.

The coordinator never *sends* work, it *leases* it: a shard grant
carries a wall-clock deadline derived from the shard's remaining
estimated cycle cost (:meth:`RetryPolicy.deadline_for`, the same
derivation the in-process pool uses).  Liveness is measured by
*progress*, not by heartbeats — every accepted class result refreshes
the lease deadline against the now-smaller remaining cost, so a worker
that keeps finishing classes keeps its lease indefinitely, while a
wedged worker whose heartbeat thread still ticks loses the lease the
moment its cost-derived deadline passes.

Failure handling is explicit state, not exceptions:

* An **expired** or **disconnected** lease releases its shard back to
  the pending pool, charged one attempt and embargoed for
  ``backoff * backoff_factor ** (attempts - 1)`` seconds of exponential
  backoff.
* A shard whose attempts exceed :attr:`RetryPolicy.max_retries` is
  marked **failed** — permanently lost; its remaining classes surface
  in ``ExecutionReport.missing`` instead of hanging the campaign.
* Results are accepted from *any* lease, current or revoked: work is
  work (experiments are deterministic), and :meth:`LeaseBoard.progress`
  plus the journal's idempotent merge turn at-least-once delivery into
  exactly-once accounting.

The board is plain single-threaded state driven by the coordinator's
event loop; it does no I/O and takes ``now`` as an argument, which is
what makes the chaos tests deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..parallel import RetryPolicy

#: A live class identity: ``(axis, first_slot)`` — the journal key.
Key = tuple[int, int]

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"


@dataclass
class ShardLease:
    """One grant of a shard to a worker."""

    lease_id: int
    shard: int
    worker: str
    #: The keys still unfinished at grant time, in execution order.
    keys: tuple[Key, ...]
    granted_at: float
    deadline: float


@dataclass
class _Shard:
    index: int
    #: Full planned key list (stable across coordinator restarts).
    keys: tuple[Key, ...]
    #: Keys not yet accounted, in execution order.
    remaining: list[Key]
    attempts: int = 0
    available_at: float = 0.0
    status: str = PENDING
    lease: ShardLease | None = None


@dataclass
class LeaseBoard:
    """Single-writer lease state machine over one shard plan."""

    policy: RetryPolicy
    #: Per-key estimated cycle cost (drives deadline derivation).
    key_costs: dict[Key, int]
    #: Re-queues after an expiry or disconnect (for the report).
    retries: int = 0
    #: Shards abandoned after exhausting the retry budget.
    failed_shards: int = 0
    _shards: list[_Shard] = field(default_factory=list)
    _next_lease_id: int = 0

    def add_shard(self, index: int, keys: list[Key],
                  remaining: list[Key]) -> None:
        shard = _Shard(index=index, keys=tuple(keys),
                       remaining=list(remaining))
        if not shard.remaining:
            shard.status = DONE
        self._shards.append(shard)

    def restore(self, index: int, *, attempts: int, status: str) -> None:
        """Re-apply journaled retry state after a coordinator restart."""
        shard = self._shards[index]
        shard.attempts = attempts
        if status == FAILED:
            shard.status = FAILED
        elif shard.status == PENDING and attempts:
            # Interrupted attempts embargo the shard exactly as a live
            # expiry would, so a crash-looping worker cannot burn the
            # retry budget instantly after every coordinator restart.
            self._embargo(shard, now=0.0)

    # -- queries ---------------------------------------------------------------

    def shards(self) -> list[_Shard]:
        return list(self._shards)

    def done(self) -> bool:
        """True when no shard can ever produce more work."""
        return all(s.status in (DONE, FAILED) for s in self._shards)

    def failed_keys(self) -> list[Key]:
        """Keys permanently lost, in plan order."""
        out: list[Key] = []
        for shard in self._shards:
            if shard.status == FAILED:
                out.extend(shard.remaining)
        return out

    def _remaining_cost(self, shard: _Shard) -> int:
        return sum(self.key_costs.get(key, 1) for key in shard.remaining)

    # -- transitions -----------------------------------------------------------

    def acquire(self, worker: str, now: float) \
            -> ShardLease | float | None:
        """Grant the next assignable shard to ``worker``.

        Returns a :class:`ShardLease`, or the number of seconds the
        worker should wait before asking again (work exists but is
        leased out or embargoed), or ``None`` when the campaign has no
        more work at all.
        """
        wait: float | None = None
        for shard in self._shards:
            if shard.status == LEASED:
                wait = min(wait or self.policy.heartbeat,
                           self.policy.heartbeat)
            elif shard.status == PENDING:
                if shard.available_at > now:
                    delay = shard.available_at - now
                    wait = min(wait, delay) if wait is not None else delay
                else:
                    return self._grant(shard, worker, now)
        if wait is None:
            return None
        return max(0.05, wait)

    def _grant(self, shard: _Shard, worker: str,
               now: float) -> ShardLease:
        self._next_lease_id += 1
        lease = ShardLease(
            lease_id=self._next_lease_id, shard=shard.index,
            worker=worker, keys=tuple(shard.remaining), granted_at=now,
            deadline=now + self.policy.deadline_for(
                self._remaining_cost(shard)))
        shard.status = LEASED
        shard.lease = lease
        return lease

    def progress(self, shard_index: int, key: Key, now: float) -> bool:
        """Account one submitted class; False for a duplicate.

        Accepts the key whether or not the submitting lease is still
        current; refreshes the active lease's deadline against the
        shrunken remaining cost (progress is the liveness signal).
        """
        shard = self._shards[shard_index]
        try:
            shard.remaining.remove(key)
        except ValueError:
            return False
        if not shard.remaining and shard.status in (PENDING, LEASED):
            shard.status = DONE
            shard.lease = None
        elif shard.lease is not None:
            shard.lease.deadline = now + self.policy.deadline_for(
                self._remaining_cost(shard))
        return True

    def finish(self, shard_index: int, lease_id: int, now: float) -> None:
        """A worker claims its lease is exhausted.

        Normally every key was already accounted and the shard is done;
        a ``lease_done`` with keys still remaining means results were
        lost in flight — treat it as a failed attempt so the remainder
        is re-leased.
        """
        shard = self._shards[shard_index]
        lease = shard.lease
        if lease is None or lease.lease_id != lease_id:
            return  # stale claim from a revoked lease; nothing to do
        if shard.remaining:
            self._charge(shard, now)
        else:
            shard.status = DONE
            shard.lease = None

    def release_worker(self, worker: str, now: float) -> list[int]:
        """A worker disconnected; re-queue its active leases."""
        released = []
        for shard in self._shards:
            if shard.status == LEASED and shard.lease is not None \
                    and shard.lease.worker == worker:
                self._charge(shard, now)
                released.append(shard.index)
        return released

    def expire(self, now: float) -> list[int]:
        """Revoke every lease whose deadline passed."""
        expired = []
        for shard in self._shards:
            if shard.status == LEASED and shard.lease is not None \
                    and now >= shard.lease.deadline:
                self._charge(shard, now)
                expired.append(shard.index)
        return expired

    def _charge(self, shard: _Shard, now: float) -> None:
        shard.lease = None
        shard.attempts += 1
        if shard.attempts > self.policy.max_retries:
            shard.status = FAILED
            self.failed_shards += 1
        else:
            shard.status = PENDING
            self.retries += 1
            self._embargo(shard, now=now)

    def _embargo(self, shard: _Shard, *, now: float) -> None:
        shard.available_at = now + self.policy.backoff * (
            self.policy.backoff_factor ** max(0, shard.attempts - 1))
