"""Distributed campaign fabric: lease-based multi-host fault injection.

A coordinator process owns the SQLite experiment journal and hands out
*work leases* — shards of the same cost-balanced class plan the
in-process pool computes — to worker processes over TCP.  Workers
re-verify the golden run before executing (a stale checkout can never
pollute results), stream per-class results back, and heartbeat; the
coordinator reassigns expired leases with exponential backoff and a
retry budget, merges duplicate submissions idempotently through the
journal keys, and degrades permanently lost shards into
:class:`~repro.campaign.journal.ExecutionReport` completeness
accounting.  The result is bit-for-bit identical to a serial run —
see :mod:`repro.campaign.dist.coordinator` for the argument.

Everything is stdlib (``socket``, ``asyncio``, ``json``); there is no
new dependency and no pickle on the wire.
"""

from .coordinator import DistCoordinator, run_distributed_scan
from .leases import LeaseBoard, ShardLease
from .protocol import (
    PROTOCOL_VERSION,
    FrameStream,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from .worker import DistWorker, WorkerRejected

__all__ = [
    "DistCoordinator",
    "DistWorker",
    "FrameStream",
    "LeaseBoard",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ShardLease",
    "WorkerRejected",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "run_distributed_scan",
    "write_frame",
]
