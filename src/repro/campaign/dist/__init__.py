"""Distributed campaign fabric: lease-based multi-host fault injection.

A coordinator process owns the SQLite experiment journal and hands out
*work leases* — shards of the same cost-balanced class plan the
in-process pool computes — to worker processes over TCP.  Workers
re-verify the golden run before executing (a stale checkout can never
pollute results), stream per-class results back, and heartbeat; the
coordinator reassigns expired leases with exponential backoff and a
retry budget, merges duplicate submissions idempotently through the
journal keys, and degrades permanently lost shards into
:class:`~repro.campaign.journal.ExecutionReport` completeness
accounting.  The result is bit-for-bit identical to a serial run —
see :mod:`repro.campaign.dist.coordinator` for the argument.

The fabric is additionally *self-hosting* for fault injection: a
seeded :class:`~repro.campaign.dist.chaos.ChaosPlan` injects frame
drops, duplications, corruptions, delays, kills and hangs through a
deterministic proxy; a
:class:`~repro.campaign.dist.supervision.WorkerSupervisor` quarantines
flapping or byzantine workers; and end-to-end CRCs plus cross-check
sampling guarantee the journal only ever holds verified bytes.

Everything is stdlib (``socket``, ``asyncio``, ``json``); there is no
new dependency and no pickle on the wire.
"""

from .chaos import (
    ChaosFrameStream,
    ChaosInterrupt,
    ChaosPlan,
    WorkerChaos,
    plan_from_env,
    plan_from_spec,
)
from .coordinator import DistCoordinator, run_distributed_scan
from .leases import LeaseBoard, ShardLease
from .protocol import (
    PROTOCOL_VERSION,
    FrameStream,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
    result_digest,
    write_frame,
)
from .supervision import SupervisionPolicy, WorkerState, WorkerSupervisor
from .worker import DistWorker, WorkerRejected

__all__ = [
    "ChaosFrameStream",
    "ChaosInterrupt",
    "ChaosPlan",
    "DistCoordinator",
    "DistWorker",
    "FrameStream",
    "LeaseBoard",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ShardLease",
    "SupervisionPolicy",
    "WorkerChaos",
    "WorkerRejected",
    "WorkerState",
    "WorkerSupervisor",
    "decode_frame",
    "encode_frame",
    "plan_from_env",
    "plan_from_spec",
    "read_frame",
    "result_digest",
    "run_distributed_scan",
    "write_frame",
]
