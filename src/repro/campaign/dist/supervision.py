"""Worker supervision: rolling failure scores, quarantine, probation.

The lease board already survives *losing* workers; this layer handles
workers that keep coming back and keep failing — crash-looping on a
poisoned environment, flapping networks, or (worst) returning wrong
bytes.  It is a pure state machine in the :class:`~.leases.LeaseBoard`
style: no I/O, no clock reads — every transition takes ``now`` as an
argument, which is what makes the Hypothesis invariant suite and the
seeded chaos tests deterministic.

Per worker the supervisor tracks an exponentially-decayed **failure
score** (half-life :attr:`SupervisionPolicy.failure_halflife`): each
failure adds its weight, each quiet second decays it.  Crossing
:attr:`SupervisionPolicy.failure_threshold` trips the circuit breaker:

``HEALTHY`` → ``QUARANTINED``
    No leases granted, no results accepted.  The duration escalates
    ``quarantine_seconds * quarantine_factor ** (offenses - 1)`` per
    repeat offense, capped at :attr:`max_quarantine_seconds`.
``QUARANTINED`` → ``PROBATION``
    Automatic once the quarantine expires (checked lazily by
    :meth:`WorkerSupervisor.allowed`): the worker may work again, but
    one failure during probation re-quarantines immediately — no
    threshold, no grace.
``PROBATION`` → ``HEALTHY``
    After :attr:`probation_successes` accepted results with no failure;
    the score resets.

A **permanent** quarantine (``quarantine(..., permanent=True)``) never
expires — that is the byzantine path: a worker caught returning wrong
bytes by cross-check verification must never rejoin this campaign.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

HEALTHY = "healthy"
QUARANTINED = "quarantined"
PROBATION = "probation"


@dataclass(frozen=True)
class SupervisionPolicy:
    """Tunable thresholds of the worker circuit breaker."""

    #: Decayed failure score that trips quarantine.
    failure_threshold: float = 4.0
    #: Seconds for the failure score to halve with no new failures.
    failure_halflife: float = 30.0
    #: Base quarantine duration, seconds.
    quarantine_seconds: float = 2.0
    #: Duration multiplier per repeat offense.
    quarantine_factor: float = 2.0
    #: Ceiling on any single (non-permanent) quarantine.
    max_quarantine_seconds: float = 120.0
    #: Accepted results needed to graduate probation back to healthy.
    probation_successes: int = 2
    #: Distinct workers a shard may kill before it is declared
    #: poisonous and bisected (see the coordinator's poison handling).
    poison_workers: int = 2
    #: How long a cross-check tiebreak shard refuses the two disputing
    #: workers before liveness wins over attribution quality.
    exclusion_seconds: float = 15.0
    #: Seconds a finished board waits for pending cross-checks before
    #: declaring them unverifiable (no second worker ever showed up).
    crosscheck_patience: float = 10.0

    def quarantine_for(self, offenses: int) -> float:
        """Quarantine duration for the ``offenses``-th trip."""
        return min(
            self.max_quarantine_seconds,
            self.quarantine_seconds
            * self.quarantine_factor ** max(0, offenses - 1))


@dataclass
class WorkerState:
    """One worker's supervision record."""

    name: str
    status: str = HEALTHY
    score: float = 0.0
    #: Timestamp of the last score update (decay anchor).
    scored_at: float = 0.0
    last_seen: float = 0.0
    #: Times this worker has been quarantined.
    offenses: int = 0
    #: End of the current quarantine; ``inf`` when permanent.
    quarantined_until: float = 0.0
    permanent: bool = False
    #: Successes still required to graduate probation.
    probation_left: int = 0
    #: Human-readable reason of the last quarantine.
    reason: str = ""

    def snapshot(self) -> dict:
        """JSON-serializable view for telemetry and ``repro fabric``."""
        return {
            "name": self.name, "status": self.status,
            "score": round(self.score, 3), "offenses": self.offenses,
            "permanent": self.permanent, "reason": self.reason,
            "quarantined_until":
                None if math.isinf(self.quarantined_until)
                else self.quarantined_until,
        }


@dataclass
class WorkerSupervisor:
    """Pure supervision state machine over a fleet of named workers."""

    policy: SupervisionPolicy = field(default_factory=SupervisionPolicy)
    _workers: dict[str, WorkerState] = field(default_factory=dict)
    #: Workers newly quarantined since the caller last drained this
    #: (the coordinator journals them as fabric events).
    quarantined_total: int = 0

    def _state(self, name: str) -> WorkerState:
        state = self._workers.get(name)
        if state is None:
            state = self._workers[name] = WorkerState(name=name)
        return state

    def _decay(self, state: WorkerState, now: float) -> None:
        dt = now - state.scored_at
        if dt > 0 and state.score:
            state.score *= 0.5 ** (dt / self.policy.failure_halflife)
        state.scored_at = max(state.scored_at, now)

    # -- inputs -----------------------------------------------------------------

    def seen(self, name: str, now: float) -> None:
        """A liveness signal (heartbeat or any frame) arrived."""
        self._state(name).last_seen = now

    def record_success(self, name: str, now: float) -> None:
        """An accepted (merged or verified) result from this worker."""
        state = self._state(name)
        state.last_seen = now
        self._decay(state, now)
        if state.status == PROBATION:
            state.probation_left -= 1
            if state.probation_left <= 0:
                state.status = HEALTHY
                state.score = 0.0

    def record_failure(self, name: str, now: float, *,
                       weight: float = 1.0, reason: str = "") -> bool:
        """Charge a failure; True when it newly tripped quarantine.

        Failures are disconnects mid-lease, expired leases, CRC
        rejections, malformed frames — anything that cost the campaign
        work or trust.  ``weight`` scales severity (an integrity
        rejection should count for more than a dropped connection).
        """
        state = self._state(name)
        state.last_seen = now
        self._decay(state, now)
        state.score += weight
        if state.status == QUARANTINED:
            return False
        if state.status == PROBATION \
                or state.score >= self.policy.failure_threshold:
            self._trip(state, now, reason=reason)
            return True
        return False

    def quarantine(self, name: str, now: float, *, reason: str = "",
                   permanent: bool = False) -> None:
        """Quarantine immediately, bypassing the score threshold."""
        state = self._state(name)
        self._decay(state, now)
        if state.status == QUARANTINED and state.permanent:
            return
        self._trip(state, now, reason=reason, permanent=permanent)

    def _trip(self, state: WorkerState, now: float, *, reason: str,
              permanent: bool = False) -> None:
        state.status = QUARANTINED
        state.offenses += 1
        state.permanent = permanent
        state.reason = reason
        state.quarantined_until = math.inf if permanent else \
            now + self.policy.quarantine_for(state.offenses)
        self.quarantined_total += 1

    # -- queries ----------------------------------------------------------------

    def allowed(self, name: str, now: float) -> bool:
        """May this worker receive leases / have results accepted?

        Lazily graduates an expired quarantine into probation — the
        supervisor has no timer of its own.
        """
        state = self._workers.get(name)
        if state is None or state.status != QUARANTINED:
            return True
        if state.permanent or now < state.quarantined_until:
            return False
        state.status = PROBATION
        state.probation_left = self.policy.probation_successes
        return True

    def retry_after(self, name: str, now: float) -> float:
        """Seconds a quarantined worker should wait before re-asking."""
        state = self._workers.get(name)
        if state is None or state.status != QUARANTINED:
            return 0.0
        if state.permanent:
            return 60.0
        return max(0.05, state.quarantined_until - now)

    def status(self, name: str) -> str:
        state = self._workers.get(name)
        return HEALTHY if state is None else state.status

    def state(self, name: str) -> WorkerState:
        return self._state(name)

    def quarantined(self) -> list[str]:
        """Currently quarantined worker names, sorted."""
        return sorted(name for name, state in self._workers.items()
                      if state.status == QUARANTINED)

    def snapshot(self) -> list[dict]:
        """Telemetry for every worker ever seen, sorted by name."""
        return [self._workers[name].snapshot()
                for name in sorted(self._workers)]


__all__ = [
    "HEALTHY",
    "PROBATION",
    "QUARANTINED",
    "SupervisionPolicy",
    "WorkerState",
    "WorkerSupervisor",
]
