"""Campaign coordinator: owns the journal, leases shards to workers.

One coordinator process runs the distributed campaign.  It records the
golden run, plans the same contiguous cost-balanced shards the
in-process pool would (:func:`~repro.campaign.parallel.plan_class_shards`
over the *full* live-class list, so shard indices are stable across
coordinator restarts), and serves a TCP endpoint where workers pull
:class:`~.leases.ShardLease` grants and stream per-class results back.

**Why the result is bit-for-bit identical to a serial run.**  Every
experiment is a deterministic function of the golden run and its fault
coordinate; workers prove they compute the same function by rebuilding
the program from shipped source and matching both the content
fingerprint and the golden cycle count before they may execute.  A class
result therefore has exactly one possible value no matter which worker
produces it, or how many times.  Delivery is at-least-once (lease
expiry, reconnects and retransmits can all duplicate submissions);
accounting is exactly-once because every submission funnels through
:meth:`~repro.campaign.journal.CampaignJournal.merge_class`, which
accepts only the first copy.  Assembly then walks the live classes in
canonical (serial) iteration order, reading the journal — the same
merge the resume path performs — so ``class_outcomes``, record lists
and every derived count are independent of worker count, scheduling,
chaos and restarts.

**Failure handling** is delegated to the :class:`~.leases.LeaseBoard`:
expired or orphaned leases are re-queued with exponential backoff and a
retry budget; shards that exhaust it degrade into
``ExecutionReport.missing`` instead of hanging the campaign.  The
coordinator itself is restartable: results and lease retry state are
journaled as they arrive, so a new coordinator pointed at the same
journal resumes with only in-flight work lost.

**Supervision and integrity** sit on top of the lease board:

* A :class:`~.supervision.WorkerSupervisor` scores every lease expiry,
  disconnect and integrity rejection; workers that keep failing are
  quarantined (no leases, no accepted results) and re-admitted through
  probation.  Quarantines are journaled as fabric events.
* Every ``result`` frame's CRC is re-derived from the decoded payload
  and its rows are validated against the domain's expected experiment
  count *before* any accounting — a corrupted frame costs the sender
  failure score but never touches the journal.
* ``crosscheck`` samples a deterministic fraction of class keys for
  re-execution on a *second* worker (verify leases: negative lease id,
  ``shard == -1``).  A digest mismatch discards the journaled row and
  re-queues the key as a tiebreak shard excluded from both disputants;
  the third, independent result outvotes the liar, which is quarantined
  permanently and has every unverified delivery discarded and re-queued.
* A shard whose execution keeps *killing* distinct workers is bisected
  (:meth:`~.leases.LeaseBoard.split_shard`) until the poisonous key is
  isolated and reported instead of burning the whole shard's budget.

The section-store write of freshly executed classes is deferred to
assembly time, after all discards have settled, so a byzantine row can
never poison the cross-campaign section store.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import random
import socket
import subprocess
import sys
import threading
import time
from collections import Counter
from typing import Callable

from ...faultspace.domain import FaultDomain, MEMORY, get_domain
from ..compose import build_composer, compose_into_completed
from ..database import program_fingerprint
from ..experiment import ExecutorConfig, ExperimentRecord
from ..golden import GoldenRun
from ..journal import (
    CampaignJournal,
    ExecutionReport,
    ExperimentJournal,
    invalid_classes,
    open_campaign,
)
from ..outcomes import Outcome
from ..parallel import (RetryPolicy, class_cost, plan_class_shards,
                        tune_shard_count)
from .chaos import PLAN_ENV, ChaosPlan, plan_from_spec
from .leases import FAILED, LEASED, LeaseBoard
from .protocol import (PROTOCOL_VERSION, ProtocolError, read_frame,
                       result_digest, write_frame)
from .supervision import QUARANTINED, SupervisionPolicy, WorkerSupervisor

ProgressCallback = Callable[[int, int], None]

#: Default shard count: finer than one-per-worker so a lost node's work
#: re-distributes across the survivors instead of doubling one of them.
DEFAULT_SHARDS = 8

#: Valid outcome strings a result row may carry.
_OUTCOME_VALUES = frozenset(outcome.value for outcome in Outcome)

#: Keys per verify (cross-check) lease: small batches keep the second
#: worker's turnaround short so disputes surface quickly.
VERIFY_BATCH = 8


def _canonical_keys(keys) -> str:
    """Deterministic JSON identity of a shard's planned key list."""
    return json.dumps([list(key) for key in keys],
                      separators=(",", ":"))


class DistCoordinator:
    """Serve one full-scan campaign to TCP workers.

    ``shards`` fixes the lease granularity (finer shards rebalance
    better after node loss; coarser ones amortize more snapshot
    fast-forwarding).  ``expected_workers`` is an optional planning
    hint: when set and the campaign's estimated cycle cost is small
    (:data:`~repro.campaign.parallel.SMALL_CAMPAIGN_CYCLES`), the
    granularity collapses to one shard per worker so lease round-trips
    stop dominating tiny scans.  ``journal`` is where results and lease state
    persist — pass a real path to make the coordinator restartable;
    ``None`` journals to a private in-memory database, which still
    provides the idempotent-merge funnel but not crash tolerance.

    ``stop_after_results`` is a test hook: the coordinator abruptly
    drops every connection and returns ``None`` after accepting that
    many fresh class results, simulating a coordinator crash mid-flight
    (the journal keeps everything accepted so far).  A ``chaos`` plan
    whose :attr:`~.chaos.ChaosPlan.stop_coordinator_after` is set maps
    onto the same hook, so one seeded schedule drives both sides of the
    fabric.

    ``crosscheck`` is the fraction of class keys (deterministically
    selected per key) whose first delivery is re-executed on a second
    worker and byte-compared; ``supervision`` tunes the worker circuit
    breaker (:class:`~.supervision.SupervisionPolicy`).
    """

    def __init__(self, golden: GoldenRun, *,
                 domain: FaultDomain | str = MEMORY,
                 executor_config: ExecutorConfig | None = None,
                 policy: RetryPolicy | None = None,
                 shards: int = DEFAULT_SHARDS,
                 expected_workers: int | None = None,
                 journal=None, resume: bool = True,
                 keep_records: bool = False,
                 progress: ProgressCallback | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 sock: socket.socket | None = None,
                 stop_after_results: int | None = None,
                 supervision: SupervisionPolicy | None = None,
                 crosscheck: float = 0.0,
                 chaos: ChaosPlan | None = None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if not 0.0 <= crosscheck <= 1.0:
            raise ValueError(
                f"crosscheck must be in [0, 1], got {crosscheck}")
        self.golden = golden
        self.domain = get_domain(domain)
        config = executor_config or ExecutorConfig()
        self.config = dataclasses.replace(config, domain=self.domain.name)
        self.policy = policy or RetryPolicy()
        if config.lease_timeout is not None:
            self.policy = dataclasses.replace(
                self.policy, shard_timeout=config.lease_timeout)
        self.shards = shards
        self.expected_workers = expected_workers
        self.journal = journal
        self.resume = resume
        self.keep_records = keep_records
        self.progress = progress
        self.host = host
        self.port = port
        self._sock = sock
        self.chaos = chaos
        if stop_after_results is None and chaos is not None:
            stop_after_results = chaos.stop_coordinator_after
        self.stop_after_results = stop_after_results
        self.supervisor = WorkerSupervisor(
            policy=supervision or SupervisionPolicy())
        self.crosscheck = crosscheck
        #: ``(host, port)`` actually bound, set once serving.
        self.address: tuple[str, int] | None = None
        self.stopped = False
        self.report = ExecutionReport()
        self._worker_units: Counter = Counter()
        self._accepted = 0
        self._writers: dict[str, asyncio.StreamWriter] = {}
        self._conn_tasks: set = set()
        self._last_seen: dict[str, float] = {}
        self._lease_cache: dict[int, tuple] = {}
        # Cross-check state: keys awaiting a second, independent
        # execution; verify leases in flight; open disputes.
        self._check_pending: dict[tuple, tuple[str, int]] = {}
        self._check_inflight: dict[int, tuple[str, tuple]] = {}
        self._inflight_keys: set = set()
        self._tiebreaks: dict[tuple, dict] = {}
        #: Per worker: merged-but-not-yet-verified keys (what a
        #: byzantine conviction discards).
        self._delivered: dict[str, set] = {}
        self._expected_rows: dict[tuple, int] = {}
        self._next_verify_id = 0
        self._drain_deadline: float | None = None

    # -- identity shipped to workers -------------------------------------------

    def _journal_params(self) -> dict:
        """Same campaign key as the serial and pool engines, so one
        journal resumes under any of the three."""
        return {
            "timeout_cycles": self.config.timeout_cycles(self.golden.cycles),
            "early_stop": self.config.early_stop,
        }

    def _campaign_message(self) -> dict:
        program = self.golden.program
        return {
            "type": "campaign",
            "version": PROTOCOL_VERSION,
            "program": {
                "name": program.name,
                "source": program.source,
                "ram_size": program.ram_size,
            },
            "fingerprint": program_fingerprint(program),
            "cycles": self.golden.cycles,
            "config": dataclasses.asdict(self.config),
        }

    # -- lifecycle --------------------------------------------------------------

    def run(self):
        """Serve until the campaign finishes; return its result.

        Returns the same :class:`~repro.campaign.runner.CampaignResult`
        a serial run would, or ``None`` when the ``stop_after_results``
        crash hook fired.
        """
        return asyncio.run(self._main())

    async def _main(self):
        golden = self.golden
        domain = self.domain
        partition = domain.build_partition(golden)
        # The journal connection must be created in the serving thread
        # (sqlite3 objects are thread-affine) — hence here, not __init__.
        owned = None
        journal = self.journal
        if journal is None:
            journal = owned = ExperimentJournal(":memory:")
        handle = open_campaign(journal, golden, domain, "full-scan",
                               self._journal_params())
        try:
            if not self.resume:
                handle.clear()
            return await self._serve(handle, partition)
        finally:
            # Close whichever journal this coordinator opened itself —
            # the in-memory fallback or a path-opened file (closing
            # checkpoints the WAL into the main file, so the journal on
            # disk is whole, copyable and salvage-friendly afterwards).
            handle.close()
            if owned is not None:
                owned.close()

    async def _serve(self, handle: CampaignJournal, partition):
        golden, domain = self.golden, self.domain
        completed = handle.completed_classes()
        live = partition.live_classes()  # sorted by injection slot
        self.report = ExecutionReport(total_units=len(live))
        self._by_key = {domain.class_key(interval): interval
                        for interval in live}
        # Never trust resumed classes blindly: a salvaged journal can
        # hold partial classes (page loss truncates committed rows), so
        # validate every resumed class against the domain's expected
        # experiment count and re-execute the bad ones.
        pruned = invalid_classes(
            completed,
            {key: self._expected_count(key) for key in completed
             if key in self._by_key})
        pruned.extend(key for key in completed if key not in self._by_key)
        if pruned:
            handle.discard_classes(pruned)
            for key in pruned:
                completed.pop(key, None)
            self.report.discarded_results += len(pruned)
            handle.record_event(
                "salvage-prune", at=time.time(),
                detail=f"{len(pruned)} resumed classes failed "
                       f"validation and were discarded")
        # Compose store-known classes before planning leases: composed
        # classes join ``completed`` and are never leased to any worker.
        self._composer = build_composer(handle, golden, domain,
                                        self._journal_params())
        compose_into_completed(self._composer, live, completed, handle,
                               self.report)
        key_costs = {domain.class_key(interval):
                     class_cost(interval, golden.cycles, bits=domain.bits)
                     for interval in live}
        # Plan over the FULL live list: indices and key lists are then a
        # pure function of the campaign, stable across restarts, and the
        # journaled per-shard retry state stays meaningful.  Small
        # campaigns collapse the lease granularity to one shard per
        # expected worker first (also a pure function of the arguments,
        # so restarts with the same worker count re-derive it).
        parts = tune_shard_count(sum(key_costs.values()), self.shards,
                                 self.expected_workers)
        planned, _ = plan_class_shards(live, golden.cycles,
                                       bits=domain.bits, parts=parts)
        board = LeaseBoard(policy=self.policy, key_costs=key_costs)
        journaled_leases = handle.lease_states()
        for index, shard in enumerate(planned):
            keys = [domain.class_key(interval) for interval in shard]
            board.add_shard(index, keys,
                            [key for key in keys if key not in completed])
            stored = journaled_leases.get(index)
            if stored is not None and stored["keys"] == _canonical_keys(keys):
                # Same plan as the journaled run: carry the retry budget
                # across the restart.  A different --shards (different
                # key list) invalidates the stored state instead.
                board.restore(index, attempts=stored["attempts"],
                              status=stored["status"])
        self.board = board
        self.handle = handle
        #: Classes trusted before any worker connected (resumed or
        #: composed) — assembly must not re-store these.
        self._initial_completed = frozenset(completed)
        self.report.resumed = len(completed)
        self._done_total = len(live)
        self._done_count = self.report.resumed
        self._done = asyncio.Event()
        self._journal_leases()
        self._maybe_finish()

        if self._sock is not None:
            server = await asyncio.start_server(self._handle_worker,
                                                sock=self._sock)
        else:
            server = await asyncio.start_server(self._handle_worker,
                                                host=self.host,
                                                port=self.port)
        self.address = server.sockets[0].getsockname()[:2]
        watchdog = asyncio.create_task(self._watchdog())
        try:
            await self._done.wait()
        finally:
            watchdog.cancel()
            if not self.stopped:
                # Orderly end: tell every connected worker before the
                # transports close, so they exit instead of reconnecting.
                for writer in list(self._writers.values()):
                    try:
                        write_frame(writer, {"type": "done"})
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
            server.close()
            await server.wait_closed()
            # Give sessions a moment to finish their own done/drain
            # handshakes first — closing a transport under a worker
            # that has not read its done frame yet risks a reset that
            # discards it.  Then close whatever is left.
            if self._conn_tasks:
                await asyncio.wait(self._conn_tasks, timeout=2.0)
            for writer in list(self._writers.values()):
                writer.close()
            # Let tasks stuck on now-closed transports return before the
            # loop shuts down (else asyncio logs their cancellation).
            if self._conn_tasks:
                await asyncio.wait(self._conn_tasks, timeout=2.0)
        if self.stopped:
            return None
        return self._assemble(partition, live)

    async def _watchdog(self):
        while True:
            await asyncio.sleep(self.policy.poll_interval)
            now = time.monotonic()
            # Capture holders before expiry clears the leases — the
            # supervisor charges the worker, not the shard.
            overdue = [shard.lease.worker for shard in self.board.shards()
                       if shard.status == LEASED
                       and shard.lease is not None
                       and now >= shard.lease.deadline]
            if self.board.expire(now):
                for worker in overdue:
                    self._charge_failure(worker, now,
                                         reason="lease expired")
                self._check_poison(now)
                self._journal_leases()
            self._drain_crosschecks(now)
            self._maybe_finish()

    # -- per-connection protocol ------------------------------------------------

    async def _handle_worker(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter):
        name = None
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            conn = writer.get_extra_info("socket")
            if conn is not None:
                # Lease grants and done frames are tiny; don't let
                # Nagle batch them behind the workers' backs.
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = await read_frame(reader)
            if hello is None or hello.get("type") != "hello":
                return
            if hello.get("version") != PROTOCOL_VERSION:
                write_frame(writer, {
                    "type": "reject",
                    "reason": f"protocol version {hello.get('version')} != "
                              f"{PROTOCOL_VERSION}"})
                await writer.drain()
                return
            name = str(hello.get("name") or "worker")
            if name in self._writers:
                # Two live connections must not share an identity: lease
                # accounting is per worker name.
                name = f"{name}#{id(writer) & 0xffff:04x}"
            self._writers[name] = writer
            self._last_seen[name] = time.monotonic()
            write_frame(writer, self._campaign_message())
            await writer.drain()
            ready = await read_frame(reader)
            if ready is None or ready.get("type") != "ready":
                # "error" carries the worker's verification diagnostic
                # (stale checkout); nothing to grant either way.
                return
            await self._session(name, reader, writer)
        except (ProtocolError, ConnectionError, OSError):
            pass
        finally:
            if name is not None:
                self._writers.pop(name, None)
                # On the simulated-crash path connections die *without*
                # lease bookkeeping, exactly as a killed process would.
                if not self.stopped:
                    now = time.monotonic()
                    if self.board.release_worker(name, now):
                        self._charge_failure(
                            name, now, reason="disconnected mid-lease")
                        self._check_poison(now)
                        self._journal_leases()
                    self._release_verifies(name)
                    self._maybe_finish()
            writer.close()

    async def _session(self, name: str, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter):
        while not self._done.is_set():
            frame = await read_frame(reader)
            if frame is None:
                return
            kind = frame.get("type")
            now = time.monotonic()
            self._last_seen[name] = now
            self.supervisor.seen(name, now)
            if kind == "request":
                write_frame(writer, self._grant(name, now))
                await writer.drain()
            elif kind == "result":
                self._accept_result(name, frame, now)
            elif kind == "lease_done":
                shard = int(frame["shard"])
                if shard < 0:
                    # A verify lease ran to completion; any key not
                    # answered (dropped frame) becomes grantable again.
                    self._release_verify_lease(int(frame["lease"]))
                else:
                    self.board.finish(shard, int(frame["lease"]), now)
                    self._journal_leases()
                self._maybe_finish()
            elif kind == "heartbeat":
                pass  # liveness only — progress, not heartbeats,
                #       extends lease deadlines
            else:
                raise ProtocolError(f"unexpected {kind!r} from {name!r}")
        # This session saw the campaign finish (often because its own
        # result finished it).  Tell the worker before the connection
        # closes — the serve loop's broadcast cannot reach it once this
        # handler's cleanup has unregistered the writer.
        if not self.stopped:
            write_frame(writer, {"type": "done"})
            await writer.drain()
            # Then read until the worker hangs up.  Closing while its
            # pipelined frames (the next request, a heartbeat) sit
            # unread would reset the connection, and a reset can
            # destroy the done frame before the worker reads it —
            # leaving it reconnecting against a dead port forever.
            try:
                async def _drain():
                    while await read_frame(reader) is not None:
                        pass
                await asyncio.wait_for(_drain(), timeout=2.0)
            except (TimeoutError, asyncio.TimeoutError, ProtocolError,
                    ConnectionError, OSError):
                pass

    # -- work granting ----------------------------------------------------------

    def _grant(self, name: str, now: float) -> dict:
        """The frame answering one worker's ``request``."""
        before = self.supervisor.status(name)
        if not self.supervisor.allowed(name, now):
            return {"type": "wait",
                    "seconds": self.supervisor.retry_after(name, now)}
        if before == QUARANTINED:
            # allowed() just graduated an expired quarantine.
            self.handle.record_event("probation", worker=name,
                                     at=time.time())
        grant = self.board.acquire(name, now)
        if grant is None:
            verify = self._grant_verify(name, now)
            if verify is not None:
                return verify
            if self._check_pending:
                # Regular work is exhausted but cross-checks are
                # unresolved; hold the fleet until they settle (or the
                # watchdog's patience expires).
                return {"type": "wait",
                        "seconds": max(0.05, self.policy.heartbeat / 2)}
            return {"type": "done"}
        if isinstance(grant, float):
            return {"type": "wait", "seconds": grant}
        self._journal_leases()
        return {"type": "lease", "lease": grant.lease_id,
                "shard": grant.shard,
                "keys": [list(key) for key in grant.keys]}

    def _grant_verify(self, name: str, now: float) -> dict | None:
        """A verify lease re-executing other workers' sampled keys."""
        keys = sorted(
            key for key, (worker, _crc) in self._check_pending.items()
            if worker != name and key not in self._inflight_keys)
        if not keys:
            return None
        keys = keys[:VERIFY_BATCH]
        self._next_verify_id -= 1
        lease_id = self._next_verify_id
        self._check_inflight[lease_id] = (name, tuple(keys))
        self._inflight_keys.update(keys)
        return {"type": "lease", "lease": lease_id, "shard": -1,
                "verify": True, "keys": [list(key) for key in keys]}

    def _release_verify_lease(self, lease_id: int) -> None:
        entry = self._check_inflight.pop(lease_id, None)
        if entry is not None:
            self._inflight_keys.difference_update(entry[1])

    def _release_verifies(self, name: str) -> None:
        """A worker left; its in-flight verify keys become grantable."""
        for lease_id, (worker, _keys) in list(self._check_inflight.items()):
            if worker == name:
                self._release_verify_lease(lease_id)

    # -- result acceptance ------------------------------------------------------

    def _accept_result(self, name: str, frame: dict, now: float) -> None:
        if not self.supervisor.allowed(name, now):
            # Rejected outright: a late frame from a quarantined (worst
            # case: convicted-byzantine) worker must never win
            # first-merge on a key the campaign just discarded.
            return
        try:
            axis, first_slot = (int(v) for v in frame["key"])
            rows = [(int(bit), str(outcome), int(end_cycle), str(trap))
                    for bit, outcome, end_cycle, trap in frame["rows"]]
            shard = int(frame["shard"])
        except (KeyError, TypeError, ValueError):
            self._reject(name, None, now, kind="shape-reject",
                         reason="malformed result frame")
            return
        key = (axis, first_slot)
        digest = result_digest(key, rows)
        crc = frame.get("crc")
        if crc is None or int(crc) != digest:
            self._reject(name, key, now, kind="crc-reject",
                         reason="frame CRC disagrees with payload")
            return
        if not self._valid_shape(key, rows):
            self._reject(name, key, now, kind="shape-reject",
                         reason="rows disagree with the domain's "
                                "expected experiment count")
            return
        if shard < 0:
            self._accept_verify(name, key, digest, now)
            self._maybe_finish()
            return
        dispute = self._tiebreaks.get(key)
        if dispute is not None:
            suspects = {worker for worker, _crc in dispute["votes"]}
            if name in suspects and shard != dispute["shard"]:
                return  # stale retransmit from a disputing worker
            self._resolve_tiebreak(name, key, digest, now, dispute)
        self.board.progress(shard, key, now, worker=name)
        if self.handle.merge_class(axis, first_slot, rows):
            # First delivery: count it, and credit the worker.  Late or
            # duplicate copies (expired lease, retransmit) fall through —
            # the journal already holds the identical rows.  The section
            # store is fed at assembly time, after discards settle.
            self.supervisor.record_success(name, now)
            self._delivered.setdefault(name, set()).add(key)
            if dispute is None and self._crosscheck_selected(key):
                self._check_pending[key] = (name, digest)
                self._drain_deadline = None
                self.report.crosschecked += 1
            self.report.executed += 1
            self.report.convergence_hits += int(frame.get("hits", 0))
            self.report.slice_hits += int(frame.get("skips", 0))
            self.report.scalar_tail_experiments += int(
                frame.get("tails", 0))
            self._worker_units[name] += 1
            self._done_count += 1
            self._accepted += 1
            if self.progress is not None:
                self.progress(self._done_count, self._done_total)
            if (self.stop_after_results is not None
                    and self._accepted >= self.stop_after_results):
                self.stopped = True
                self._done.set()
                return
        self._maybe_finish()

    def _accept_verify(self, name: str, key: tuple, digest: int,
                       now: float) -> None:
        """Compare a cross-check re-execution against the first copy."""
        entry = self._check_pending.get(key)
        if entry is None:
            return  # duplicate or post-patience verify delivery
        worker, crc = entry
        if worker == name:
            return  # a worker must never confirm itself
        del self._check_pending[key]
        self._inflight_keys.discard(key)
        if crc == digest:
            self.supervisor.record_success(name, now)
            # Verified: the original delivery survives any later
            # conviction of its worker.
            self._delivered.get(worker, set()).discard(key)
            return
        # Dispute: someone returned wrong bytes, but two samples cannot
        # say who.  Discard the journaled row and re-queue the key for
        # a third, independent execution that outvotes the liar.
        self.report.crosscheck_mismatches += 1
        self.handle.record_event(
            "crosscheck-mismatch", worker=worker, at=time.time(),
            detail=f"{list(key)}: {crc} vs {digest} (verifier {name})")
        if self.handle.discard_classes([key]):
            self.report.discarded_results += 1
            self._done_count -= 1
        self._delivered.get(worker, set()).discard(key)
        policy = self.supervisor.policy
        shard_index = self.board.requeue(
            [key], now=now, excluded=frozenset({worker, name}),
            exclusion_seconds=policy.exclusion_seconds)
        self._tiebreaks[key] = {"shard": shard_index,
                                "votes": [(worker, crc), (name, digest)]}
        self._journal_leases()

    def _resolve_tiebreak(self, name: str, key: tuple, digest: int,
                          now: float, dispute: dict) -> None:
        """A third execution arrived; outvote and convict the liar."""
        self._tiebreaks.pop(key, None)
        votes = dispute["votes"]
        suspects = {worker for worker, _crc in votes}
        if name in suspects:
            # The exclusion window lapsed and a disputant re-delivered:
            # liveness won, attribution lost.  Accept the result but
            # account the key as unverifiable.
            self.report.crosscheck_unverified += 1
            self.handle.record_event(
                "crosscheck-stale", worker=name, at=time.time(),
                detail=f"tiebreak for {list(key)} fell back to a "
                       f"disputant")
            return
        for worker, crc in votes:
            if crc != digest:
                self._convict(worker, now, key=key)

    def _convict(self, name: str, now: float, *, key: tuple) -> None:
        """Permanent quarantine plus rollback of every unverified
        delivery — the byzantine containment path."""
        self.supervisor.quarantine(name, now, permanent=True,
                                   reason="outvoted by cross-check")
        self.handle.record_event(
            "byzantine", worker=name, at=time.time(),
            detail=f"outvoted on {list(key)}; permanently quarantined")
        suspect_keys = sorted(self._delivered.pop(name, set()))
        if not suspect_keys:
            return
        self.handle.discard_classes(suspect_keys)
        self.report.discarded_results += len(suspect_keys)
        self._done_count -= len(suspect_keys)
        for skey in suspect_keys:
            self._check_pending.pop(skey, None)
            self._inflight_keys.discard(skey)
        self.board.requeue(
            suspect_keys, now=now, excluded=frozenset({name}),
            exclusion_seconds=self.supervisor.policy.exclusion_seconds)
        self.handle.record_event(
            "discard", worker=name, at=time.time(),
            detail=f"{len(suspect_keys)} unverified classes re-queued")
        self._journal_leases()

    # -- integrity and supervision helpers --------------------------------------

    def _reject(self, name: str, key, now: float, *, kind: str,
                reason: str) -> None:
        """Refuse one result frame before it touches any accounting."""
        self.report.integrity_rejected += 1
        detail = reason if key is None else f"{list(key)}: {reason}"
        self.handle.record_event(kind, worker=name, detail=detail,
                                 at=time.time())
        # An integrity violation outweighs a dropped connection.
        self._charge_failure(name, now, weight=2.0, reason=reason)

    def _charge_failure(self, name: str, now: float, *,
                        weight: float = 1.0, reason: str = "") -> None:
        if self.supervisor.record_failure(name, now, weight=weight,
                                          reason=reason):
            self.handle.record_event("quarantine", worker=name,
                                     detail=reason, at=time.time())

    def _check_poison(self, now: float) -> None:
        """Bisect shards that keep killing workers; isolate the key."""
        changed = False
        suspects = self.board.poison_suspects(
            self.supervisor.policy.poison_workers)
        for shard in suspects:
            if len(shard.remaining) > 1:
                children = self.board.split_shard(shard.index, now)
                if children:
                    self.report.poison_splits += 1
                    self.handle.record_event(
                        "poison-split", at=time.time(),
                        detail=f"shard {shard.index} "
                               f"({len(shard.failed_workers)} workers "
                               f"lost) bisected into {children}")
                    changed = True
            else:
                for key in self.board.mark_poison(shard.index):
                    self.handle.record_event(
                        "poison-key", at=time.time(),
                        detail=json.dumps(list(key)))
                changed = True
        if changed:
            self._journal_leases()

    def _drain_crosschecks(self, now: float) -> None:
        """Give pending cross-checks a grace period once work is done.

        A pending check whose only eligible verifier never shows up
        (single-worker fleet, everyone else dead) must not hang the
        campaign: after ``crosscheck_patience`` seconds with the board
        finished, unresolved checks degrade to ``crosscheck_unverified``.
        """
        if self._done.is_set() or not self.board.done():
            self._drain_deadline = None
            return
        if not self._check_pending and not self._inflight_keys:
            return
        if self._drain_deadline is None:
            self._drain_deadline = \
                now + self.supervisor.policy.crosscheck_patience
            return
        if now < self._drain_deadline:
            return
        for key in sorted(self._check_pending):
            self.report.crosscheck_unverified += 1
            self.handle.record_event(
                "crosscheck-stale", at=time.time(),
                worker=self._check_pending[key][0],
                detail=f"{list(key)}: no second worker re-executed it")
        self._check_pending.clear()
        self._check_inflight.clear()
        self._inflight_keys.clear()

    def _crosscheck_selected(self, key: tuple) -> bool:
        """Deterministic per-key sampling at the configured fraction."""
        if self.crosscheck <= 0.0:
            return False
        if self.crosscheck >= 1.0:
            return True
        rng = random.Random(f"crosscheck/{key[0]}/{key[1]}")
        return rng.random() < self.crosscheck

    def _expected_count(self, key: tuple) -> int:
        count = self._expected_rows.get(key)
        if count is None:
            interval = self._by_key.get(key)
            count = -1 if interval is None \
                else len(interval.experiments())
            self._expected_rows[key] = count
        return count

    def _valid_shape(self, key: tuple, rows: list) -> bool:
        """Rows must match the domain's expected experiment weights."""
        if len(rows) != self._expected_count(key):
            return False
        for index, row in enumerate(rows):
            if row[0] != index or row[1] not in _OUTCOME_VALUES:
                return False
        return True

    # -- bookkeeping ------------------------------------------------------------

    def _journal_leases(self) -> None:
        """Persist per-shard retry state (only rows that changed)."""
        for shard in self.board.shards():
            worker = shard.lease.worker if shard.lease is not None else ""
            state = (shard.attempts, shard.status, worker)
            if self._lease_cache.get(shard.index) == state:
                continue
            self._lease_cache[shard.index] = state
            self.handle.record_lease(
                shard.index, _canonical_keys(shard.keys),
                attempts=shard.attempts, status=shard.status, worker=worker)

    def _maybe_finish(self) -> None:
        if self._done.is_set() or not self.board.done():
            return
        if self._check_pending or self._inflight_keys:
            return  # the watchdog's patience timer resolves these
        self._done.set()

    def _assemble(self, partition, live):
        """Merge the journal into a serial-identical CampaignResult."""
        from ..runner import CampaignResult

        domain = self.domain
        merged = self.handle.completed_classes()
        class_outcomes = {}
        records: list[ExperimentRecord] = []
        missing = []
        for interval in live:
            key = domain.class_key(interval)
            if key not in merged:
                missing.append(key)
                continue
            rows = merged[key]
            class_outcomes[key] = tuple(outcome for _, outcome, _, _ in rows)
            if self._composer is not None \
                    and key not in self._initial_completed:
                # Deferred section-store write: only classes that
                # survived CRC checks, cross-check verification and
                # byzantine rollback reach the cross-campaign store.
                self._composer.store_class(interval, rows)
            if self.keep_records:
                coords = interval.experiments()
                records.extend(
                    ExperimentRecord(coordinate=coords[bit], outcome=outcome,
                                     end_cycle=end_cycle, trap=trap)
                    for bit, outcome, end_cycle, trap in rows)
        report = self.report
        report.missing = tuple(missing)
        report.shard_retries = self.board.retries
        report.failed_shards = self.board.failed_shards
        report.workers = tuple(sorted(self._worker_units.items()))
        report.poison_splits = self.board.splits
        report.poison_keys = tuple(self.board.poison_keys())
        report.quarantined_workers = tuple(
            state["name"] for state in self.supervisor.snapshot()
            if state["offenses"])
        if report.complete:
            self.handle.mark_complete()
        else:
            # Failed shards are final state worth keeping queryable.
            self._journal_leases()
        return CampaignResult(golden=self.golden, partition=partition,
                              class_outcomes=class_outcomes, records=records,
                              domain=domain, execution=report)


# -- one-shot convenience -------------------------------------------------------


def _free_server_socket(host: str) -> socket.socket:
    return socket.create_server((host, 0))


def run_distributed_scan(golden: GoldenRun, *, workers: int = 2,
                         domain: FaultDomain | str = MEMORY,
                         executor_config: ExecutorConfig | None = None,
                         policy: RetryPolicy | None = None,
                         shards: int = DEFAULT_SHARDS,
                         journal=None, resume: bool = True,
                         keep_records: bool = False,
                         progress: ProgressCallback | None = None,
                         host: str = "127.0.0.1",
                         worker_env: dict | None = None,
                         chaos=None, crosscheck: float = 0.0,
                         supervision: SupervisionPolicy | None = None):
    """Run a distributed full scan with locally spawned workers.

    Convenience wrapper for single-machine use (and the CLI's
    ``scan --dist N``): binds an ephemeral port, spawns ``workers``
    subprocesses running ``python -m repro worker``, and serves the
    coordinator in the calling thread.  Real multi-host campaigns start
    ``repro coordinator`` and ``repro worker`` by hand instead.

    ``chaos`` (a :class:`~.chaos.ChaosPlan`, plan dict or legacy
    counter dict) is serialized into every worker's environment, so the
    whole fleet runs one seeded schedule; its coordinator-side fields
    apply here.  ``crosscheck`` and ``supervision`` pass through to
    :class:`DistCoordinator`.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    plan = plan_from_spec(chaos)
    sock = _free_server_socket(host)
    port = sock.getsockname()[1]
    coordinator = DistCoordinator(
        golden, domain=domain, executor_config=executor_config,
        policy=policy, shards=shards, expected_workers=workers,
        journal=journal, resume=resume,
        keep_records=keep_records, progress=progress, sock=sock,
        chaos=plan, crosscheck=crosscheck, supervision=supervision)
    import repro

    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    if plan is not None and plan.active:
        env[PLAN_ENV] = plan.to_json()
    if worker_env:
        env.update(worker_env)
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"{host}:{port}", "--name", f"worker-{index}"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for index in range(workers)]
    try:
        return coordinator.run()
    finally:
        for proc in procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def serve_in_thread(coordinator: DistCoordinator) -> "CoordinatorThread":
    """Run a coordinator on a background thread (used by tests)."""
    thread = CoordinatorThread(coordinator)
    thread.start()
    return thread


class CoordinatorThread(threading.Thread):
    """Thread wrapper capturing the coordinator's result or exception."""

    def __init__(self, coordinator: DistCoordinator):
        super().__init__(daemon=True)
        self.coordinator = coordinator
        self.result = None
        self.error: BaseException | None = None

    def run(self) -> None:  # noqa: D102 - Thread API
        try:
            self.result = self.coordinator.run()
        except BaseException as exc:  # captured for the joining test
            self.error = exc

    def join_result(self, timeout: float | None = None):
        self.join(timeout)
        if self.is_alive():
            raise TimeoutError("coordinator thread did not finish")
        if self.error is not None:
            raise self.error
        return self.result


__all__ = [
    "DEFAULT_SHARDS",
    "CoordinatorThread",
    "DistCoordinator",
    "run_distributed_scan",
    "serve_in_thread",
    "FAILED",
]
