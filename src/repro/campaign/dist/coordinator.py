"""Campaign coordinator: owns the journal, leases shards to workers.

One coordinator process runs the distributed campaign.  It records the
golden run, plans the same contiguous cost-balanced shards the
in-process pool would (:func:`~repro.campaign.parallel.plan_class_shards`
over the *full* live-class list, so shard indices are stable across
coordinator restarts), and serves a TCP endpoint where workers pull
:class:`~.leases.ShardLease` grants and stream per-class results back.

**Why the result is bit-for-bit identical to a serial run.**  Every
experiment is a deterministic function of the golden run and its fault
coordinate; workers prove they compute the same function by rebuilding
the program from shipped source and matching both the content
fingerprint and the golden cycle count before they may execute.  A class
result therefore has exactly one possible value no matter which worker
produces it, or how many times.  Delivery is at-least-once (lease
expiry, reconnects and retransmits can all duplicate submissions);
accounting is exactly-once because every submission funnels through
:meth:`~repro.campaign.journal.CampaignJournal.merge_class`, which
accepts only the first copy.  Assembly then walks the live classes in
canonical (serial) iteration order, reading the journal — the same
merge the resume path performs — so ``class_outcomes``, record lists
and every derived count are independent of worker count, scheduling,
chaos and restarts.

**Failure handling** is delegated to the :class:`~.leases.LeaseBoard`:
expired or orphaned leases are re-queued with exponential backoff and a
retry budget; shards that exhaust it degrade into
``ExecutionReport.missing`` instead of hanging the campaign.  The
coordinator itself is restartable: results and lease retry state are
journaled as they arrive, so a new coordinator pointed at the same
journal resumes with only in-flight work lost.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import socket
import subprocess
import sys
import threading
import time
from collections import Counter
from typing import Callable

from ...faultspace.domain import FaultDomain, MEMORY, get_domain
from ..compose import build_composer, compose_into_completed
from ..database import program_fingerprint
from ..experiment import ExecutorConfig, ExperimentRecord
from ..golden import GoldenRun
from ..journal import (
    CampaignJournal,
    ExecutionReport,
    ExperimentJournal,
    open_campaign,
)
from ..parallel import (RetryPolicy, class_cost, plan_class_shards,
                        tune_shard_count)
from .leases import FAILED, LeaseBoard
from .protocol import PROTOCOL_VERSION, ProtocolError, read_frame, write_frame

ProgressCallback = Callable[[int, int], None]

#: Default shard count: finer than one-per-worker so a lost node's work
#: re-distributes across the survivors instead of doubling one of them.
DEFAULT_SHARDS = 8


def _canonical_keys(keys) -> str:
    """Deterministic JSON identity of a shard's planned key list."""
    return json.dumps([list(key) for key in keys],
                      separators=(",", ":"))


class DistCoordinator:
    """Serve one full-scan campaign to TCP workers.

    ``shards`` fixes the lease granularity (finer shards rebalance
    better after node loss; coarser ones amortize more snapshot
    fast-forwarding).  ``expected_workers`` is an optional planning
    hint: when set and the campaign's estimated cycle cost is small
    (:data:`~repro.campaign.parallel.SMALL_CAMPAIGN_CYCLES`), the
    granularity collapses to one shard per worker so lease round-trips
    stop dominating tiny scans.  ``journal`` is where results and lease state
    persist — pass a real path to make the coordinator restartable;
    ``None`` journals to a private in-memory database, which still
    provides the idempotent-merge funnel but not crash tolerance.

    ``stop_after_results`` is a test hook: the coordinator abruptly
    drops every connection and returns ``None`` after accepting that
    many fresh class results, simulating a coordinator crash mid-flight
    (the journal keeps everything accepted so far).
    """

    def __init__(self, golden: GoldenRun, *,
                 domain: FaultDomain | str = MEMORY,
                 executor_config: ExecutorConfig | None = None,
                 policy: RetryPolicy | None = None,
                 shards: int = DEFAULT_SHARDS,
                 expected_workers: int | None = None,
                 journal=None, resume: bool = True,
                 keep_records: bool = False,
                 progress: ProgressCallback | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 sock: socket.socket | None = None,
                 stop_after_results: int | None = None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.golden = golden
        self.domain = get_domain(domain)
        config = executor_config or ExecutorConfig()
        self.config = dataclasses.replace(config, domain=self.domain.name)
        self.policy = policy or RetryPolicy()
        self.shards = shards
        self.expected_workers = expected_workers
        self.journal = journal
        self.resume = resume
        self.keep_records = keep_records
        self.progress = progress
        self.host = host
        self.port = port
        self._sock = sock
        self.stop_after_results = stop_after_results
        #: ``(host, port)`` actually bound, set once serving.
        self.address: tuple[str, int] | None = None
        self.stopped = False
        self.report = ExecutionReport()
        self._worker_units: Counter = Counter()
        self._accepted = 0
        self._writers: dict[str, asyncio.StreamWriter] = {}
        self._conn_tasks: set = set()
        self._last_seen: dict[str, float] = {}
        self._lease_cache: dict[int, tuple] = {}

    # -- identity shipped to workers -------------------------------------------

    def _journal_params(self) -> dict:
        """Same campaign key as the serial and pool engines, so one
        journal resumes under any of the three."""
        return {
            "timeout_cycles": self.config.timeout_cycles(self.golden.cycles),
            "early_stop": self.config.early_stop,
        }

    def _campaign_message(self) -> dict:
        program = self.golden.program
        return {
            "type": "campaign",
            "version": PROTOCOL_VERSION,
            "program": {
                "name": program.name,
                "source": program.source,
                "ram_size": program.ram_size,
            },
            "fingerprint": program_fingerprint(program),
            "cycles": self.golden.cycles,
            "config": dataclasses.asdict(self.config),
        }

    # -- lifecycle --------------------------------------------------------------

    def run(self):
        """Serve until the campaign finishes; return its result.

        Returns the same :class:`~repro.campaign.runner.CampaignResult`
        a serial run would, or ``None`` when the ``stop_after_results``
        crash hook fired.
        """
        return asyncio.run(self._main())

    async def _main(self):
        golden = self.golden
        domain = self.domain
        partition = domain.build_partition(golden)
        # The journal connection must be created in the serving thread
        # (sqlite3 objects are thread-affine) — hence here, not __init__.
        owned = None
        journal = self.journal
        if journal is None:
            journal = owned = ExperimentJournal(":memory:")
        handle = open_campaign(journal, golden, domain, "full-scan",
                               self._journal_params())
        try:
            if not self.resume:
                handle.clear()
            return await self._serve(handle, partition)
        finally:
            if owned is not None:
                owned.close()

    async def _serve(self, handle: CampaignJournal, partition):
        golden, domain = self.golden, self.domain
        completed = handle.completed_classes()
        live = partition.live_classes()  # sorted by injection slot
        self.report = ExecutionReport(total_units=len(live))
        # Compose store-known classes before planning leases: composed
        # classes join ``completed`` and are never leased to any worker.
        self._composer = build_composer(handle, golden, domain,
                                        self._journal_params())
        compose_into_completed(self._composer, live, completed, handle,
                               self.report)
        self._by_key = {domain.class_key(interval): interval
                        for interval in live}
        key_costs = {domain.class_key(interval):
                     class_cost(interval, golden.cycles, bits=domain.bits)
                     for interval in live}
        # Plan over the FULL live list: indices and key lists are then a
        # pure function of the campaign, stable across restarts, and the
        # journaled per-shard retry state stays meaningful.  Small
        # campaigns collapse the lease granularity to one shard per
        # expected worker first (also a pure function of the arguments,
        # so restarts with the same worker count re-derive it).
        parts = tune_shard_count(sum(key_costs.values()), self.shards,
                                 self.expected_workers)
        planned, _ = plan_class_shards(live, golden.cycles,
                                       bits=domain.bits, parts=parts)
        board = LeaseBoard(policy=self.policy, key_costs=key_costs)
        journaled_leases = handle.lease_states()
        for index, shard in enumerate(planned):
            keys = [domain.class_key(interval) for interval in shard]
            board.add_shard(index, keys,
                            [key for key in keys if key not in completed])
            stored = journaled_leases.get(index)
            if stored is not None and stored["keys"] == _canonical_keys(keys):
                # Same plan as the journaled run: carry the retry budget
                # across the restart.  A different --shards (different
                # key list) invalidates the stored state instead.
                board.restore(index, attempts=stored["attempts"],
                              status=stored["status"])
        self.board = board
        self.handle = handle
        self.report.resumed = len(completed)
        self._done_total = len(live)
        self._done_count = self.report.resumed
        self._done = asyncio.Event()
        self._journal_leases()
        self._maybe_finish()

        if self._sock is not None:
            server = await asyncio.start_server(self._handle_worker,
                                                sock=self._sock)
        else:
            server = await asyncio.start_server(self._handle_worker,
                                                host=self.host,
                                                port=self.port)
        self.address = server.sockets[0].getsockname()[:2]
        watchdog = asyncio.create_task(self._watchdog())
        try:
            await self._done.wait()
        finally:
            watchdog.cancel()
            if not self.stopped:
                # Orderly end: tell every connected worker before the
                # transports close, so they exit instead of reconnecting.
                for writer in list(self._writers.values()):
                    try:
                        write_frame(writer, {"type": "done"})
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
            server.close()
            await server.wait_closed()
            # Give sessions a moment to finish their own done/drain
            # handshakes first — closing a transport under a worker
            # that has not read its done frame yet risks a reset that
            # discards it.  Then close whatever is left.
            if self._conn_tasks:
                await asyncio.wait(self._conn_tasks, timeout=2.0)
            for writer in list(self._writers.values()):
                writer.close()
            # Let tasks stuck on now-closed transports return before the
            # loop shuts down (else asyncio logs their cancellation).
            if self._conn_tasks:
                await asyncio.wait(self._conn_tasks, timeout=2.0)
        if self.stopped:
            return None
        return self._assemble(partition, live)

    async def _watchdog(self):
        while True:
            await asyncio.sleep(self.policy.poll_interval)
            if self.board.expire(time.monotonic()):
                self._journal_leases()
            self._maybe_finish()

    # -- per-connection protocol ------------------------------------------------

    async def _handle_worker(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter):
        name = None
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            conn = writer.get_extra_info("socket")
            if conn is not None:
                # Lease grants and done frames are tiny; don't let
                # Nagle batch them behind the workers' backs.
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = await read_frame(reader)
            if hello is None or hello.get("type") != "hello":
                return
            if hello.get("version") != PROTOCOL_VERSION:
                write_frame(writer, {
                    "type": "reject",
                    "reason": f"protocol version {hello.get('version')} != "
                              f"{PROTOCOL_VERSION}"})
                await writer.drain()
                return
            name = str(hello.get("name") or "worker")
            if name in self._writers:
                # Two live connections must not share an identity: lease
                # accounting is per worker name.
                name = f"{name}#{id(writer) & 0xffff:04x}"
            self._writers[name] = writer
            self._last_seen[name] = time.monotonic()
            write_frame(writer, self._campaign_message())
            await writer.drain()
            ready = await read_frame(reader)
            if ready is None or ready.get("type") != "ready":
                # "error" carries the worker's verification diagnostic
                # (stale checkout); nothing to grant either way.
                return
            await self._session(name, reader, writer)
        except (ProtocolError, ConnectionError, OSError):
            pass
        finally:
            if name is not None:
                self._writers.pop(name, None)
                # On the simulated-crash path connections die *without*
                # lease bookkeeping, exactly as a killed process would.
                if not self.stopped:
                    if self.board.release_worker(name, time.monotonic()):
                        self._journal_leases()
                    self._maybe_finish()
            writer.close()

    async def _session(self, name: str, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter):
        while not self._done.is_set():
            frame = await read_frame(reader)
            if frame is None:
                return
            kind = frame.get("type")
            now = time.monotonic()
            self._last_seen[name] = now
            if kind == "request":
                grant = self.board.acquire(name, now)
                if grant is None:
                    write_frame(writer, {"type": "done"})
                elif isinstance(grant, float):
                    write_frame(writer, {"type": "wait", "seconds": grant})
                else:
                    self._journal_leases()
                    write_frame(writer, {
                        "type": "lease", "lease": grant.lease_id,
                        "shard": grant.shard,
                        "keys": [list(key) for key in grant.keys]})
                await writer.drain()
            elif kind == "result":
                self._accept_result(name, frame, now)
            elif kind == "lease_done":
                self.board.finish(int(frame["shard"]), int(frame["lease"]),
                                  now)
                self._journal_leases()
                self._maybe_finish()
            elif kind == "heartbeat":
                pass  # liveness only — progress, not heartbeats,
                #       extends lease deadlines
            else:
                raise ProtocolError(f"unexpected {kind!r} from {name!r}")
        # This session saw the campaign finish (often because its own
        # result finished it).  Tell the worker before the connection
        # closes — the serve loop's broadcast cannot reach it once this
        # handler's cleanup has unregistered the writer.
        if not self.stopped:
            write_frame(writer, {"type": "done"})
            await writer.drain()
            # Then read until the worker hangs up.  Closing while its
            # pipelined frames (the next request, a heartbeat) sit
            # unread would reset the connection, and a reset can
            # destroy the done frame before the worker reads it —
            # leaving it reconnecting against a dead port forever.
            try:
                async def _drain():
                    while await read_frame(reader) is not None:
                        pass
                await asyncio.wait_for(_drain(), timeout=2.0)
            except (TimeoutError, asyncio.TimeoutError, ProtocolError,
                    ConnectionError, OSError):
                pass

    def _accept_result(self, name: str, frame: dict, now: float) -> None:
        axis, first_slot = (int(v) for v in frame["key"])
        rows = [(int(bit), str(outcome), int(end_cycle), str(trap))
                for bit, outcome, end_cycle, trap in frame["rows"]]
        shard = int(frame["shard"])
        self.board.progress(shard, (axis, first_slot), now)
        if self.handle.merge_class(axis, first_slot, rows):
            # First delivery: count it, and credit the worker.  Late or
            # duplicate copies (expired lease, retransmit) fall through —
            # the journal already holds the identical rows.  Workers only
            # deliver simulator-produced results (the dist fabric never
            # synthesizes timeouts), so every accepted class feeds the
            # cross-campaign section store.
            interval = self._by_key.get((axis, first_slot))
            if interval is not None:
                self._composer.store_class(interval, [
                    (bit, outcome, end_cycle, trap)
                    for bit, outcome, end_cycle, trap in rows])
            self.report.executed += 1
            self.report.convergence_hits += int(frame.get("hits", 0))
            self.report.slice_hits += int(frame.get("skips", 0))
            self.report.scalar_tail_experiments += int(
                frame.get("tails", 0))
            self._worker_units[name] += 1
            self._done_count += 1
            self._accepted += 1
            if self.progress is not None:
                self.progress(self._done_count, self._done_total)
            if (self.stop_after_results is not None
                    and self._accepted >= self.stop_after_results):
                self.stopped = True
                self._done.set()
                return
        self._maybe_finish()

    # -- bookkeeping ------------------------------------------------------------

    def _journal_leases(self) -> None:
        """Persist per-shard retry state (only rows that changed)."""
        for shard in self.board.shards():
            worker = shard.lease.worker if shard.lease is not None else ""
            state = (shard.attempts, shard.status, worker)
            if self._lease_cache.get(shard.index) == state:
                continue
            self._lease_cache[shard.index] = state
            self.handle.record_lease(
                shard.index, _canonical_keys(shard.keys),
                attempts=shard.attempts, status=shard.status, worker=worker)

    def _maybe_finish(self) -> None:
        if not self._done.is_set() and self.board.done():
            self._done.set()

    def _assemble(self, partition, live):
        """Merge the journal into a serial-identical CampaignResult."""
        from ..runner import CampaignResult

        domain = self.domain
        merged = self.handle.completed_classes()
        class_outcomes = {}
        records: list[ExperimentRecord] = []
        missing = []
        for interval in live:
            key = domain.class_key(interval)
            if key not in merged:
                missing.append(key)
                continue
            rows = merged[key]
            class_outcomes[key] = tuple(outcome for _, outcome, _, _ in rows)
            if self.keep_records:
                coords = interval.experiments()
                records.extend(
                    ExperimentRecord(coordinate=coords[bit], outcome=outcome,
                                     end_cycle=end_cycle, trap=trap)
                    for bit, outcome, end_cycle, trap in rows)
        report = self.report
        report.missing = tuple(missing)
        report.shard_retries = self.board.retries
        report.failed_shards = self.board.failed_shards
        report.workers = tuple(sorted(self._worker_units.items()))
        if report.complete:
            self.handle.mark_complete()
        else:
            # Failed shards are final state worth keeping queryable.
            self._journal_leases()
        return CampaignResult(golden=self.golden, partition=partition,
                              class_outcomes=class_outcomes, records=records,
                              domain=domain, execution=report)


# -- one-shot convenience -------------------------------------------------------


def _free_server_socket(host: str) -> socket.socket:
    return socket.create_server((host, 0))


def run_distributed_scan(golden: GoldenRun, *, workers: int = 2,
                         domain: FaultDomain | str = MEMORY,
                         executor_config: ExecutorConfig | None = None,
                         policy: RetryPolicy | None = None,
                         shards: int = DEFAULT_SHARDS,
                         journal=None, resume: bool = True,
                         keep_records: bool = False,
                         progress: ProgressCallback | None = None,
                         host: str = "127.0.0.1",
                         worker_env: dict | None = None):
    """Run a distributed full scan with locally spawned workers.

    Convenience wrapper for single-machine use (and the CLI's
    ``scan --dist N``): binds an ephemeral port, spawns ``workers``
    subprocesses running ``python -m repro worker``, and serves the
    coordinator in the calling thread.  Real multi-host campaigns start
    ``repro coordinator`` and ``repro worker`` by hand instead.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    sock = _free_server_socket(host)
    port = sock.getsockname()[1]
    coordinator = DistCoordinator(
        golden, domain=domain, executor_config=executor_config,
        policy=policy, shards=shards, expected_workers=workers,
        journal=journal, resume=resume,
        keep_records=keep_records, progress=progress, sock=sock)
    import repro

    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    if worker_env:
        env.update(worker_env)
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"{host}:{port}", "--name", f"worker-{index}"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for index in range(workers)]
    try:
        return coordinator.run()
    finally:
        for proc in procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def serve_in_thread(coordinator: DistCoordinator) -> "CoordinatorThread":
    """Run a coordinator on a background thread (used by tests)."""
    thread = CoordinatorThread(coordinator)
    thread.start()
    return thread


class CoordinatorThread(threading.Thread):
    """Thread wrapper capturing the coordinator's result or exception."""

    def __init__(self, coordinator: DistCoordinator):
        super().__init__(daemon=True)
        self.coordinator = coordinator
        self.result = None
        self.error: BaseException | None = None

    def run(self) -> None:  # noqa: D102 - Thread API
        try:
            self.result = self.coordinator.run()
        except BaseException as exc:  # captured for the joining test
            self.error = exc

    def join_result(self, timeout: float | None = None):
        self.join(timeout)
        if self.is_alive():
            raise TimeoutError("coordinator thread did not finish")
        if self.error is not None:
            raise self.error
        return self.result


__all__ = [
    "DEFAULT_SHARDS",
    "CoordinatorThread",
    "DistCoordinator",
    "run_distributed_scan",
    "serve_in_thread",
    "FAILED",
]
