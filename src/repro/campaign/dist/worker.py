"""Campaign worker: pulls leases, executes experiments, streams results.

A worker is a plain blocking-socket client.  On connect it introduces
itself, receives the campaign spec, and **re-derives everything
locally**: the program is re-assembled from the shipped source, its
content fingerprint and the re-recorded golden run's cycle count must
match the coordinator's, and the def/use partition is rebuilt from the
local golden run.  A worker running a stale checkout — an assembler
that emits different code, a CPU whose timing changed — fails one of
those checks and is refused work (:class:`WorkerRejected`), so it can
never pollute the campaign with results computed under a different
machine model.

While holding a lease the worker executes each class's experiments in
ascending slot order (preserving the executor's snapshot fast-forward)
and streams one ``result`` frame per class, so the coordinator journals
progress continuously and a worker lost mid-shard forfeits only the
class in flight.  A daemon heartbeat thread shares the socket under a
send lock.  Every connection failure is survivable: the worker
reconnects with jittered exponential backoff and simply asks for work
again — the coordinator's lease board and idempotent journal make the
retried deliveries harmless.

Every result frame carries a :func:`~.protocol.result_digest` CRC over
its key and rows, computed *before* the frame is handed to the
transport, so the coordinator can detect any corruption between this
worker's executor and its own journal.

Chaos injection is delegated to :mod:`repro.campaign.dist.chaos`: a
:class:`~.chaos.ChaosPlan` (the ``chaos=`` argument, the
``REPRO_CHAOS_PLAN`` env var, or the deprecated ``REPRO_DIST_CHAOS``
counter dict) wraps each session's stream in a
:class:`~.chaos.ChaosFrameStream` proxy.  Chaos state is cumulative
across reconnects — the schedule is a pure function of
``(seed, worker name, result index)``, unaffected by the failures it
injects.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time

from ...faultspace.domain import get_domain
from ...isa.assembler import assemble
from ..database import program_fingerprint
from ..experiment import ExecutorConfig
from ..golden import record_golden
from .chaos import WorkerChaos, plan_from_env, plan_from_spec
from .protocol import (PROTOCOL_VERSION, FrameStream, ProtocolError,
                       result_digest)


class WorkerRejected(RuntimeError):
    """The coordinator refused this worker (or verification failed).

    Permanent: reconnecting cannot help — the worker's checkout
    disagrees with the coordinator's campaign, or the protocol versions
    diverge — so the run loop raises instead of retrying.
    """


class DistWorker:
    """One worker process's client loop.

    ``max_reconnects`` bounds *consecutive* failed connection attempts
    (``None`` retries forever — the right default for a fleet waiting
    out a coordinator restart); any successful session resets the
    count.
    """

    def __init__(self, host: str, port: int, *, name: str | None = None,
                 reconnect_delay: float = 0.2,
                 max_reconnect_delay: float = 5.0,
                 max_reconnects: int | None = None,
                 connect_timeout: float = 5.0,
                 heartbeat_interval: float = 2.0,
                 chaos=None):
        self.host = host
        self.port = port
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.reconnect_delay = reconnect_delay
        self.max_reconnect_delay = max_reconnect_delay
        self.max_reconnects = max_reconnects
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        plan = plan_from_spec(chaos) if chaos is not None \
            else plan_from_env()
        self._chaos = WorkerChaos(plan, self.name) \
            if plan is not None and plan.active else None
        self._rng = random.Random(self.name)
        self._finished = False
        #: Classes executed locally (not counting duplicates).
        self.executed = 0
        #: Verified campaign state, cached by fingerprint so reconnects
        #: skip the golden re-run and partition rebuild.
        self._campaigns: dict[str, tuple] = {}
        self._send_lock = threading.Lock()

    # -- main loop --------------------------------------------------------------

    def run(self) -> int:
        """Serve until the coordinator says the campaign is done.

        Returns the number of classes this worker executed.  Raises
        :class:`WorkerRejected` on permanent refusal.
        """
        failures = 0
        while not self._finished:
            try:
                self._session()
                failures = 0
            except WorkerRejected:
                raise
            except (ConnectionError, ProtocolError, OSError):
                if self._finished:
                    break
                failures += 1
                if (self.max_reconnects is not None
                        and failures > self.max_reconnects):
                    raise
                self._backoff(failures)
        return self.executed

    def _backoff(self, failures: int) -> None:
        delay = min(self.max_reconnect_delay,
                    self.reconnect_delay * (2.0 ** (failures - 1)))
        # Full jitter: a fleet of workers orphaned by the same
        # coordinator crash must not reconnect in lockstep.
        time.sleep(delay * (0.5 + 0.5 * self._rng.random()))

    # -- one connection ---------------------------------------------------------

    def _session(self) -> None:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.connect_timeout)
        sock.settimeout(None)
        # Result frames are small and latency-bound; Nagle-delaying
        # them stalls the per-class submit loop for nothing.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = FrameStream(sock)
        if self._chaos is not None:
            stream = self._chaos.wrap(stream)
        stop_heartbeat = threading.Event()
        try:
            self._send(stream, {"type": "hello",
                                "version": PROTOCOL_VERSION,
                                "name": self.name})
            frame = stream.read(timeout=self.connect_timeout)
            if frame is None:
                raise ConnectionError("coordinator closed during handshake")
            if frame.get("type") == "reject":
                raise WorkerRejected(str(frame.get("reason", "rejected")))
            if frame.get("type") != "campaign":
                raise ProtocolError(
                    f"expected campaign spec, got {frame.get('type')!r}")
            executor, intervals, domain = self._verify(stream, frame)
            self._send(stream, {"type": "ready"})
            beat = threading.Thread(
                target=self._heartbeat, args=(stream, stop_heartbeat),
                daemon=True)
            beat.start()
            try:
                self._work(stream, executor, intervals, domain)
            except (ConnectionError, OSError):
                # The campaign can finish while our next request is
                # mid-send: the send fails, but the coordinator's done
                # frame may already sit in the receive buffer.  Check
                # it before treating this as a lost connection.
                if not self._poll_done(stream):
                    raise
        finally:
            stop_heartbeat.set()
            sock.close()

    def _send(self, stream: FrameStream, message: dict) -> None:
        with self._send_lock:
            stream.send(message)

    def _poll_done(self, stream: FrameStream) -> bool:
        """Drain already-received frames, looking for ``done``."""
        try:
            while True:
                frame = stream.poll()
                if frame is None:
                    return False
                if frame.get("type") == "done":
                    self._finished = True
                    return True
        except (ConnectionError, ProtocolError, OSError):
            return False

    def _heartbeat(self, stream: FrameStream,
                   stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                self._send(stream, {"type": "heartbeat"})
            except (ConnectionError, OSError):
                return  # main loop notices the dead socket itself

    # -- campaign verification --------------------------------------------------

    def _verify(self, stream: FrameStream, spec: dict):
        """Rebuild the campaign locally; refuse to run if it differs."""
        fingerprint = str(spec["fingerprint"])
        cached = self._campaigns.get(fingerprint)
        if cached is not None and cached[3] == spec["config"]:
            return cached[:3]
        try:
            program = assemble(spec["program"]["source"],
                               name=spec["program"]["name"],
                               ram_size=spec["program"]["ram_size"])
            local = program_fingerprint(program)
            if local != fingerprint:
                raise WorkerRejected(
                    f"program fingerprint mismatch: coordinator sent "
                    f"{fingerprint}, this checkout assembles {local} — "
                    f"worker is running different code; update it")
            golden = record_golden(program)
            if golden.cycles != spec["cycles"]:
                raise WorkerRejected(
                    f"golden run mismatch: coordinator recorded "
                    f"Δt={spec['cycles']} cycles, this checkout runs "
                    f"Δt={golden.cycles} — simulator semantics differ; "
                    f"update the worker")
        except WorkerRejected as exc:
            # Ship the diagnostic before giving up, so the operator sees
            # the stale worker from the coordinator's logs too.
            try:
                self._send(stream, {"type": "error", "reason": str(exc)})
            except (ConnectionError, OSError):
                pass
            raise
        config = ExecutorConfig(**spec["config"])
        if config.heartbeat_interval is not None:
            # The coordinator ships the fleet's heartbeat cadence with
            # the campaign, so one knob tunes every worker.
            self.heartbeat_interval = config.heartbeat_interval
        domain = get_domain(config.domain)
        executor = config.build(golden)
        partition = domain.build_partition(golden)
        intervals = {domain.class_key(interval): interval
                     for interval in partition.live_classes()}
        self._campaigns[fingerprint] = (executor, intervals, domain,
                                        spec["config"])
        return executor, intervals, domain

    # -- lease execution --------------------------------------------------------

    def _work(self, stream: FrameStream, executor, intervals,
              domain) -> None:
        while True:
            self._send(stream, {"type": "request"})
            frame = stream.read(timeout=None)
            if frame is None:
                raise ConnectionError("coordinator closed the connection")
            kind = frame.get("type")
            if kind == "done":
                self._finished = True
                return
            if kind == "wait":
                time.sleep(min(float(frame["seconds"]), 1.0))
                continue
            if kind != "lease":
                raise ProtocolError(f"expected lease, got {kind!r}")
            if self._run_lease(stream, frame, executor, intervals, domain):
                return  # saw "done" mid-lease

    def _run_lease(self, stream: FrameStream, lease: dict, executor,
                   intervals, domain) -> bool:
        lease_id = int(lease["lease"])
        shard = int(lease["shard"])
        for raw_key in lease["keys"]:
            key = tuple(int(v) for v in raw_key)
            interval = intervals.get(key)
            if interval is None:
                raise WorkerRejected(
                    f"lease names class {key} this worker's partition "
                    f"does not contain — def/use analysis differs; "
                    f"update the worker")
            # A coordinator that finished (another worker re-submitted
            # our expired lease) tells us mid-lease; check cheaply
            # between classes.
            with self._send_lock:
                polled = stream.poll()
            if polled is not None and polled.get("type") == "done":
                self._finished = True
                return True
            if self._chaos is not None:
                self._chaos.before_class(key)
            hits0 = executor.convergence_hits
            skips0 = executor.slice_hits
            tails0 = executor.scalar_tail_experiments
            records = executor.run_many(interval.experiments())
            self.executed += 1
            rows = [[bit, record.outcome.value, record.end_cycle,
                     record.trap]
                    for bit, record in enumerate(records)]
            message = {
                "type": "result", "lease": lease_id, "shard": shard,
                "key": list(key),
                "rows": rows,
                "crc": result_digest(key, rows),
                "hits": executor.convergence_hits - hits0,
                "skips": executor.slice_hits - skips0,
                "tails": executor.scalar_tail_experiments - tails0,
            }
            self._send(stream, message)
        self._send(stream, {"type": "lease_done", "lease": lease_id,
                            "shard": shard})
        return False
