"""Durable experiment journal: crash-tolerant, resumable campaigns.

The paper's methodology only pays off when the full def/use-pruned fault
space is swept for every program variant — campaigns of that size die to
``KeyboardInterrupt``s, OOM-killed workers and machine reboots, and an
in-memory accumulator throws away every completed experiment when they
do.  Production FI tools solve this with a durable result store (FAIL*'s
experiment database; "Towards a Fault-Injection Benchmarking Suite"
argues comparable campaigns need replayable stores rather than ad-hoc
accumulation).  This module is that store.

:class:`ExperimentJournal` wraps one SQLite database (stdlib
``sqlite3``; no external dependency) holding any number of *campaigns*,
each keyed by::

    (program fingerprint, fault domain, campaign kind, parameters)

so re-running the same campaign against the same binary resumes instead
of restarting, while any change to the program, the domain, the sampler
seed or the executor's timeout policy opens a fresh campaign.  Three
result granularities match the three campaign styles:

* ``class_results`` — one row per (class, bit) representative experiment
  of a full scan, including ``end_cycle`` and ``trap`` so resumed runs
  reconstruct :class:`~.experiment.ExperimentRecord` lists bit-for-bit;
  sampled campaigns reuse the same table for their distinct-experiment
  cache.
* ``coordinate_results`` — one row per raw coordinate of a brute-force
  scan, journaled atomically per injection slot.
* ``sampler_state`` — the sampler's post-draw RNG position, so a resume
  can *prove* the re-drawn sample sequence is the one the journal's
  experiments belong to (a changed seed or sample count raises
  :class:`JournalMismatchError` instead of silently mixing campaigns).

Writes are transactional at the unit the campaign treats as atomic (one
class, one slot, one shard): a crash between units loses at most the
unit in flight, and a resumed campaign re-runs exactly the units the
journal does not contain.  The contract — enforced by the differential
tests in ``tests/campaign/test_resume.py`` — is that a resumed campaign
produces a result *bit-for-bit identical* to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from .outcomes import Outcome

#: Current schema version.  Version 2 added the cross-campaign section
#: store (``sections``/``section_results``/``campaign_sections``) and
#: the ``summaries`` table; version 3 added the ``fabric_events`` log
#: (supervision / integrity incidents of the distributed fabric).  All
#: changes are purely additive, so older journals migrate in place on
#: open.  Journals written by a *newer* build than this one are
#: rejected instead of silently misread.
SCHEMA_VERSION = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id          INTEGER PRIMARY KEY,
    fingerprint TEXT NOT NULL,
    domain      TEXT NOT NULL,
    kind        TEXT NOT NULL,
    params      TEXT NOT NULL,
    cycles      INTEGER NOT NULL,
    status      TEXT NOT NULL DEFAULT 'running',
    UNIQUE (fingerprint, domain, kind, params)
);
CREATE TABLE IF NOT EXISTS class_results (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    axis        INTEGER NOT NULL,
    first_slot  INTEGER NOT NULL,
    bit         INTEGER NOT NULL,
    outcome     TEXT NOT NULL,
    end_cycle   INTEGER NOT NULL DEFAULT 0,
    trap        TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (campaign_id, axis, first_slot, bit)
);
CREATE TABLE IF NOT EXISTS coordinate_results (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    slot        INTEGER NOT NULL,
    axis        INTEGER NOT NULL,
    bit         INTEGER NOT NULL,
    outcome     TEXT NOT NULL,
    PRIMARY KEY (campaign_id, slot, axis, bit)
);
CREATE TABLE IF NOT EXISTS sampler_state (
    campaign_id INTEGER PRIMARY KEY REFERENCES campaigns(id),
    draws       INTEGER NOT NULL,
    rng_state   TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    shard       INTEGER NOT NULL,
    keys        TEXT NOT NULL,
    worker      TEXT NOT NULL DEFAULT '',
    attempts    INTEGER NOT NULL DEFAULT 0,
    status      TEXT NOT NULL DEFAULT 'pending',
    PRIMARY KEY (campaign_id, shard)
);
CREATE TABLE IF NOT EXISTS sections (
    id          INTEGER PRIMARY KEY,
    fingerprint TEXT NOT NULL UNIQUE,
    program     TEXT NOT NULL,
    domain      TEXT NOT NULL,
    first_slot  INTEGER NOT NULL,
    last_slot   INTEGER NOT NULL,
    detail      TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS section_results (
    section_id INTEGER NOT NULL REFERENCES sections(id),
    slot       INTEGER NOT NULL,
    axis       INTEGER NOT NULL,
    bit        INTEGER NOT NULL,
    outcome    TEXT NOT NULL,
    end_cycle  INTEGER NOT NULL DEFAULT 0,
    trap       TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (section_id, slot, axis, bit)
);
CREATE TABLE IF NOT EXISTS campaign_sections (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    section_id  INTEGER NOT NULL REFERENCES sections(id),
    PRIMARY KEY (campaign_id, section_id)
);
CREATE TABLE IF NOT EXISTS summaries (
    fingerprint TEXT NOT NULL,
    domain      TEXT NOT NULL,
    name        TEXT NOT NULL DEFAULT '',
    summary     TEXT NOT NULL,
    PRIMARY KEY (fingerprint, domain)
);
CREATE TABLE IF NOT EXISTS fabric_events (
    id          INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    at          REAL NOT NULL,
    worker      TEXT NOT NULL DEFAULT '',
    kind        TEXT NOT NULL,
    detail      TEXT NOT NULL DEFAULT ''
);
"""

#: ``(table, columns)`` pairs :func:`salvage_journal` tries to recover,
#: in dependency order.  Kept in sync with ``_SCHEMA`` by
#: ``tests/campaign/test_salvage.py``.
SALVAGE_TABLES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("meta", ("key", "value")),
    ("campaigns", ("id", "fingerprint", "domain", "kind", "params",
                   "cycles", "status")),
    ("class_results", ("campaign_id", "axis", "first_slot", "bit",
                       "outcome", "end_cycle", "trap")),
    ("coordinate_results", ("campaign_id", "slot", "axis", "bit",
                            "outcome")),
    ("sampler_state", ("campaign_id", "draws", "rng_state")),
    ("leases", ("campaign_id", "shard", "keys", "worker", "attempts",
                "status")),
    ("sections", ("id", "fingerprint", "program", "domain", "first_slot",
                  "last_slot", "detail")),
    ("section_results", ("section_id", "slot", "axis", "bit", "outcome",
                         "end_cycle", "trap")),
    ("campaign_sections", ("campaign_id", "section_id")),
    ("summaries", ("fingerprint", "domain", "name", "summary")),
    ("fabric_events", ("id", "campaign_id", "at", "worker", "kind",
                       "detail")),
)


class JournalError(RuntimeError):
    """The journal file is unusable (wrong schema version, corrupt)."""


class JournalCorruptError(JournalError):
    """The journal file is physically corrupt (failed ``quick_check``).

    Distinct from a version mismatch: corruption is what
    :func:`salvage_journal` can partially recover from, a too-new
    schema is not.
    """


class JournalMismatchError(JournalError):
    """A resume does not match the journaled campaign.

    Raised when the golden run's cycle count or the sampler's re-drawn
    RNG position disagrees with what the journal recorded — continuing
    would mix experiments from two different campaigns into one result.
    """


def canonical_params(params: Mapping) -> str:
    """Deterministic JSON encoding of campaign parameters (the key)."""
    return json.dumps(dict(params), sort_keys=True,
                      separators=(",", ":"))


@dataclass
class ExecutionReport:
    """How a campaign actually executed: completeness and robustness.

    Attached to campaign results (``result.execution``) so callers can
    tell an exact, complete sweep from a resumed or degraded one.  The
    field is excluded from result equality — a resumed campaign with the
    *same outcomes* as an uninterrupted one compares equal even though
    it took a different path to them.
    """

    #: Work units the campaign planned (live classes / distinct sampled
    #: experiments / injection slots, depending on the style).
    total_units: int = 0
    #: Units executed fresh in this invocation.
    executed: int = 0
    #: Units loaded from the journal instead of re-executed.
    resumed: int = 0
    #: Experiments classified :data:`Outcome.TIMEOUT` by the wall-clock
    #: shard guard rather than by the simulator's cycle budget.
    synthesized_timeouts: int = 0
    #: Shards whose wall-clock deadline expired (their experiments were
    #: classified as timeouts instead of stalling the pool).
    timed_out_shards: int = 0
    #: Shard re-submissions after a worker process died.
    shard_retries: int = 0
    #: Shards abandoned after exhausting their retry budget.
    failed_shards: int = 0
    #: Class keys (or experiment keys) missing from the result because
    #: their shard was abandoned; empty for a complete campaign.
    missing: tuple = field(default_factory=tuple)
    #: Experiments classified early because the faulty machine's state
    #: digest re-joined the golden checkpoint ladder (the convergence
    #: early-exit).  Purely a performance diagnostic — outcomes are
    #: identical with the optimization off.
    convergence_hits: int = 0
    #: Experiments classified without executing a single post-injection
    #: cycle because the backward slice proved the injected cell
    #: non-critical (the criticality pre-skip).  Like
    #: :attr:`convergence_hits`, a performance diagnostic only.
    slice_hits: int = 0
    #: Experiments a batch executor finished on the scalar tier after
    #: their lane was evicted from a lockstep pack (divergence, traps,
    #: or persistent-fault stores) and could not be re-admitted.  A
    #: pack-efficiency diagnostic: high counts mean the workload is too
    #: branchy for the batch tier.  Always 0 for scalar executors.
    scalar_tail_experiments: int = 0
    #: Experiments whose outcomes were composed from the cross-campaign
    #: section store (another campaign already executed an identical
    #: program section) instead of re-executed.  Composed experiments
    #: are *also* counted in :attr:`resumed` — they enter the campaign
    #: through the same journal-merge path a resume uses.
    composed_hits: int = 0
    #: Per-worker attribution of executed work units, as sorted
    #: ``(worker_name, units)`` pairs.  Populated by the distributed
    #: coordinator (every unit names the worker whose submission was
    #: accounted); empty for single-host campaigns.
    workers: tuple = field(default_factory=tuple)
    #: Result frames rejected before merging: CRC mismatch (payload
    #: corrupted between the worker's executor and the coordinator) or
    #: row-shape/digest disagreement with the domain's expected
    #: experiment weight for the class.  Rejected frames are simply
    #: re-executed — corruption can delay a campaign, never skew it.
    integrity_rejected: int = 0
    #: Classes re-executed on a second worker and byte-compared
    #: (cross-check sampling).
    crosschecked: int = 0
    #: Cross-check comparisons that disagreed (at least one of the two
    #: workers returned wrong bytes).
    crosscheck_mismatches: int = 0
    #: Cross-checks abandoned unverified because no second worker was
    #: ever available to re-execute them.
    crosscheck_unverified: int = 0
    #: Journaled results discarded and re-queued after their worker was
    #: caught corrupting results (its unverified history is not
    #: trustworthy, so it is re-executed by honest workers).
    discarded_results: int = 0
    #: Bisection rounds performed while isolating poisonous shards.
    poison_splits: int = 0
    #: Class keys isolated as poisonous — their execution kills
    #: workers — and excluded from the result (also in :attr:`missing`).
    poison_keys: tuple = field(default_factory=tuple)
    #: Workers quarantined by the supervisor during this run, as sorted
    #: names (circuit-breaker trips and byzantine convictions alike).
    quarantined_workers: tuple = field(default_factory=tuple)

    @property
    def complete(self) -> bool:
        """True when every planned unit produced a result."""
        return not self.missing

    @property
    def completeness(self) -> float:
        """Fraction of planned units present in the result, in [0, 1]."""
        if self.total_units <= 0:
            return 1.0
        return 1.0 - len(self.missing) / self.total_units


class ExperimentJournal:
    """One SQLite journal file holding any number of campaigns.

    The journal is written by the campaign *driver* process only —
    worker processes return results to the parent, which journals them —
    so no cross-process SQLite coordination is needed.  A path-like
    argument opens (creating if necessary) the database at that path;
    ``":memory:"`` works for tests.
    """

    def __init__(self, path: str | Path, *, salvage: bool = False):
        self.path = str(path)
        #: Set when opening salvaged a corrupt file (``salvage=True``).
        self.salvage_report: SalvageReport | None = None
        try:
            self._conn = self._connect()
        except JournalCorruptError:
            if (not salvage or self.path == ":memory:"
                    or not os.path.exists(self.path)):
                raise
            # Torn-write recovery: move the corrupt file aside, rebuild
            # a fresh journal at the same path from every row that is
            # still readable, then open that.  Partially recovered
            # classes are the caller's problem — the campaign layers
            # validate row counts against the domain's expected
            # experiment weights before trusting resumed classes.
            self.salvage_report = salvage_journal(self.path)
            self._conn = self._connect()
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'") \
            .fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)))
            self._conn.commit()
            return
        try:
            stored = int(row[0])
        except (TypeError, ValueError):
            raise JournalError(
                f"journal {self.path!r} has unreadable schema version "
                f"{row[0]!r}, this build expects {SCHEMA_VERSION}") \
                from None
        if stored > SCHEMA_VERSION:
            raise JournalError(
                f"journal {self.path!r} has schema version {row[0]}, "
                f"this build expects {SCHEMA_VERSION}")
        if stored < SCHEMA_VERSION:
            # Versions 1 → 2 differ only by additive tables, which the
            # executescript above already created; migration is just the
            # version stamp.  Existing rows are untouched — no data loss.
            self._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION),))
            self._conn.commit()

    def _connect(self) -> sqlite3.Connection:
        """Open, integrity-check and schema-initialize the database."""
        try:
            conn = sqlite3.connect(self.path)
            conn.execute("PRAGMA busy_timeout = 5000")
            # WAL keeps readers (a second `repro resume --journal` listing
            # progress, a monitoring script) from blocking the campaign's
            # writes, and makes each commit an append instead of a
            # rewrite.  In-memory journals report "memory" here; that is
            # fine — only real files need the concurrency.
            conn.execute("PRAGMA journal_mode = WAL")
            check = conn.execute("PRAGMA quick_check").fetchone()
            if check is not None and check[0] != "ok":
                conn.close()
                raise JournalCorruptError(
                    f"journal {self.path!r} failed SQLite quick_check: "
                    f"{check[0]} — the file is corrupt; open with "
                    f"salvage=True (or `repro journal --salvage`) to "
                    f"recover the readable rows")
            conn.executescript(_SCHEMA)
        except sqlite3.DatabaseError as exc:
            raise JournalCorruptError(
                f"journal {self.path!r} is not a usable SQLite "
                f"database: {exc} — open with salvage=True (or `repro "
                f"journal --salvage`) to recover the readable rows") \
                from exc
        return conn

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- campaigns ------------------------------------------------------------

    def campaign(self, *, fingerprint: str, domain: str, kind: str,
                 params: Mapping, cycles: int) -> "CampaignJournal":
        """Open (or create) the campaign with this identity key.

        Raises :class:`JournalMismatchError` when a journaled campaign
        with the same key was recorded against a different golden
        runtime — same fingerprint but different Δt means the simulator
        or program changed under the journal.
        """
        encoded = canonical_params(params)
        row = self._conn.execute(
            "SELECT id, cycles FROM campaigns WHERE fingerprint = ? AND "
            "domain = ? AND kind = ? AND params = ?",
            (fingerprint, domain, kind, encoded)).fetchone()
        if row is not None:
            campaign_id, stored_cycles = row
            if stored_cycles != cycles:
                raise JournalMismatchError(
                    f"journaled campaign {kind!r} for {fingerprint} was "
                    f"recorded at Δt={stored_cycles} cycles, but the "
                    f"golden run now spans Δt={cycles}")
            return CampaignJournal(self, campaign_id)
        cursor = self._conn.execute(
            "INSERT INTO campaigns (fingerprint, domain, kind, params, "
            "cycles) VALUES (?, ?, ?, ?, ?)",
            (fingerprint, domain, kind, encoded, cycles))
        self._conn.commit()
        return CampaignJournal(self, cursor.lastrowid)

    def fabric_report(self) -> list[dict]:
        """Per-campaign distributed-fabric state for ``repro fabric``.

        Extends :meth:`campaigns` with each campaign's journaled shard
        leases and supervision/integrity events — the operator's view
        of what the coordinator did and to whom.
        """
        out = []
        for entry in self.campaigns():
            campaign_id = entry["id"]
            entry["leases"] = [
                {"shard": shard, "worker": worker,
                 "attempts": attempts, "status": status}
                for shard, worker, attempts, status in self._conn.execute(
                    "SELECT shard, worker, attempts, status FROM leases "
                    "WHERE campaign_id = ? ORDER BY shard",
                    (campaign_id,))]
            entry["events"] = [
                {"at": at, "worker": worker, "kind": kind,
                 "detail": detail}
                for at, worker, kind, detail in self._conn.execute(
                    "SELECT at, worker, kind, detail FROM fabric_events "
                    "WHERE campaign_id = ? ORDER BY id",
                    (campaign_id,))]
            out.append(entry)
        return out

    def campaigns(self) -> list[dict]:
        """All journaled campaigns with their progress counts."""
        out = []
        for row in self._conn.execute(
                "SELECT id, fingerprint, domain, kind, params, cycles, "
                "status FROM campaigns ORDER BY id"):
            campaign_id = row[0]
            classes = self._conn.execute(
                "SELECT COUNT(*) FROM class_results WHERE campaign_id "
                "= ?", (campaign_id,)).fetchone()[0]
            coords = self._conn.execute(
                "SELECT COUNT(*) FROM coordinate_results WHERE "
                "campaign_id = ?", (campaign_id,)).fetchone()[0]
            out.append({
                "id": campaign_id,
                "fingerprint": row[1],
                "domain": row[2],
                "kind": row[3],
                "params": json.loads(row[4]),
                "cycles": row[5],
                "status": row[6],
                "journaled_experiments": classes + coords,
            })
        return out

    # -- cross-campaign section store -----------------------------------------

    def section(self, *, fingerprint: str, program: str, domain: str,
                first_slot: int, last_slot: int,
                detail: str = "{}") -> int:
        """Intern one section by fingerprint, returning its row id.

        Sections are shared across campaigns (that is the point); the
        fingerprint is the identity, everything else is bookkeeping for
        ``repro journal`` listings.
        """
        row = self._conn.execute(
            "SELECT id FROM sections WHERE fingerprint = ?",
            (fingerprint,)).fetchone()
        if row is not None:
            return row[0]
        cursor = self._conn.execute(
            "INSERT INTO sections (fingerprint, program, domain, "
            "first_slot, last_slot, detail) VALUES (?, ?, ?, ?, ?, ?)",
            (fingerprint, program, domain, first_slot, last_slot, detail))
        self._conn.commit()
        return cursor.lastrowid

    def merge_section_rows(
            self, section_id: int,
            rows: Iterable[tuple[int, int, int, str, int, str]]) -> None:
        """Merge experiment rows into a section, first-wins.

        ``rows`` holds ``(slot, axis, bit, outcome_value, end_cycle,
        trap)``.  INSERT OR IGNORE gives the same first-wins semantics
        the dist fabric uses for at-least-once deliveries: experiments
        are deterministic, so a duplicate necessarily carries identical
        values and dropping it is sound.
        """
        with self._conn:
            self._conn.executemany(
                "INSERT OR IGNORE INTO section_results (section_id, "
                "slot, axis, bit, outcome, end_cycle, trap) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                [(section_id, slot, axis, bit, outcome, end_cycle, trap)
                 for slot, axis, bit, outcome, end_cycle, trap in rows])

    def section_rows(self, section_id: int) \
            -> dict[tuple[int, int, int], tuple[Outcome, int, str]]:
        """Stored rows of one section: ``(slot, axis, bit)`` → result."""
        return {
            (slot, axis, bit): (Outcome(outcome), end_cycle, trap)
            for slot, axis, bit, outcome, end_cycle, trap in
            self._conn.execute(
                "SELECT slot, axis, bit, outcome, end_cycle, trap "
                "FROM section_results WHERE section_id = ?",
                (section_id,))
        }

    def sections(self) -> list[dict]:
        """All stored sections with their result and reference counts."""
        out = []
        for row in self._conn.execute(
                "SELECT id, fingerprint, program, domain, first_slot, "
                "last_slot, detail FROM sections ORDER BY id"):
            section_id = row[0]
            results = self._conn.execute(
                "SELECT COUNT(*) FROM section_results WHERE "
                "section_id = ?", (section_id,)).fetchone()[0]
            referenced = self._conn.execute(
                "SELECT COUNT(*) FROM campaign_sections WHERE "
                "section_id = ?", (section_id,)).fetchone()[0]
            out.append({
                "id": section_id,
                "fingerprint": row[1],
                "program": row[2],
                "domain": row[3],
                "first_slot": row[4],
                "last_slot": row[5],
                "detail": json.loads(row[6] or "{}"),
                "stored_results": results,
                "campaigns": referenced,
            })
        return out

    def gc_sections(self) -> int:
        """Drop sections no campaign references; returns sections freed."""
        orphans = [row[0] for row in self._conn.execute(
            "SELECT id FROM sections WHERE id NOT IN "
            "(SELECT section_id FROM campaign_sections)")]
        with self._conn:
            for section_id in orphans:
                self._conn.execute(
                    "DELETE FROM section_results WHERE section_id = ?",
                    (section_id,))
                self._conn.execute(
                    "DELETE FROM sections WHERE id = ?", (section_id,))
        return len(orphans)

    def schema_version(self) -> int:
        """The schema version stamped in this journal file."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'") \
            .fetchone()
        return int(row[0])

    def size_report(self) -> dict:
        """Row counts per table plus the database file size in bytes."""
        tables = ("campaigns", "class_results", "coordinate_results",
                  "sampler_state", "leases", "sections",
                  "section_results", "campaign_sections", "summaries",
                  "fabric_events")
        report = {
            table: self._conn.execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in tables
        }
        try:
            report["file_bytes"] = Path(self.path).stat().st_size
        except OSError:
            report["file_bytes"] = 0
        return report

    # -- campaign summaries (successor of the JSON CampaignCache) -------------

    def store_summary(self, fingerprint: str, domain: str, name: str,
                      summary: str) -> None:
        """Store one campaign summary (JSON text) keyed by identity."""
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO summaries (fingerprint, domain, "
                "name, summary) VALUES (?, ?, ?, ?)",
                (fingerprint, domain, name, summary))

    def load_summary(self, fingerprint: str, domain: str) -> str | None:
        """The stored summary JSON for this identity, or None."""
        row = self._conn.execute(
            "SELECT summary FROM summaries WHERE fingerprint = ? AND "
            "domain = ?", (fingerprint, domain)).fetchone()
        return None if row is None else row[0]


class CampaignJournal:
    """Handle bound to one campaign inside an :class:`ExperimentJournal`."""

    def __init__(self, journal: ExperimentJournal, campaign_id: int):
        self.journal = journal
        self.campaign_id = campaign_id
        self._conn = journal._conn
        #: Set by :func:`open_campaign` when it constructed the journal
        #: from a path: the handle then owns the connection and
        #: :meth:`close` must be called so the WAL checkpoints into the
        #: main file when the campaign finishes (a never-closed
        #: connection leaves every result in the ``-wal`` sidecar).
        self.owned_journal: ExperimentJournal | None = None

    def close(self) -> None:
        """Release the journal connection if this handle owns it.

        A no-op for handles over caller-provided journals; safe to call
        more than once.
        """
        if self.owned_journal is not None:
            self.owned_journal.close()
            self.owned_journal = None

    # -- status ---------------------------------------------------------------

    @property
    def status(self) -> str:
        return self._conn.execute(
            "SELECT status FROM campaigns WHERE id = ?",
            (self.campaign_id,)).fetchone()[0]

    def mark_complete(self) -> None:
        self._conn.execute(
            "UPDATE campaigns SET status = 'complete' WHERE id = ?",
            (self.campaign_id,))
        self._conn.commit()

    def clear(self) -> None:
        """Discard every journaled result of this campaign (fresh start).

        The campaign's *links* into the section store are dropped, but
        the shared section rows themselves survive — they belong to
        every campaign whose program contains an identical section, and
        re-running this campaign fresh will re-derive (and compose
        from) them.
        """
        with self._conn:
            for table in ("class_results", "coordinate_results",
                          "sampler_state", "leases", "campaign_sections",
                          "fabric_events"):
                self._conn.execute(
                    f"DELETE FROM {table} WHERE campaign_id = ?",
                    (self.campaign_id,))
            self._conn.execute(
                "UPDATE campaigns SET status = 'running' WHERE id = ?",
                (self.campaign_id,))

    def link_section(self, section_id: int) -> None:
        """Mark this campaign as referencing a stored section."""
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO campaign_sections (campaign_id, "
                "section_id) VALUES (?, ?)",
                (self.campaign_id, section_id))

    # -- full-scan classes ----------------------------------------------------

    def record_class(self, axis: int, first_slot: int,
                     rows: Iterable[tuple[int, str, int, str]]) -> None:
        """Journal one live class atomically.

        ``rows`` holds ``(bit, outcome_value, end_cycle, trap)`` for each
        of the class's representative experiments.  The transaction is
        the crash-tolerance unit: a class is journaled entirely or not
        at all, so resumes never see half a class.
        """
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO class_results (campaign_id, "
                "axis, first_slot, bit, outcome, end_cycle, trap) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                [(self.campaign_id, axis, first_slot, bit, outcome,
                  end_cycle, trap)
                 for bit, outcome, end_cycle, trap in rows])

    def record_classes(
            self,
            classes: Iterable[tuple[int, int, Iterable]]) -> None:
        """Journal many live classes in one transaction.

        ``classes`` holds ``(axis, first_slot, rows)`` triples in
        :meth:`record_class` form.  Used when composing from the
        section store, where dozens of classes arrive at once and
        per-class transactions would pay one fsync each; atomicity per
        class still holds because the whole batch commits together.
        """
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO class_results (campaign_id, "
                "axis, first_slot, bit, outcome, end_cycle, trap) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                [(self.campaign_id, axis, first_slot, bit, outcome,
                  end_cycle, trap)
                 for axis, first_slot, rows in classes
                 for bit, outcome, end_cycle, trap in rows])

    def completed_classes(self) \
            -> dict[tuple[int, int], list[tuple[int, Outcome, int, str]]]:
        """Journaled classes: ``(axis, first_slot)`` → per-bit rows."""
        out: dict[tuple[int, int], list] = {}
        for axis, first_slot, bit, outcome, end_cycle, trap in \
                self._conn.execute(
                    "SELECT axis, first_slot, bit, outcome, end_cycle, "
                    "trap FROM class_results WHERE campaign_id = ? "
                    "ORDER BY axis, first_slot, bit",
                    (self.campaign_id,)):
            out.setdefault((axis, first_slot), []).append(
                (bit, Outcome(outcome), end_cycle, trap))
        return out

    def merge_class(self, axis: int, first_slot: int,
                    rows: Iterable[tuple[int, str, int, str]]) -> bool:
        """Journal one class idempotently; False when already journaled.

        The distributed coordinator's at-least-once delivery funnel: a
        result submission that arrives twice — a worker whose lease
        expired but whose TCP stream survived, a retransmit after a
        reconnect — merges into the journal exactly once, and the
        return value lets the caller keep its accounting exactly-once
        too.  Experiments are deterministic, so a duplicate submission
        necessarily carries the same rows; the first one wins.
        """
        row = self._conn.execute(
            "SELECT 1 FROM class_results WHERE campaign_id = ? AND "
            "axis = ? AND first_slot = ? LIMIT 1",
            (self.campaign_id, axis, first_slot)).fetchone()
        if row is not None:
            return False
        self.record_class(axis, first_slot, rows)
        return True

    def discard_classes(self,
                        keys: Iterable[tuple[int, int]]) -> int:
        """Delete journaled classes so they can be re-executed.

        The byzantine-recovery path: when cross-check verification
        catches a worker returning wrong bytes, every class it
        delivered that was never independently verified is discarded
        here and re-queued — first-wins merging means a poisoned first
        copy can only be displaced by deleting it.  Also used to drop
        partially salvaged classes whose row count disagrees with the
        domain's expected experiment weight.  Returns rows deleted.
        """
        keys = list(keys)
        if not keys:
            return 0
        with self._conn:
            before = self._conn.total_changes
            self._conn.executemany(
                "DELETE FROM class_results WHERE campaign_id = ? AND "
                "axis = ? AND first_slot = ?",
                [(self.campaign_id, axis, first_slot)
                 for axis, first_slot in keys])
            return self._conn.total_changes - before

    # -- fabric event log -----------------------------------------------------

    def record_event(self, kind: str, *, worker: str = "",
                     detail: str = "", at: float = 0.0) -> None:
        """Append one supervision/integrity incident to the fabric log.

        Kinds in use: ``quarantine``, ``probation``, ``crc-reject``,
        ``shape-reject``, ``crosscheck-mismatch``, ``crosscheck-stale``,
        ``byzantine``, ``discard``, ``poison-split``, ``poison-key``,
        ``salvage-prune``.  The log is diagnostic — campaign results
        never depend on it — but it is what ``repro fabric`` renders
        and what the chaos-soak telemetry uploads.
        """
        with self._conn:
            self._conn.execute(
                "INSERT INTO fabric_events (campaign_id, at, worker, "
                "kind, detail) VALUES (?, ?, ?, ?, ?)",
                (self.campaign_id, at, worker, kind, detail))

    def events(self) -> list[dict]:
        """Journaled fabric events of this campaign, oldest first."""
        return [
            {"at": at, "worker": worker, "kind": kind, "detail": detail}
            for at, worker, kind, detail in self._conn.execute(
                "SELECT at, worker, kind, detail FROM fabric_events "
                "WHERE campaign_id = ? ORDER BY id",
                (self.campaign_id,))
        ]

    # -- work leases ----------------------------------------------------------

    def record_lease(self, shard: int, keys: str, *, attempts: int,
                     status: str, worker: str = "") -> None:
        """Durably record one shard lease's retry state.

        ``keys`` is the canonical JSON encoding of the shard's planned
        class keys; a restarted coordinator uses it to detect that the
        shard plan changed (different ``--shards``) and discard stale
        attempt counts instead of mis-applying them.
        """
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO leases (campaign_id, shard, "
                "keys, worker, attempts, status) VALUES (?, ?, ?, ?, "
                "?, ?)",
                (self.campaign_id, shard, keys, worker, attempts,
                 status))

    def lease_states(self) -> dict[int, dict]:
        """Journaled lease state per shard index."""
        return {
            shard: {"keys": keys, "worker": worker,
                    "attempts": attempts, "status": status}
            for shard, keys, worker, attempts, status in
            self._conn.execute(
                "SELECT shard, keys, worker, attempts, status FROM "
                "leases WHERE campaign_id = ?", (self.campaign_id,))
        }

    # -- sampled experiments --------------------------------------------------

    def record_experiments(self, rows: Iterable[tuple[int, int, int,
                                                      str]]) -> None:
        """Journal distinct sampled experiments ``(axis, first_slot,
        bit, outcome_value)`` in one transaction."""
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO class_results (campaign_id, "
                "axis, first_slot, bit, outcome) VALUES (?, ?, ?, ?, ?)",
                [(self.campaign_id, axis, first_slot, bit, outcome)
                 for axis, first_slot, bit, outcome in rows])

    def completed_experiments(self) \
            -> dict[tuple[int, int, int], Outcome]:
        """Journaled sampled experiments keyed ``(axis, first_slot, bit)``."""
        return {
            (axis, first_slot, bit): Outcome(outcome)
            for axis, first_slot, bit, outcome in self._conn.execute(
                "SELECT axis, first_slot, bit, outcome FROM "
                "class_results WHERE campaign_id = ?",
                (self.campaign_id,))
        }

    # -- brute-force slots ----------------------------------------------------

    def record_slot(self, slot: int,
                    rows: Iterable[tuple[int, int, str]]) -> None:
        """Journal one injection slot of a brute-force scan atomically.

        ``rows`` holds ``(axis, bit, outcome_value)`` for every raw
        coordinate of the slot.
        """
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO coordinate_results (campaign_id, "
                "slot, axis, bit, outcome) VALUES (?, ?, ?, ?, ?)",
                [(self.campaign_id, slot, axis, bit, outcome)
                 for axis, bit, outcome in rows])

    def completed_slots(self) -> dict[int, list[tuple[int, int, Outcome]]]:
        """Journaled slots: slot → ``(axis, bit, outcome)`` in scan order."""
        out: dict[int, list] = {}
        for slot, axis, bit, outcome in self._conn.execute(
                "SELECT slot, axis, bit, outcome FROM coordinate_results "
                "WHERE campaign_id = ? ORDER BY slot, axis, bit",
                (self.campaign_id,)):
            out.setdefault(slot, []).append((axis, bit, Outcome(outcome)))
        return out

    # -- sampler RNG position -------------------------------------------------

    def record_sampler_state(self, draws: int, rng_state: str) -> None:
        """Journal the sampler's post-draw RNG position."""
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO sampler_state (campaign_id, "
                "draws, rng_state) VALUES (?, ?, ?)",
                (self.campaign_id, draws, rng_state))

    def sampler_state(self) -> tuple[int, str] | None:
        """The journaled ``(draws, rng_state)``, or None if unrecorded."""
        row = self._conn.execute(
            "SELECT draws, rng_state FROM sampler_state WHERE "
            "campaign_id = ?", (self.campaign_id,)).fetchone()
        return None if row is None else (row[0], row[1])

    def verify_sampler_state(self, draws: int, rng_state: str) -> None:
        """Check (or record) the sampler RNG position for exact resume.

        On first run the position is journaled; on resume the re-drawn
        position must match bit-for-bit, otherwise the journal belongs
        to a different sample sequence and resuming would corrupt the
        result.
        """
        stored = self.sampler_state()
        if stored is None:
            self.record_sampler_state(draws, rng_state)
            return
        if stored != (draws, rng_state):
            raise JournalMismatchError(
                f"sampler RNG position after {draws} draws does not "
                f"match the journaled campaign (journal recorded "
                f"{stored[0]} draws); the seed, sampler or sample count "
                f"changed — use resume=False to restart")


@dataclass(frozen=True)
class SalvageReport:
    """What :func:`salvage_journal` pulled out of a corrupt file."""

    #: Where the corrupt original was moved (``<path>.corrupt``).
    source: str
    #: Rows recovered per table.
    recovered: dict = field(default_factory=dict)
    #: Tables whose read hit corruption (recovery stopped mid-table,
    #: so their counts are lower bounds on what the file once held).
    truncated: tuple = ()

    @property
    def total_rows(self) -> int:
        return sum(self.recovered.values())


def salvage_journal(path: str | Path) -> SalvageReport:
    """Rebuild a corrupt journal in place from its readable rows.

    Torn-write recovery: a journal that fails ``quick_check`` (a crash
    mid-checkpoint, a truncated copy, disk corruption) is moved aside
    to ``<path>.corrupt`` and a fresh journal is rebuilt at ``path``
    by reading each known table row-by-row until the first unreadable
    page.  SQLite's transactionality means every recovered row was
    durably committed; what is *lost* is any row on a damaged page —
    which can truncate a class mid-way, so resuming layers must
    validate class row counts (:func:`invalid_classes`) instead of
    trusting recovered classes blindly.
    """
    path = str(path)
    corrupt = path + ".corrupt"
    os.replace(path, corrupt)
    for suffix in ("-wal", "-shm"):
        try:
            os.replace(path + suffix, corrupt + suffix)
        except OSError:
            pass
    recovered: dict[str, int] = {}
    truncated: list[str] = []
    fresh = ExperimentJournal(path)
    try:
        source = sqlite3.connect(corrupt)
        try:
            for table, columns in SALVAGE_TABLES:
                if table == "meta":
                    continue  # the fresh journal's version stamp wins
                rows, clean = _read_rows(source, table, columns)
                if not clean:
                    truncated.append(table)
                if rows:
                    cols = ", ".join(columns)
                    marks = ", ".join("?" * len(columns))
                    with fresh._conn:
                        fresh._conn.executemany(
                            f"INSERT OR IGNORE INTO {table} ({cols}) "
                            f"VALUES ({marks})", rows)
                recovered[table] = len(rows)
        finally:
            source.close()
    finally:
        fresh.close()
    return SalvageReport(source=corrupt, recovered=recovered,
                         truncated=tuple(truncated))


def _read_rows(conn: sqlite3.Connection, table: str,
               columns: tuple[str, ...]) -> tuple[list, bool]:
    """Read as many rows as the damaged file yields; False if it broke."""
    rows: list = []
    try:
        cursor = conn.execute(
            f"SELECT {', '.join(columns)} FROM {table}")
    except sqlite3.DatabaseError:
        return rows, False
    while True:
        try:
            row = cursor.fetchone()
        except sqlite3.DatabaseError:
            return rows, False
        if row is None:
            return rows, True
        rows.append(row)


def invalid_classes(completed: Mapping, expected: Mapping) -> list:
    """Keys whose journaled rows disagree with the expected bit count.

    ``completed`` maps class keys to per-bit row lists
    (:meth:`CampaignJournal.completed_classes` form); ``expected`` maps
    keys to the domain's experiment count for that class.  A healthy
    journal never contains a partial class (classes commit atomically),
    but a *salvaged* one can — page loss truncates committed
    transactions — and the distributed merge path must also never
    trust a worker's row count.  Any key listed here must be discarded
    and re-executed, not merged.
    """
    bad = []
    for key, rows in completed.items():
        count = expected.get(key)
        if count is None:
            continue
        if len(rows) != count \
                or [row[0] for row in rows] != list(range(count)):
            bad.append(key)
    return bad


def open_campaign(journal, golden, domain, kind: str,
                  params: Mapping) -> CampaignJournal | None:
    """Resolve a ``journal=`` argument into a campaign handle.

    Accepts ``None`` (journaling disabled), an :class:`ExperimentJournal`
    or a path.  The campaign key combines the program's content
    fingerprint, the fault domain, the campaign kind and its parameters.
    """
    if journal is None:
        return None
    # Imported lazily: database.py imports the runner module, which
    # imports this one.
    from .database import program_fingerprint

    owned = None
    if not isinstance(journal, ExperimentJournal):
        journal = owned = ExperimentJournal(journal)
    handle = journal.campaign(
        fingerprint=program_fingerprint(golden.program),
        domain=domain.name, kind=kind, params=params,
        cycles=golden.cycles)
    handle.owned_journal = owned
    return handle
