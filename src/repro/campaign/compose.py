"""Composing campaign results from the cross-campaign section store.

:class:`SectionComposer` is the bridge between one campaign run and the
journal's section store (schema v2).  On construction it fingerprints
the golden run's sections (:mod:`repro.faultspace.sections`), interns
them in the journal and links them to the campaign; during the run it
answers two questions:

* *compose*: does the store already hold results — written by **any**
  previous campaign, typically a different program variant or an
  earlier sweep — for every experiment of this equivalence class?  If
  so, the class's rows are returned without executing anything and the
  runner merges them exactly as it merges resumed journal rows.
* *store*: a freshly executed class/experiment is written back
  first-wins (INSERT OR IGNORE), so concurrent or repeated campaigns
  agree with the dist fabric's at-least-once merge discipline.

Soundness rests on the section fingerprint (see
``faultspace/sections.py``): equal fingerprints imply identical entry
state, identical reachable code, identical absolute cycle window and
identical executor budget, so every (slot, axis, bit) experiment in
the window has identical outcome, end cycle and trap.  Two deliberate
exclusions keep the store trustworthy:

* **Synthesized timeouts never enter the store.**  The parallel
  engine's wall-clock shard guard classifies abandoned experiments as
  TIMEOUT — a policy artifact of one run's scheduling, not a property
  of the program.  Runners only store results the simulator actually
  produced.
* **Brute-force scans neither read nor write the store.**  They exist
  to validate the def/use pruning against ground truth; composing
  their coordinates from pruned-campaign results would make that
  validation circular.
"""

from __future__ import annotations

import json

from ..faultspace.sections import build_section_map
from .journal import CampaignJournal
from .outcomes import Outcome


class SectionComposer:
    """Section-store view of one campaign: compose hits, store misses."""

    def __init__(self, handle: CampaignJournal, golden, domain,
                 params: dict | None):
        self.handle = handle
        self.journal = handle.journal
        self.domain = domain
        self.map = build_section_map(golden, domain, params)
        self._ids: dict[int, int] = {}
        for section in self.map:
            detail = json.dumps({
                "slots": section.slots,
                "blocks": len(section.leaders),
                "escape": section.escape,
            }, sort_keys=True)
            section_id = self.journal.section(
                fingerprint=section.fingerprint,
                program=golden.program.name, domain=domain.name,
                first_slot=section.first_slot,
                last_slot=section.last_slot, detail=detail)
            self._ids[section.index] = section_id
            handle.link_section(section_id)
        self._rows: dict[int, dict] = {}

    # -- store access ---------------------------------------------------------

    def _section_rows(self, index: int) -> dict:
        """Stored rows of one section, loaded lazily once per run."""
        cached = self._rows.get(index)
        if cached is None:
            cached = self.journal.section_rows(self._ids[index])
            self._rows[index] = cached
        return cached

    # -- full-scan classes ----------------------------------------------------

    def compose_class(self, interval):
        """Per-bit rows of one live class from the store, or ``None``.

        A class composes only when *every* representative bit is
        stored — partial classes re-execute whole, preserving the
        class-atomic crash-tolerance unit.
        """
        slot = interval.injection_slot
        axis = self.domain.axis_of(interval)
        rows = self._section_rows(self.map.owner(slot).index)
        out = []
        for bit in range(self.domain.experiment_count(interval)):
            hit = rows.get((slot, axis, bit))
            if hit is None:
                return None
            outcome, end_cycle, trap = hit
            out.append((bit, outcome, end_cycle, trap))
        return out

    def store_class(self, interval, rows) -> None:
        """Write one freshly executed class into the section store.

        ``rows`` holds ``(bit, outcome, end_cycle, trap)`` with the
        outcome as either the enum or its string value.
        """
        slot = interval.injection_slot
        axis = self.domain.axis_of(interval)
        section_id = self._ids[self.map.owner(slot).index]
        self.journal.merge_section_rows(section_id, [
            (slot, axis, bit,
             outcome.value if isinstance(outcome, Outcome) else outcome,
             end_cycle, trap)
            for bit, outcome, end_cycle, trap in rows])

    # -- sampled experiments --------------------------------------------------

    def compose_experiment(self, slot: int, axis: int, bit: int):
        """One experiment's ``(outcome, end_cycle, trap)`` or ``None``."""
        return self._section_rows(self.map.owner(slot).index).get(
            (slot, axis, bit))

    def store_experiment(self, slot: int, axis: int, bit: int,
                         outcome, end_cycle: int, trap: str) -> None:
        """Write one freshly executed sampled experiment to the store."""
        section_id = self._ids[self.map.owner(slot).index]
        self.journal.merge_section_rows(section_id, [
            (slot, axis, bit,
             outcome.value if isinstance(outcome, Outcome) else outcome,
             end_cycle, trap)])


def build_composer(handle, golden, domain, params):
    """A :class:`SectionComposer` when journaled, else ``None``.

    Composition is inseparable from journaling: without a journal there
    is no store to compose from, and the returned ``None`` makes every
    call site degrade to exactly the pre-section behaviour.
    """
    if handle is None:
        return None
    return SectionComposer(handle, golden, domain, params)


def compose_into_completed(composer, live, completed, handle,
                           report) -> int:
    """Inject store-composable classes into a ``completed`` mapping.

    The serial, parallel and distributed full-scan runners all consult
    a ``(axis, first_slot) → rows`` mapping of journaled classes before
    executing; extending that mapping here means composed classes flow
    through the exact resume machinery those runners already have —
    same ordering, same record reconstruction, same accounting — which
    is what makes the bit-for-bit invariant cheap to keep.  Composed
    experiments are counted in ``report.composed_hits`` (and, by
    virtue of living in the mapping, in ``resumed``).
    """
    if composer is None:
        return 0
    batch = []
    for interval in live:
        key = composer.domain.class_key(interval)
        if key in completed:
            continue
        rows = composer.compose_class(interval)
        if rows is None:
            continue
        completed[key] = rows
        batch.append((key[0], key[1],
                      [(bit, outcome.value, end_cycle, trap)
                       for bit, outcome, end_cycle, trap in rows]))
        report.composed_hits += len(rows)
    # One transaction for the whole composition: composing dozens of
    # classes must not pay dozens of fsyncs.
    handle.record_classes(batch)
    return len(batch)
