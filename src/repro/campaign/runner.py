"""Campaign runners: full fault-space scans and sampling campaigns.

Three campaign styles are provided, each generic over a
:class:`~repro.faultspace.domain.FaultDomain` (memory by default,
``domain="register"`` for the Section VI-B register fault model):

* :func:`run_full_scan` — the def/use-pruned full fault-space scan: one
  experiment per live equivalence class and bit, dead classes accounted
  as known "No Effect".  Exact and feasible (Section III-C).
* :func:`run_brute_force` — one real experiment per raw fault-space
  coordinate.  Exponentially more work; exists as ground truth for tests
  proving that pruning does not change any result.
* :func:`run_sampling` — a sampled campaign with a pluggable sampler
  (raw-uniform, live-only, or the deliberately biased class sampler for
  Pitfall 2 demonstrations).

All three accept ``jobs=`` for multiprocess sharding and produce results
bit-for-bit identical to their serial runs; see
:mod:`repro.campaign.parallel`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from ..faultspace.defuse import LIVE
from ..faultspace.domain import FaultDomain, MEMORY, get_domain
from ..faultspace.sampling import (
    BiasedClassSampler,
    LiveOnlySampler,
    Sample,
    UniformSampler,
)
from .experiment import ExperimentExecutor, ExperimentRecord
from .golden import GoldenRun
from .outcomes import Outcome

ProgressCallback = Callable[[int, int], None]


@dataclass
class CampaignResult:
    """Outcome of a def/use-pruned full fault-space scan, in any domain.

    ``class_outcomes`` maps each live class key ``(axis, first_slot)``
    — byte address or register number, depending on the domain — to the
    per-bit outcomes of its representative experiments (8 for memory
    classes, 32 for register classes).
    """

    golden: GoldenRun
    partition: object
    class_outcomes: dict[tuple[int, int], tuple[Outcome, ...]]
    records: list[ExperimentRecord] = field(default_factory=list)
    domain: FaultDomain = MEMORY

    @property
    def fault_space(self):
        """The raw fault space the scan covered."""
        return self.partition.fault_space

    @property
    def fault_space_size(self) -> int:
        """w — Δt · Δm for memory, Δt · 15 · 32 for registers."""
        return self.partition.fault_space.size

    @property
    def experiments_conducted(self) -> int:
        # Derived from the stored outcome tuples rather than hardcoding
        # the domain's bit width, so 8-bit memory classes and 32-bit
        # register classes both report correct totals.
        return sum(len(outcomes)
                   for outcomes in self.class_outcomes.values())

    def outcome_of(self, coordinate) -> Outcome:
        """The outcome of any raw coordinate, resolved via its class."""
        interval = self.partition.locate(coordinate)
        if interval.kind != LIVE:
            return Outcome.NO_EFFECT
        key = self.domain.class_key(interval)
        return self.class_outcomes[key][coordinate.bit]

    def weighted_counts(self) -> Counter:
        """Outcome counts expanded to the raw fault space (Pitfall 1 safe).

        Each live experiment result is weighted by its class's data
        lifetime; dead classes contribute their full weight as
        "No Effect".  Counts sum to the fault-space size ``w``.
        """
        counts: Counter = Counter()
        for interval in self.partition.live_classes():
            outcomes = self.class_outcomes[self.domain.class_key(interval)]
            for outcome in outcomes:
                counts[outcome] += interval.length
        counts[Outcome.NO_EFFECT] += self.partition.known_no_effect_weight
        return counts

    def raw_counts(self) -> Counter:
        """Unweighted per-experiment counts — the Pitfall 1 numbers.

        Exposed so the pitfall can be demonstrated and measured; do not
        use these for coverage or comparison.
        """
        counts: Counter = Counter()
        for outcomes in self.class_outcomes.values():
            counts.update(outcomes)
        return counts

    def weighted_failure_count(self) -> int:
        """Absolute failure count F, weighted to the raw fault space."""
        return sum(count for outcome, count in self.weighted_counts()
                   .items() if outcome.is_failure)

    def weighted_coverage(self) -> float:
        """Fault coverage c = 1 - F/w (per-program figure; see metrics)."""
        return 1.0 - self.weighted_failure_count() / self.fault_space_size

    def class_records(self) -> list[tuple[object, tuple[Outcome, ...]]]:
        """Live classes paired with their per-bit outcomes."""
        out = []
        for interval in self.partition.live_classes():
            out.append((interval,
                        self.class_outcomes[self.domain.class_key(interval)]))
        return out


def _parallel_campaign(golden: GoldenRun, jobs: int,
                       executor: ExperimentExecutor | None,
                       domain: FaultDomain):
    """Build the parallel driver for a runner-level ``jobs`` request."""
    from .parallel import ParallelCampaign

    if executor is not None:
        raise ValueError(
            "an explicit executor cannot be shared across worker "
            "processes; drop the executor argument or run with jobs=None")
    return ParallelCampaign(golden, jobs, domain=domain)


def run_full_scan(golden: GoldenRun, *,
                  partition=None,
                  executor: ExperimentExecutor | None = None,
                  keep_records: bool = False,
                  progress: ProgressCallback | None = None,
                  jobs: int | None = None,
                  domain: FaultDomain | str = MEMORY) -> CampaignResult:
    """Def/use-pruned full fault-space scan (exact, no sampling error).

    ``jobs`` selects the execution engine: ``None`` (default) runs
    serially in-process, ``0`` uses one worker process per CPU, any
    positive count that many workers.  ``domain`` selects the fault
    model (``"memory"`` or ``"register"``).  Results are identical for
    every engine choice.
    """
    domain = get_domain(domain)
    if jobs is not None:
        return _parallel_campaign(golden, jobs, executor,
                                  domain).run_full_scan(
            partition=partition, keep_records=keep_records,
            progress=progress)
    if partition is None:
        partition = domain.build_partition(golden)
    if executor is None:
        executor = ExperimentExecutor(golden, domain=domain)
    live = partition.live_classes()  # sorted by injection slot
    class_outcomes: dict[tuple[int, int], tuple[Outcome, ...]] = {}
    records: list[ExperimentRecord] = []
    for done, interval in enumerate(live):
        results = [executor.run(coord) for coord in interval.experiments()]
        class_outcomes[domain.class_key(interval)] = tuple(
            record.outcome for record in results)
        if keep_records:
            records.extend(results)
        if progress is not None:
            progress(done + 1, len(live))
    return CampaignResult(golden=golden, partition=partition,
                          class_outcomes=class_outcomes, records=records,
                          domain=domain)


@dataclass
class BruteForceResult:
    """Ground-truth scan: one real experiment per raw coordinate."""

    golden: GoldenRun
    outcomes: dict
    domain: FaultDomain = MEMORY

    def counts(self) -> Counter:
        return Counter(self.outcomes.values())

    @property
    def fault_space_size(self) -> int:
        return self.domain.fault_space(self.golden).size


def run_brute_force(golden: GoldenRun, *,
                    executor: ExperimentExecutor | None = None,
                    jobs: int | None = None,
                    domain: FaultDomain | str = MEMORY) -> BruteForceResult:
    """Run one experiment for *every* fault-space coordinate.

    Only feasible for tiny programs; used by tests and examples to prove
    that def/use pruning plus weighting reproduces these numbers exactly.
    ``jobs`` and ``domain`` behave as in :func:`run_full_scan`.
    """
    domain = get_domain(domain)
    if jobs is not None:
        return _parallel_campaign(golden, jobs, executor,
                                  domain).run_brute_force()
    if executor is None:
        executor = ExperimentExecutor(golden, domain=domain)
    space = domain.fault_space(golden)
    outcomes: dict = {}
    # Iterate slot-major so the executor's fast-forward engages.
    for coord in space.iter_coordinates():
        outcomes[coord] = executor.run(coord).outcome
    return BruteForceResult(golden=golden, outcomes=outcomes, domain=domain)


@dataclass
class SamplingResult:
    """Outcome of a sampled campaign.

    ``samples`` pairs every drawn sample with its outcome.  Samples that
    fell into the same live class share one conducted experiment;
    samples in dead classes are "No Effect" without any experiment —
    but *all* samples count in the estimate (Pitfall 2).

    ``population`` is the size of the space the samples were drawn from:
    ``w`` for raw-uniform sampling, ``w′ = live weight`` for live-only
    sampling.  Extrapolation (Pitfall 3, Corollary 2) must scale counts
    by ``population / n_samples``.
    """

    golden: GoldenRun
    partition: object
    samples: list[tuple[Sample, Outcome]]
    population: int
    experiments_conducted: int
    sampler: str
    domain: FaultDomain = MEMORY

    @property
    def n_samples(self) -> int:
        return len(self.samples)

    def counts(self) -> Counter:
        return Counter(outcome for _, outcome in self.samples)

    def failure_count(self) -> int:
        return sum(1 for _, outcome in self.samples if outcome.is_failure)


#: Sampler names accepted by :func:`run_sampling`.
SAMPLERS = ("uniform", "live-only", "biased-class")


def _draw_classified(golden: GoldenRun, n_samples: int, seed: int,
                     sampler: str, partition,
                     domain: FaultDomain) -> tuple[list[Sample], int]:
    """Draw and classify samples; shared by the serial and parallel paths.

    Returns the drawn samples (original order) and the population size
    the estimate must extrapolate against.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if sampler == "uniform":
        drawn = UniformSampler(domain.fault_space(golden), seed=seed,
                               domain=domain) \
            .draw_classified(n_samples, partition)
        population = domain.fault_space(golden).size
    elif sampler == "live-only":
        live_sampler = LiveOnlySampler(partition, seed=seed, domain=domain)
        drawn = live_sampler.draw_classified(n_samples)
        population = live_sampler.population
    elif sampler == "biased-class":
        drawn = BiasedClassSampler(partition, seed=seed, domain=domain) \
            .draw_classified(n_samples)
        # The biased sampler has no meaningful population; report w so the
        # demonstration can show how wrong its extrapolation is.
        population = domain.fault_space(golden).size
    else:
        raise ValueError(f"unknown sampler {sampler!r}; pick from {SAMPLERS}")
    return drawn, population


def run_sampling(golden: GoldenRun, n_samples: int, *, seed: int = 0,
                 sampler: str = "uniform",
                 partition=None,
                 executor: ExperimentExecutor | None = None,
                 progress: ProgressCallback | None = None,
                 jobs: int | None = None,
                 domain: FaultDomain | str = MEMORY) -> SamplingResult:
    """Run a sampled campaign with def/use-pruned experiment sharing.

    ``progress`` is called after each *conducted* experiment with
    ``(done, total)`` over the distinct (class, bit) experiment keys the
    drawn samples require.  ``jobs`` and ``domain`` behave as in
    :func:`run_full_scan`.
    """
    domain = get_domain(domain)
    if jobs is not None:
        return _parallel_campaign(golden, jobs, executor,
                                  domain).run_sampling(
            n_samples, seed=seed, sampler=sampler, partition=partition,
            progress=progress)
    if partition is None:
        partition = domain.build_partition(golden)
    if executor is None:
        executor = ExperimentExecutor(golden, domain=domain)

    drawn, population = _draw_classified(golden, n_samples, seed, sampler,
                                         partition, domain)

    # One experiment per distinct (class, bit); dead classes need none.
    total_experiments = 0
    if progress is not None:
        total_experiments = len({
            domain.class_key(interval) + (sample.coordinate.bit,)
            for sample, interval in (
                (s, partition.locate(s.coordinate)) for s in drawn
                if s.class_kind == LIVE)})
    cache: dict[tuple[int, int, int], Outcome] = {}
    experiments = 0
    results: list[tuple[Sample, Outcome]] = []
    # Execute in ascending slot order for snapshot reuse, then restore the
    # original sample order (it is irrelevant for counting, but callers
    # may inspect per-sample sequences).
    order = sorted(range(len(drawn)),
                   key=lambda i: drawn[i].coordinate.slot)
    outcome_by_index: dict[int, Outcome] = {}
    for i in order:
        sample = drawn[i]
        if sample.class_kind != LIVE:
            outcome_by_index[i] = Outcome.NO_EFFECT
            continue
        interval = partition.locate(sample.coordinate)
        key = domain.class_key(interval) + (sample.coordinate.bit,)
        if key not in cache:
            representative = domain.coordinate(
                interval.injection_slot, domain.axis_of(interval),
                sample.coordinate.bit)
            cache[key] = executor.run(representative).outcome
            experiments += 1
            if progress is not None:
                progress(experiments, total_experiments)
        outcome_by_index[i] = cache[key]
    results = [(drawn[i], outcome_by_index[i]) for i in range(len(drawn))]
    return SamplingResult(golden=golden, partition=partition,
                          samples=results, population=population,
                          experiments_conducted=experiments, sampler=sampler,
                          domain=domain)
