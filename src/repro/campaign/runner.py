"""Campaign runners: full fault-space scans and sampling campaigns.

Three campaign styles are provided, each generic over a
:class:`~repro.faultspace.domain.FaultDomain` (memory by default,
``domain="register"`` for the Section VI-B register fault model):

* :func:`run_full_scan` — the def/use-pruned full fault-space scan: one
  experiment per live equivalence class and bit, dead classes accounted
  as known "No Effect".  Exact and feasible (Section III-C).
* :func:`run_brute_force` — one real experiment per raw fault-space
  coordinate.  Exponentially more work; exists as ground truth for tests
  proving that pruning does not change any result.
* :func:`run_sampling` — a sampled campaign with a pluggable sampler
  (raw-uniform, live-only, or the deliberately biased class sampler for
  Pitfall 2 demonstrations).

All three accept ``jobs=`` for multiprocess sharding and produce results
bit-for-bit identical to their serial runs; see
:mod:`repro.campaign.parallel`.

All three also accept ``journal=`` (an
:class:`~repro.campaign.journal.ExperimentJournal` or a path): completed
work units are then appended durably as the campaign runs, and a rerun
of the same campaign against the same journal *resumes*, skipping every
journaled unit.  The contract is strict — a resumed campaign returns a
result bit-for-bit identical to an uninterrupted one, including
iteration order, record lists and sample sequences.  ``resume=False``
clears the journaled campaign first.  ``result.execution`` reports how
the campaign actually ran (units executed vs. resumed, shard retries,
wall-clock timeouts, completeness).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Callable

from ..faultspace.defuse import LIVE
from ..faultspace.domain import FaultDomain, MEMORY, get_domain
from ..faultspace.sampling import (
    BiasedClassSampler,
    LiveOnlySampler,
    Sample,
    UniformSampler,
)
from .compose import build_composer, compose_into_completed
from .experiment import ExecutorConfig, ExperimentExecutor, ExperimentRecord
from .golden import GoldenRun
from .journal import ExecutionReport, open_campaign
from .outcomes import Outcome

ProgressCallback = Callable[[int, int], None]


def _executor_params(executor: ExperimentExecutor) -> dict:
    """The executor settings that affect outcomes — part of the journal
    key, so a changed timeout policy opens a fresh campaign instead of
    mixing incompatible classifications.  ``use_convergence`` is
    deliberately absent: it cannot change any outcome, so a campaign
    journaled with it on resumes cleanly with it off and vice versa."""
    return {"timeout_cycles": executor.timeout_cycles,
            "early_stop": executor.early_stop}


def _build_executor(golden: GoldenRun,
                    executor: ExperimentExecutor | None,
                    config: ExecutorConfig | None,
                    domain: FaultDomain,
                    partition=None) -> ExperimentExecutor:
    """Resolve the serial path's executor from the caller's arguments.

    ``partition`` forwards an already-built def/use partition to the
    ``auto`` engine's tier planner so resolving it is free on paths
    that have one (the planner otherwise builds and caches its own)."""
    if executor is not None:
        if config is not None:
            raise ValueError(
                "pass either executor= or config=, not both; the config "
                "exists to build an executor when none is given")
        return executor
    return replace(config or ExecutorConfig(),
                   domain=domain.name).build(golden, partition=partition)


@dataclass
class CampaignResult:
    """Outcome of a def/use-pruned full fault-space scan, in any domain.

    ``class_outcomes`` maps each live class key ``(axis, first_slot)``
    — byte address or register number, depending on the domain — to the
    per-bit outcomes of its representative experiments (8 for memory
    classes, 32 for register classes).

    ``execution`` (excluded from equality) reports completeness: for a
    degraded campaign — shards abandoned after exhausting their retry
    budget — the missing classes are absent from ``class_outcomes`` and
    listed in ``execution.missing``; the weighted counts then cover only
    the completed part of the fault space.
    """

    golden: GoldenRun
    partition: object
    class_outcomes: dict[tuple[int, int], tuple[Outcome, ...]]
    records: list[ExperimentRecord] = field(default_factory=list)
    domain: FaultDomain = MEMORY
    execution: ExecutionReport | None = field(default=None, compare=False,
                                              repr=False)

    @property
    def fault_space(self):
        """The raw fault space the scan covered."""
        return self.partition.fault_space

    @property
    def fault_space_size(self) -> int:
        """w — Δt · Δm for memory, Δt · 15 · 32 for registers."""
        return self.partition.fault_space.size

    @property
    def experiments_conducted(self) -> int:
        # Derived from the stored outcome tuples rather than hardcoding
        # the domain's bit width, so 8-bit memory classes and 32-bit
        # register classes both report correct totals.
        return sum(len(outcomes)
                   for outcomes in self.class_outcomes.values())

    def outcome_of(self, coordinate) -> Outcome:
        """The outcome of any raw coordinate, resolved via its class."""
        interval = self.partition.locate(coordinate)
        if interval.kind != LIVE:
            return Outcome.NO_EFFECT
        key = self.domain.class_key(interval)
        index = self.domain.experiment_index(interval, coordinate)
        return self.class_outcomes[key][index]

    def weighted_counts(self) -> Counter:
        """Outcome counts expanded to the raw fault space (Pitfall 1 safe).

        Each live experiment result is weighted by its class's data
        lifetime; dead classes contribute their full weight as
        "No Effect".  Counts sum to the fault-space size ``w`` for a
        complete campaign; a degraded campaign (``execution.missing``
        non-empty) covers correspondingly less.
        """
        counts: Counter = Counter()
        for interval in self.partition.live_classes():
            key = self.domain.class_key(interval)
            if key not in self.class_outcomes:
                continue  # degraded: shard abandoned, class missing
            weights = self.domain.experiment_slot_weights(interval)
            for outcome, weight in zip(self.class_outcomes[key], weights):
                counts[outcome] += interval.length * weight
        counts[Outcome.NO_EFFECT] += self.partition.known_no_effect_weight
        return counts

    def raw_counts(self) -> Counter:
        """Unweighted per-experiment counts — the Pitfall 1 numbers.

        Exposed so the pitfall can be demonstrated and measured; do not
        use these for coverage or comparison.
        """
        counts: Counter = Counter()
        for outcomes in self.class_outcomes.values():
            counts.update(outcomes)
        return counts

    def weighted_failure_count(self) -> int:
        """Absolute failure count F, weighted to the raw fault space."""
        return sum(count for outcome, count in self.weighted_counts()
                   .items() if outcome.is_failure)

    def weighted_coverage(self) -> float:
        """Fault coverage c = 1 - F/w (per-program figure; see metrics)."""
        return 1.0 - self.weighted_failure_count() / self.fault_space_size

    def weighted_counts_by_section(self, section_map) -> dict:
        """Per-section Pitfall-1-weighted counts (see sections.py).

        Splits every live class's weight across the sections its
        interval overlaps and attributes each section's residual weight
        as NO_EFFECT; :func:`~repro.faultspace.sections
        .aggregate_section_counts` folds the result back into exactly
        :meth:`weighted_counts`.  Only defined for complete campaigns —
        a degraded campaign's missing classes would silently surface as
        NO_EFFECT residual, so they raise instead.
        """
        from ..faultspace.sections import section_weighted_counts

        live = self.partition.live_classes()
        missing = [iv for iv in live
                   if self.domain.class_key(iv) not in self.class_outcomes]
        if missing:
            raise ValueError(
                f"cannot split weighted counts by section: {len(missing)} "
                f"live classes missing from a degraded campaign")
        return section_weighted_counts(
            section_map, live, self.class_outcomes,
            domain=self.domain, space=self.partition.fault_space)

    def class_records(self) -> list[tuple[object, tuple[Outcome, ...]]]:
        """Live classes paired with their per-bit outcomes."""
        out = []
        for interval in self.partition.live_classes():
            key = self.domain.class_key(interval)
            if key in self.class_outcomes:
                out.append((interval, self.class_outcomes[key]))
        return out


def _parallel_campaign(golden: GoldenRun, jobs: int,
                       executor: ExperimentExecutor | None,
                       domain: FaultDomain, policy,
                       config: ExecutorConfig | None = None):
    """Build the parallel driver for a runner-level ``jobs`` request."""
    from .parallel import ParallelCampaign

    if executor is not None:
        raise ValueError(
            "an explicit executor cannot be shared across worker "
            "processes; drop the executor argument or run with jobs=None")
    return ParallelCampaign(golden, jobs, executor_config=config,
                            domain=domain, policy=policy)


def run_full_scan(golden: GoldenRun, *,
                  partition=None,
                  executor: ExperimentExecutor | None = None,
                  config: ExecutorConfig | None = None,
                  keep_records: bool = False,
                  progress: ProgressCallback | None = None,
                  jobs: int | None = None,
                  domain: FaultDomain | str = MEMORY,
                  journal=None,
                  resume: bool = True,
                  policy=None) -> CampaignResult:
    """Def/use-pruned full fault-space scan (exact, no sampling error).

    ``jobs`` selects the execution engine: ``None`` (default) runs
    serially in-process, ``0`` uses one worker process per CPU, any
    positive count that many workers.  ``domain`` selects the fault
    model (``"memory"`` or ``"register"``).  Results are identical for
    every engine choice.

    ``config`` is an :class:`~.experiment.ExecutorConfig` applied on
    both the serial and the parallel path (e.g. to disable the
    convergence early-exit); ``executor`` injects a prebuilt executor
    on the serial path only and excludes ``config``.

    ``journal`` enables durable per-class result journaling and resume
    (see the module docstring); ``policy`` is a
    :class:`~repro.campaign.parallel.RetryPolicy` for the parallel
    engine's timeout/retry behaviour (ignored when serial).
    """
    domain = get_domain(domain)
    if jobs is not None:
        return _parallel_campaign(golden, jobs, executor, domain,
                                  policy, config).run_full_scan(
            partition=partition, keep_records=keep_records,
            progress=progress, journal=journal, resume=resume)
    if partition is None:
        partition = domain.build_partition(golden)
    executor = _build_executor(golden, executor, config, domain,
                               partition=partition)
    hits_base = executor.convergence_hits
    slice_base = executor.slice_hits
    tail_base = executor.scalar_tail_experiments
    handle = open_campaign(journal, golden, domain, "full-scan",
                           _executor_params(executor))
    completed = {}
    if handle is not None:
        if not resume:
            handle.clear()
        completed = handle.completed_classes()
    live = partition.live_classes()  # sorted by injection slot
    report = ExecutionReport(total_units=len(live))
    # Compose classes another campaign already executed for an identical
    # program section: injecting them into ``completed`` up front routes
    # them through the exact resume machinery below.
    composer = build_composer(handle, golden, domain,
                              _executor_params(executor))
    compose_into_completed(composer, live, completed, handle, report)
    class_outcomes: dict[tuple[int, int], tuple[Outcome, ...]] = {}
    records: list[ExperimentRecord] = []
    done = 0
    index = 0
    while index < len(live):
        interval = live[index]
        key = domain.class_key(interval)
        if key in completed:
            rows = completed[key]
            class_outcomes[key] = tuple(outcome for _, outcome, _, _
                                        in rows)
            if keep_records:
                coords = interval.experiments()
                records.extend(
                    ExperimentRecord(coordinate=coords[bit],
                                     outcome=outcome, end_cycle=end_cycle,
                                     trap=trap)
                    for bit, outcome, end_cycle, trap in rows)
            report.resumed += 1
            index += 1
            done += 1
            if progress is not None:
                progress(done, len(live))
            continue
        # Gather the run of fresh classes sharing this injection slot
        # and submit their experiments together: live classes are
        # slot-sorted, and a batch executor turns one same-slot group
        # into lockstep lanes (a scalar executor just iterates).
        group = [interval]
        while index + len(group) < len(live):
            nxt = live[index + len(group)]
            if (nxt.injection_slot != interval.injection_slot
                    or domain.class_key(nxt) in completed):
                break
            group.append(nxt)
        results = executor.run_many(
            [coord for member in group for coord in member.experiments()])
        consumed = 0
        for member in group:
            member_key = domain.class_key(member)
            width = len(member.experiments())
            member_records = results[consumed:consumed + width]
            consumed += width
            class_outcomes[member_key] = tuple(
                record.outcome for record in member_records)
            if keep_records:
                records.extend(member_records)
            if handle is not None:
                handle.record_class(
                    member_key[0], member_key[1],
                    [(bit, record.outcome.value, record.end_cycle,
                      record.trap)
                     for bit, record in enumerate(member_records)])
                composer.store_class(member, [
                    (bit, record.outcome, record.end_cycle, record.trap)
                    for bit, record in enumerate(member_records)])
            report.executed += 1
            done += 1
            if progress is not None:
                progress(done, len(live))
        index += len(group)
    report.convergence_hits = executor.convergence_hits - hits_base
    report.slice_hits = executor.slice_hits - slice_base
    report.scalar_tail_experiments = (executor.scalar_tail_experiments
                                      - tail_base)
    if handle is not None:
        handle.mark_complete()
        handle.close()
    return CampaignResult(golden=golden, partition=partition,
                          class_outcomes=class_outcomes, records=records,
                          domain=domain, execution=report)


@dataclass
class BruteForceResult:
    """Ground-truth scan: one real experiment per raw coordinate."""

    golden: GoldenRun
    outcomes: dict
    domain: FaultDomain = MEMORY
    execution: ExecutionReport | None = field(default=None, compare=False,
                                              repr=False)

    def counts(self) -> Counter:
        return Counter(self.outcomes.values())

    @property
    def fault_space_size(self) -> int:
        return self.domain.fault_space(self.golden).size


def run_brute_force(golden: GoldenRun, *,
                    executor: ExperimentExecutor | None = None,
                    config: ExecutorConfig | None = None,
                    progress: ProgressCallback | None = None,
                    jobs: int | None = None,
                    domain: FaultDomain | str = MEMORY,
                    journal=None,
                    resume: bool = True,
                    policy=None) -> BruteForceResult:
    """Run one experiment for *every* fault-space coordinate.

    Only feasible for tiny programs; used by tests and examples to prove
    that def/use pruning plus weighting reproduces these numbers exactly.
    ``jobs``, ``domain``, ``config``, ``journal`` and ``resume`` behave
    as in :func:`run_full_scan`; ``progress`` is called per completed
    injection slot.  The journal's atomic unit is one injection slot.
    """
    domain = get_domain(domain)
    if jobs is not None:
        return _parallel_campaign(golden, jobs, executor, domain,
                                  policy, config).run_brute_force(
            progress=progress, journal=journal, resume=resume)
    executor = _build_executor(golden, executor, config, domain)
    hits_base = executor.convergence_hits
    slice_base = executor.slice_hits
    tail_base = executor.scalar_tail_experiments
    handle = open_campaign(journal, golden, domain, "brute-force",
                           _executor_params(executor))
    completed = {}
    if handle is not None:
        if not resume:
            handle.clear()
        completed = handle.completed_slots()
    space = domain.fault_space(golden)
    report = ExecutionReport(total_units=golden.cycles)
    outcomes: dict = {}
    # Iterate slot-major so the executor's fast-forward engages.
    for slot in range(1, golden.cycles + 1):
        if slot in completed:
            for axis, bit, outcome in completed[slot]:
                outcomes[domain.coordinate(slot, axis, bit)] = outcome
            report.resumed += 1
        else:
            coords = list(domain.slot_coordinates(space, slot))
            rows = []
            for coord, record in zip(coords, executor.run_many(coords)):
                outcomes[coord] = record.outcome
                rows.append((domain.coordinate_axis(coord), coord.bit,
                             record.outcome.value))
            if handle is not None:
                handle.record_slot(slot, rows)
            report.executed += 1
        if progress is not None:
            progress(slot, golden.cycles)
    report.convergence_hits = executor.convergence_hits - hits_base
    report.slice_hits = executor.slice_hits - slice_base
    report.scalar_tail_experiments = (executor.scalar_tail_experiments
                                      - tail_base)
    if handle is not None:
        handle.mark_complete()
        handle.close()
    return BruteForceResult(golden=golden, outcomes=outcomes,
                            domain=domain, execution=report)


@dataclass
class SamplingResult:
    """Outcome of a sampled campaign.

    ``samples`` pairs every drawn sample with its outcome.  Samples that
    fell into the same live class share one conducted experiment;
    samples in dead classes are "No Effect" without any experiment —
    but *all* samples count in the estimate (Pitfall 2).

    ``population`` is the size of the space the samples were drawn from:
    ``w`` for raw-uniform sampling, ``w′ = live weight`` for live-only
    sampling.  Extrapolation (Pitfall 3, Corollary 2) must scale counts
    by ``population / n_samples``.
    """

    golden: GoldenRun
    partition: object
    samples: list[tuple[Sample, Outcome]]
    population: int
    experiments_conducted: int
    sampler: str
    domain: FaultDomain = MEMORY
    execution: ExecutionReport | None = field(default=None, compare=False,
                                              repr=False)

    @property
    def n_samples(self) -> int:
        return len(self.samples)

    def counts(self) -> Counter:
        return Counter(outcome for _, outcome in self.samples)

    def failure_count(self) -> int:
        return sum(1 for _, outcome in self.samples if outcome.is_failure)


#: Sampler names accepted by :func:`run_sampling`.
SAMPLERS = ("uniform", "live-only", "biased-class")


def _draw_classified(golden: GoldenRun, n_samples: int, seed: int,
                     sampler: str, partition,
                     domain: FaultDomain) -> tuple[list[Sample], int, str]:
    """Draw and classify samples; shared by the serial and parallel paths.

    Returns the drawn samples (original order), the population size the
    estimate must extrapolate against, and the sampler's post-draw RNG
    position (JSON) — the experiment journal stores the position so a
    resume can verify it re-drew exactly the journaled sequence.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if sampler == "uniform":
        instance = UniformSampler(domain.fault_space(golden), seed=seed,
                                  domain=domain)
        drawn = instance.draw_classified(n_samples, partition)
        population = domain.fault_space(golden).size
    elif sampler == "live-only":
        instance = LiveOnlySampler(partition, seed=seed, domain=domain)
        drawn = instance.draw_classified(n_samples)
        population = instance.population
    elif sampler == "biased-class":
        instance = BiasedClassSampler(partition, seed=seed, domain=domain)
        drawn = instance.draw_classified(n_samples)
        # The biased sampler has no meaningful population; report w so the
        # demonstration can show how wrong its extrapolation is.
        population = domain.fault_space(golden).size
    else:
        raise ValueError(f"unknown sampler {sampler!r}; pick from {SAMPLERS}")
    return drawn, population, instance.rng_state()


def run_sampling(golden: GoldenRun, n_samples: int, *, seed: int = 0,
                 sampler: str = "uniform",
                 partition=None,
                 executor: ExperimentExecutor | None = None,
                 config: ExecutorConfig | None = None,
                 progress: ProgressCallback | None = None,
                 jobs: int | None = None,
                 domain: FaultDomain | str = MEMORY,
                 journal=None,
                 resume: bool = True,
                 policy=None) -> SamplingResult:
    """Run a sampled campaign with def/use-pruned experiment sharing.

    ``progress`` is called as each distinct (class, bit) experiment key
    the drawn samples require is resolved — executed fresh or loaded
    from the journal — with ``(done, total)`` over those keys.  ``jobs``,
    ``domain``, ``config``, ``journal`` and ``resume`` behave as in
    :func:`run_full_scan`.  The journal additionally records the
    sampler's RNG position: resuming with a different seed, sampler or
    sample count raises
    :class:`~repro.campaign.journal.JournalMismatchError`.
    """
    domain = get_domain(domain)
    if jobs is not None:
        return _parallel_campaign(golden, jobs, executor, domain,
                                  policy, config).run_sampling(
            n_samples, seed=seed, sampler=sampler, partition=partition,
            progress=progress, journal=journal, resume=resume)
    if partition is None:
        partition = domain.build_partition(golden)
    executor = _build_executor(golden, executor, config, domain,
                               partition=partition)
    hits_base = executor.convergence_hits
    slice_base = executor.slice_hits
    tail_base = executor.scalar_tail_experiments

    handle = open_campaign(
        journal, golden, domain, "sampling",
        dict(_executor_params(executor), seed=seed, sampler=sampler,
             n_samples=n_samples))
    if handle is not None and not resume:
        handle.clear()

    drawn, population, rng_state = _draw_classified(
        golden, n_samples, seed, sampler, partition, domain)
    journaled: dict[tuple[int, int, int], Outcome] = {}
    if handle is not None:
        handle.verify_sampler_state(len(drawn), rng_state)
        journaled = handle.completed_experiments()
    # Section fingerprints use the executor parameters alone (no seed or
    # sample count), so sampled and full-scan campaigns share the store.
    composer = build_composer(handle, golden, domain,
                              _executor_params(executor))

    # One experiment per distinct (class, bit); dead classes need none.
    total_experiments = 0
    if progress is not None:
        total_experiments = len({
            domain.class_key(interval)
            + (domain.experiment_index(interval, sample.coordinate),)
            for sample, interval in (
                (s, partition.locate(s.coordinate)) for s in drawn
                if s.class_kind == LIVE)})
    cache: dict[tuple[int, int, int], Outcome] = {}
    report = ExecutionReport()
    results: list[tuple[Sample, Outcome]] = []
    # Execute in ascending slot order for snapshot reuse, then restore the
    # original sample order (it is irrelevant for counting, but callers
    # may inspect per-sample sequences).
    order = sorted(range(len(drawn)),
                   key=lambda i: drawn[i].coordinate.slot)
    outcome_by_index: dict[int, Outcome] = {}
    for i in order:
        sample = drawn[i]
        if sample.class_kind != LIVE:
            outcome_by_index[i] = Outcome.NO_EFFECT
            continue
        interval = partition.locate(sample.coordinate)
        key = (domain.class_key(interval)
               + (domain.experiment_index(interval, sample.coordinate),))
        if key not in cache:
            if key in journaled:
                cache[key] = journaled[key]
                report.resumed += 1
            else:
                composed = (composer.compose_experiment(
                    interval.injection_slot, key[0], key[2])
                    if composer is not None else None)
                if composed is not None:
                    cache[key] = composed[0]
                    handle.record_experiments(
                        [(key[0], key[1], key[2], composed[0].value)])
                    report.resumed += 1
                    report.composed_hits += 1
                else:
                    representative = domain.experiment_coordinate(
                        interval, key[2])
                    record = executor.run(representative)
                    cache[key] = record.outcome
                    if handle is not None:
                        handle.record_experiments(
                            [(key[0], key[1], key[2], cache[key].value)])
                        composer.store_experiment(
                            interval.injection_slot, key[0], key[2],
                            record.outcome, record.end_cycle, record.trap)
                    report.executed += 1
            if progress is not None:
                progress(len(cache), total_experiments)
        outcome_by_index[i] = cache[key]
    report.total_units = len(cache)
    report.convergence_hits = executor.convergence_hits - hits_base
    report.slice_hits = executor.slice_hits - slice_base
    report.scalar_tail_experiments = (executor.scalar_tail_experiments
                                      - tail_base)
    if handle is not None:
        handle.mark_complete()
        handle.close()
    results = [(drawn[i], outcome_by_index[i]) for i in range(len(drawn))]
    return SamplingResult(golden=golden, partition=partition,
                          samples=results, population=population,
                          experiments_conducted=len(cache), sampler=sampler,
                          domain=domain, execution=report)
