"""Experiment-outcome taxonomy (Section II-D of the paper).

The paper's campaigns distinguish eight experiment-outcome types, two of
which ("No Effect" and "Error Detected & Corrected") are benign, while
the remaining six are coalesced into a subsuming "Failure" type.  This
module defines the same taxonomy and the coalescing.

Classification inputs are purely observable behaviour: the serial output
compared against the golden run, clean halt vs. trap vs. timeout, and
the ``detect`` events a hardened program emitted.
"""

from __future__ import annotations

import enum


#: ``detect`` codes at or above this value announce an unrecoverable
#: error before the program stops itself (fail-stop).
PANIC_CODE = 0xF0
#: Conventional ``detect`` code for a corrected error.
CORRECTED_CODE = 0x01


class Outcome(enum.Enum):
    """The eight experiment-outcome types."""

    #: Run indistinguishable from the golden run.
    NO_EFFECT = "no-effect"
    #: Output correct; the fault-tolerance mechanism reported a
    #: detected-and-corrected error. Benign: no visible effect outside.
    DETECTED_CORRECTED = "detected-corrected"
    #: Run completed but the output differs: silent data corruption.
    SDC = "sdc"
    #: Run stopped early with a strict prefix of the correct output.
    OUTPUT_TRUNCATED = "output-truncated"
    #: The CPU trapped (bad memory access, illegal pc, division by zero).
    CPU_EXCEPTION = "cpu-exception"
    #: The run exceeded its cycle budget.
    TIMEOUT = "timeout"
    #: The mechanism detected an uncorrectable error and stopped the
    #: program deliberately (announced via a panic-range ``detect``).
    DETECTED_FAIL_STOP = "detected-fail-stop"
    #: The mechanism reported a detection, but the output is still wrong.
    DETECTED_UNCORRECTED = "detected-uncorrected"

    @property
    def is_benign(self) -> bool:
        """True for the two outcome types with no externally visible effect."""
        return self in _BENIGN

    @property
    def is_failure(self) -> bool:
        return not self.is_benign


_BENIGN = frozenset({Outcome.NO_EFFECT, Outcome.DETECTED_CORRECTED})

#: The six outcome types coalesced into "Failure" in the paper's analysis.
FAILURE_OUTCOMES = tuple(o for o in Outcome if o.is_failure)
#: The two benign outcome types coalesced into "No Effect".
BENIGN_OUTCOMES = tuple(o for o in Outcome if o.is_benign)


def classify(*, golden_output: bytes, output: bytes, halted_cleanly: bool,
             trapped: bool, timed_out: bool,
             detections: tuple[tuple[int, int], ...] = ()) -> Outcome:
    """Classify one experiment run against the golden run.

    ``detections`` are the ``(cycle, code)`` events the run emitted; the
    golden run must emit none (asserted when recording it).
    """
    if timed_out:
        return Outcome.TIMEOUT
    if trapped:
        return Outcome.CPU_EXCEPTION
    if not halted_cleanly:
        raise ValueError(
            "run neither halted, trapped, nor timed out — cannot classify")
    if output == golden_output:
        if detections:
            return Outcome.DETECTED_CORRECTED
        return Outcome.NO_EFFECT
    # Output deviates: some failure mode.
    if any(code >= PANIC_CODE for _, code in detections):
        return Outcome.DETECTED_FAIL_STOP
    if detections:
        return Outcome.DETECTED_UNCORRECTED
    if golden_output.startswith(output) and len(output) < len(golden_output):
        return Outcome.OUTPUT_TRUNCATED
    return Outcome.SDC
