"""Golden-run recording.

A golden run executes the benchmark once, fault-free, with memory
tracing enabled.  It establishes:

* the correct serial output (the failure oracle),
* the runtime Δt in cycles and thus the fault space together with the
  program's RAM footprint Δm,
* the memory-access trace feeding def/use pruning,
* the checkpoint-digest ladder powering the campaign layer's
  convergence early-exit (see :class:`CheckpointLadder`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faultspace.defuse import DefUsePartition
from ..faultspace.model import FaultSpace
from ..isa.assembler import Program
from ..isa.cpu import Machine
from ..isa.errors import CPUException
from ..isa.tracing import MemoryTrace

#: Safety cap for golden runs of programs that fail to terminate.
DEFAULT_GOLDEN_CYCLE_LIMIT = 5_000_000

#: Ladder-size cap for the auto-tuned checkpoint stride: recording
#: starts *dense* (a rung every cycle) and doubles the stride
#: (decimating the digests already taken) whenever the ladder would
#: exceed this many checkpoints.  Density matters because a faulty run
#: that re-joins the golden trajectory usually does so with a small
#: cycle *shift* (a detect-and-correct path inserts a handful of extra
#: cycles): with a rung at every golden cycle, a digest check at any
#: faulty cycle can match regardless of the shift, whereas a sparse
#: ladder only catches shifts that are multiples of its stride.  The
#: cap keeps long programs bounded — ``Δt``-proportional stride, at
#: most ~16k digests (≈1 MiB) per golden run — at the cost of that
#: shift granularity.
MAX_CHECKPOINTS = 16384


class GoldenRunError(RuntimeError):
    """The fault-free run misbehaved (trap, timeout, or detections)."""


@dataclass(frozen=True)
class CheckpointLadder:
    """Golden state digests taken every ``stride`` cycles.

    ``digests[i]`` is the golden machine's
    :meth:`~repro.isa.cpu.Machine.state_digest` right after instruction
    ``(i + 1) * stride`` executed; checkpoints are only taken while the
    machine is still running, so every rung refers to a *live* golden
    state.

    Because the golden run terminates, no two of its live states can be
    identical — a repeated (ram, regs, pc, output-length) state would
    loop forever — so the digest → cycle mapping of :meth:`lookup` is
    injective and a faulty machine whose digest appears in it has
    provably re-joined the golden trajectory at that golden cycle.
    """

    stride: int
    digests: tuple[bytes, ...]

    def lookup(self) -> dict[bytes, int]:
        """``digest -> golden cycle`` table (build once per executor)."""
        return {digest: (i + 1) * self.stride
                for i, digest in enumerate(self.digests)}


@dataclass(frozen=True)
class GoldenRun:
    """The reference execution of one benchmark variant."""

    program: Program
    output: bytes
    cycles: int
    trace: MemoryTrace
    #: ROM index executed at each slot (``pc_trace[t]`` ran at slot
    #: ``t + 1``).  Recorded once during :func:`record_golden`; register
    #: def/use pruning derives its access events from it.  ``None`` only
    #: for golden runs built by hand or unpickled from older versions.
    pc_trace: tuple[int, ...] | None = None
    #: Checkpoint-digest ladder for the convergence early-exit.  ``None``
    #: for golden runs built by hand or unpickled from older versions
    #: (the class attribute supplies the default, so old pickles load
    #: cleanly); executors then simply run every post-injection tail to
    #: completion.
    checkpoints: CheckpointLadder | None = None

    @property
    def fault_space(self) -> FaultSpace:
        """The Δt × Δm fault space this run spans."""
        return FaultSpace(cycles=self.cycles,
                          ram_bytes=self.program.ram_size)

    def partition(self) -> DefUsePartition:
        """Def/use-prune the fault space (validated before returning)."""
        partition = DefUsePartition.from_trace(self.trace, self.fault_space)
        partition.validate()
        return partition

    def executed_pcs(self) -> list[int]:
        """The executed-pc trace, replaying the run only if not recorded.

        The replay fallback is cached (register-domain partitioning and
        the analysis layer both call this), so even a hand-built golden
        run re-executes at most once.  A fresh list is returned each
        call; callers may mutate it freely.
        """
        if self.pc_trace is not None:
            return list(self.pc_trace)
        cached = self.__dict__.get("_replayed_pcs")
        if cached is None:
            cached = tuple(_replay_pc_trace(self))
            # Frozen dataclass: write the cache through __dict__, which
            # also keeps it out of equality and repr.
            self.__dict__["_replayed_pcs"] = cached
        return list(cached)


def _replay_pc_trace(golden: GoldenRun) -> list[int]:
    """Re-execute a golden run to recover its pc trace.

    Fallback for :class:`GoldenRun` values that predate the recorded
    ``pc_trace`` field; :func:`record_golden` captures the trace in the
    original run, so this second execution is normally never needed.
    """
    machine = Machine(golden.program)
    pcs: list[int] = []
    while not machine.halted:
        pc = machine.pc
        before = machine.cycle
        machine.step()
        if machine.cycle > before:
            pcs.append(pc)
    if len(pcs) != golden.cycles:  # pragma: no cover - consistency check
        raise AssertionError(
            f"pc trace length {len(pcs)} != golden cycles {golden.cycles}")
    return pcs


def record_golden(program: Program, *,
                  cycle_limit: int = DEFAULT_GOLDEN_CYCLE_LIMIT,
                  checkpoint_stride: int | None = None) -> GoldenRun:
    """Run ``program`` fault-free and record its golden run.

    ``checkpoint_stride`` fixes the digest-ladder stride; the default
    auto-tunes it to the (not yet known) runtime Δt by starting dense
    (a rung every cycle) and doubling — decimating the rungs already
    taken — whenever the ladder outgrows :data:`MAX_CHECKPOINTS`.  A
    stride of ``0`` disables the ladder.

    Raises :class:`GoldenRunError` if the fault-free run traps, exceeds
    ``cycle_limit``, or emits ``detect`` events (a hardened benchmark
    whose checker fires without faults is broken).
    """
    if checkpoint_stride is not None and checkpoint_stride < 0:
        raise ValueError(
            f"checkpoint_stride must be >= 0, got {checkpoint_stride}")
    auto_stride = checkpoint_stride is None
    stride = 1 if auto_stride else checkpoint_stride
    digests: list[bytes] = []
    tracer = MemoryTrace()
    machine = Machine(program, tracer=tracer)
    # Step (rather than Machine.run) so the executed-pc trace and the
    # checkpoint ladder are captured in the same pass that records the
    # memory trace; register def/use pruning then needs no second
    # execution.  Golden runs happen once per campaign, so the per-step
    # dispatch cost is noise next to the campaign itself.
    pcs: list[int] = []
    try:
        while not machine.halted and machine.cycle < cycle_limit:
            pc = machine.pc
            before = machine.cycle
            machine.step()
            if machine.cycle > before:
                pcs.append(pc)
                if (stride and not machine.halted
                        and machine.cycle % stride == 0):
                    digests.append(machine.state_digest())
                    if auto_stride and len(digests) > MAX_CHECKPOINTS:
                        # Double the stride, keeping every second rung
                        # (those at multiples of the doubled stride).
                        digests = digests[1::2]
                        stride *= 2
    except CPUException as exc:
        raise GoldenRunError(
            f"golden run of {program.name!r} trapped: {exc}") from exc
    if not machine.halted:
        raise GoldenRunError(
            f"golden run of {program.name!r} exceeded {cycle_limit} cycles")
    if machine.detections:
        raise GoldenRunError(
            f"golden run of {program.name!r} reported fault detections "
            f"{machine.detections[:3]}... without any injected fault")
    if machine.cycle == 0:
        raise GoldenRunError(
            f"golden run of {program.name!r} executed no instructions")
    tracer.finish(machine.cycle)
    ladder = (CheckpointLadder(stride=stride, digests=tuple(digests))
              if stride else None)
    return GoldenRun(program=program, output=bytes(machine.serial),
                     cycles=machine.cycle, trace=tracer,
                     pc_trace=tuple(pcs), checkpoints=ladder)
