"""Golden-run recording.

A golden run executes the benchmark once, fault-free, with memory
tracing enabled.  It establishes:

* the correct serial output (the failure oracle),
* the runtime Δt in cycles and thus the fault space together with the
  program's RAM footprint Δm,
* the memory-access trace feeding def/use pruning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faultspace.defuse import DefUsePartition
from ..faultspace.model import FaultSpace
from ..isa.assembler import Program
from ..isa.cpu import Machine
from ..isa.errors import CPUException
from ..isa.tracing import MemoryTrace

#: Safety cap for golden runs of programs that fail to terminate.
DEFAULT_GOLDEN_CYCLE_LIMIT = 5_000_000


class GoldenRunError(RuntimeError):
    """The fault-free run misbehaved (trap, timeout, or detections)."""


@dataclass(frozen=True)
class GoldenRun:
    """The reference execution of one benchmark variant."""

    program: Program
    output: bytes
    cycles: int
    trace: MemoryTrace
    #: ROM index executed at each slot (``pc_trace[t]`` ran at slot
    #: ``t + 1``).  Recorded once during :func:`record_golden`; register
    #: def/use pruning derives its access events from it.  ``None`` only
    #: for golden runs built by hand or unpickled from older versions.
    pc_trace: tuple[int, ...] | None = None

    @property
    def fault_space(self) -> FaultSpace:
        """The Δt × Δm fault space this run spans."""
        return FaultSpace(cycles=self.cycles,
                          ram_bytes=self.program.ram_size)

    def partition(self) -> DefUsePartition:
        """Def/use-prune the fault space (validated before returning)."""
        partition = DefUsePartition.from_trace(self.trace, self.fault_space)
        partition.validate()
        return partition

    def executed_pcs(self) -> list[int]:
        """The executed-pc trace, replaying the run only if not recorded."""
        if self.pc_trace is not None:
            return list(self.pc_trace)
        return _replay_pc_trace(self)


def _replay_pc_trace(golden: GoldenRun) -> list[int]:
    """Re-execute a golden run to recover its pc trace.

    Fallback for :class:`GoldenRun` values that predate the recorded
    ``pc_trace`` field; :func:`record_golden` captures the trace in the
    original run, so this second execution is normally never needed.
    """
    machine = Machine(golden.program)
    pcs: list[int] = []
    while not machine.halted:
        pc = machine.pc
        before = machine.cycle
        machine.step()
        if machine.cycle > before:
            pcs.append(pc)
    if len(pcs) != golden.cycles:  # pragma: no cover - consistency check
        raise AssertionError(
            f"pc trace length {len(pcs)} != golden cycles {golden.cycles}")
    return pcs


def record_golden(program: Program, *,
                  cycle_limit: int = DEFAULT_GOLDEN_CYCLE_LIMIT) -> GoldenRun:
    """Run ``program`` fault-free and record its golden run.

    Raises :class:`GoldenRunError` if the fault-free run traps, exceeds
    ``cycle_limit``, or emits ``detect`` events (a hardened benchmark
    whose checker fires without faults is broken).
    """
    tracer = MemoryTrace()
    machine = Machine(program, tracer=tracer)
    # Step (rather than Machine.run) so the executed-pc trace is
    # captured in the same pass that records the memory trace; register
    # def/use pruning then needs no second execution.  Golden runs
    # happen once per campaign, so the per-step dispatch cost is noise
    # next to the campaign itself.
    pcs: list[int] = []
    try:
        while not machine.halted and machine.cycle < cycle_limit:
            pc = machine.pc
            before = machine.cycle
            machine.step()
            if machine.cycle > before:
                pcs.append(pc)
    except CPUException as exc:
        raise GoldenRunError(
            f"golden run of {program.name!r} trapped: {exc}") from exc
    if not machine.halted:
        raise GoldenRunError(
            f"golden run of {program.name!r} exceeded {cycle_limit} cycles")
    if machine.detections:
        raise GoldenRunError(
            f"golden run of {program.name!r} reported fault detections "
            f"{machine.detections[:3]}... without any injected fault")
    if machine.cycle == 0:
        raise GoldenRunError(
            f"golden run of {program.name!r} executed no instructions")
    tracer.finish(machine.cycle)
    return GoldenRun(program=program, output=bytes(machine.serial),
                     cycles=machine.cycle, trace=tracer,
                     pc_trace=tuple(pcs))
