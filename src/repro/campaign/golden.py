"""Golden-run recording.

A golden run executes the benchmark once, fault-free, with memory
tracing enabled.  It establishes:

* the correct serial output (the failure oracle),
* the runtime Δt in cycles and thus the fault space together with the
  program's RAM footprint Δm,
* the memory-access trace feeding def/use pruning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faultspace.defuse import DefUsePartition
from ..faultspace.model import FaultSpace
from ..isa.assembler import Program
from ..isa.cpu import Machine
from ..isa.errors import CPUException
from ..isa.tracing import MemoryTrace

#: Safety cap for golden runs of programs that fail to terminate.
DEFAULT_GOLDEN_CYCLE_LIMIT = 5_000_000


class GoldenRunError(RuntimeError):
    """The fault-free run misbehaved (trap, timeout, or detections)."""


@dataclass(frozen=True)
class GoldenRun:
    """The reference execution of one benchmark variant."""

    program: Program
    output: bytes
    cycles: int
    trace: MemoryTrace

    @property
    def fault_space(self) -> FaultSpace:
        """The Δt × Δm fault space this run spans."""
        return FaultSpace(cycles=self.cycles,
                          ram_bytes=self.program.ram_size)

    def partition(self) -> DefUsePartition:
        """Def/use-prune the fault space (validated before returning)."""
        partition = DefUsePartition.from_trace(self.trace, self.fault_space)
        partition.validate()
        return partition


def record_golden(program: Program, *,
                  cycle_limit: int = DEFAULT_GOLDEN_CYCLE_LIMIT) -> GoldenRun:
    """Run ``program`` fault-free and record its golden run.

    Raises :class:`GoldenRunError` if the fault-free run traps, exceeds
    ``cycle_limit``, or emits ``detect`` events (a hardened benchmark
    whose checker fires without faults is broken).
    """
    tracer = MemoryTrace()
    machine = Machine(program, tracer=tracer)
    try:
        machine.run(cycle_limit)
    except CPUException as exc:
        raise GoldenRunError(
            f"golden run of {program.name!r} trapped: {exc}") from exc
    if not machine.halted:
        raise GoldenRunError(
            f"golden run of {program.name!r} exceeded {cycle_limit} cycles")
    if machine.detections:
        raise GoldenRunError(
            f"golden run of {program.name!r} reported fault detections "
            f"{machine.detections[:3]}... without any injected fault")
    if machine.cycle == 0:
        raise GoldenRunError(
            f"golden run of {program.name!r} executed no instructions")
    tracer.finish(machine.cycle)
    return GoldenRun(program=program, output=bytes(machine.serial),
                     cycles=machine.cycle, trace=tracer)
