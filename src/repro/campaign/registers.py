"""Register-file campaign compatibility layer (Section VI-B).

The register fault model is a first-class
:class:`~repro.faultspace.domain.FaultDomain` — every campaign style,
sampler, the parallel sharder, persistence and metrics accept
``domain="register"`` directly::

    from repro.campaign import record_golden, run_full_scan

    scan = run_full_scan(golden, domain="register", jobs=4)
    scan.weighted_coverage()

This module only keeps the original register-specific names as thin
aliases over the unified stack, so pre-domain callers keep working
unchanged.
"""

from __future__ import annotations

from ..faultspace.domain import REGISTER
from ..faultspace.registers import RegisterFaultCoordinate, RegisterPartition
from .experiment import ExperimentExecutor, ExperimentRecord
from .golden import GoldenRun
from .runner import CampaignResult, run_brute_force, run_full_scan

#: Register campaigns now produce plain :class:`CampaignResult` values.
RegisterCampaignResult = CampaignResult


def collect_pc_trace(golden: GoldenRun) -> list[int]:
    """The golden run's executed ROM index per slot.

    The trace is recorded once during :func:`~.golden.record_golden`;
    only hand-built golden runs fall back to a replay.
    """
    return golden.executed_pcs()


def register_partition(golden: GoldenRun) -> RegisterPartition:
    """Def/use-prune the register fault space of a golden run."""
    return REGISTER.build_partition(golden)


class RegisterExperimentExecutor(ExperimentExecutor):
    """Executor pinned to the register domain.

    Equivalent to ``ExperimentExecutor(golden, domain="register")``;
    kept because it additionally type-checks coordinates, which guards
    hand-rolled experiment loops against mixing up fault models.
    """

    def __init__(self, golden: GoldenRun, **kwargs):
        kwargs["domain"] = REGISTER
        super().__init__(golden, **kwargs)

    def run(self, coordinate) -> ExperimentRecord:
        if not isinstance(coordinate, RegisterFaultCoordinate):
            raise TypeError(
                "RegisterExperimentExecutor needs register coordinates")
        return super().run(coordinate)


def run_register_scan(golden: GoldenRun, *,
                      partition: RegisterPartition | None = None,
                      executor: ExperimentExecutor | None = None,
                      jobs: int | None = None) -> CampaignResult:
    """Def/use-pruned full scan over the register fault space."""
    return run_full_scan(golden, domain=REGISTER, partition=partition,
                         executor=executor, jobs=jobs)


def run_register_brute_force(golden: GoldenRun, *,
                             jobs: int | None = None) -> dict:
    """One real experiment per register fault-space coordinate.

    Test ground truth only — 480 experiments per cycle.
    """
    return run_brute_force(golden, domain=REGISTER, jobs=jobs).outcomes
