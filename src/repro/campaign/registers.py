"""Register-file fault-injection campaigns (Section VI-B generalization).

Mirrors the memory campaigns: a def/use-pruned full scan over the
register fault space, plus a brute-force scan as test ground truth.
All metrics (weighted counts, coverage, failure counts) carry over —
the point of Section VI-B is that the pitfalls and their avoidance are
not specific to the memory fault model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..faultspace.registers import (
    LIVE,
    RegisterFaultCoordinate,
    RegisterFaultSpace,
    RegisterInterval,
    RegisterPartition,
)
from ..isa.cpu import Machine
from .experiment import ExperimentExecutor, ExperimentRecord
from .golden import GoldenRun
from .outcomes import Outcome


def collect_pc_trace(golden: GoldenRun) -> list[int]:
    """Replay the golden run and record the executed ROM index per slot."""
    machine = Machine(golden.program)
    pcs: list[int] = []
    while not machine.halted:
        pc = machine.pc
        before = machine.cycle
        machine.step()
        if machine.cycle > before:
            pcs.append(pc)
    if len(pcs) != golden.cycles:  # pragma: no cover - consistency check
        raise AssertionError(
            f"pc trace length {len(pcs)} != golden cycles {golden.cycles}")
    return pcs


def register_partition(golden: GoldenRun) -> RegisterPartition:
    """Def/use-prune the register fault space of a golden run."""
    partition = RegisterPartition.from_pc_trace(
        golden.program.rom, collect_pc_trace(golden))
    partition.validate()
    return partition


class RegisterExperimentExecutor(ExperimentExecutor):
    """Experiment executor that injects into the register file."""

    def run(self, coordinate) -> ExperimentRecord:
        if not isinstance(coordinate, RegisterFaultCoordinate):
            raise TypeError(
                "RegisterExperimentExecutor needs register coordinates")
        return super().run(coordinate)

    def _inject(self, machine: Machine, coordinate) -> None:
        machine.flip_register_bit(coordinate.reg, coordinate.bit)


@dataclass
class RegisterCampaignResult:
    """Outcome of a def/use-pruned register fault-space scan."""

    golden: GoldenRun
    partition: RegisterPartition
    class_outcomes: dict[tuple[int, int], tuple[Outcome, ...]]
    records: list[ExperimentRecord] = field(default_factory=list)

    @property
    def fault_space(self) -> RegisterFaultSpace:
        return self.partition.fault_space

    @property
    def fault_space_size(self) -> int:
        return self.fault_space.size

    @property
    def experiments_conducted(self) -> int:
        # Derived from the stored outcome tuples (32 per register class)
        # rather than hardcoding the word width.
        return sum(len(outcomes)
                   for outcomes in self.class_outcomes.values())

    def outcome_of(self, coordinate: RegisterFaultCoordinate) -> Outcome:
        interval = self.partition.locate(coordinate)
        if interval.kind != LIVE:
            return Outcome.NO_EFFECT
        key = (interval.reg, interval.first_slot)
        return self.class_outcomes[key][coordinate.bit]

    def weighted_counts(self) -> Counter:
        counts: Counter = Counter()
        for interval in self.partition.live_classes():
            outcomes = self.class_outcomes[(interval.reg,
                                            interval.first_slot)]
            for outcome in outcomes:
                counts[outcome] += interval.length
        counts[Outcome.NO_EFFECT] += self.partition.known_no_effect_weight
        return counts

    def weighted_failure_count(self) -> int:
        return sum(count for outcome, count in self.weighted_counts()
                   .items() if outcome.is_failure)

    def weighted_coverage(self) -> float:
        return 1.0 - self.weighted_failure_count() / self.fault_space_size


def run_register_scan(golden: GoldenRun, *,
                      partition: RegisterPartition | None = None,
                      executor: RegisterExperimentExecutor | None = None
                      ) -> RegisterCampaignResult:
    """Def/use-pruned full scan over the register fault space."""
    if partition is None:
        partition = register_partition(golden)
    if executor is None:
        executor = RegisterExperimentExecutor(golden)
    class_outcomes: dict[tuple[int, int], tuple[Outcome, ...]] = {}
    for interval in partition.live_classes():
        outcomes = tuple(executor.run(coord).outcome
                         for coord in interval.experiments())
        class_outcomes[(interval.reg, interval.first_slot)] = outcomes
    return RegisterCampaignResult(golden=golden, partition=partition,
                                  class_outcomes=class_outcomes)


def run_register_brute_force(golden: GoldenRun) -> dict:
    """One real experiment per register fault-space coordinate.

    Test ground truth only — 480 experiments per cycle.
    """
    executor = RegisterExperimentExecutor(golden)
    space = RegisterFaultSpace(cycles=golden.cycles)
    return {coord: executor.run(coord).outcome
            for coord in space.iter_coordinates()}
