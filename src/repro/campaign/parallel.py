"""Parallel campaign engine: multi-process FI with slot-sharded snapshot reuse.

Fault-injection experiments are embarrassingly parallel — each one is a
deterministic function of the golden run and a fault coordinate — so
campaigns shard across a :mod:`multiprocessing` worker pool.  Two design
rules keep the parallel engine exactly as exact as the serial one:

* **One executor per worker.**  :class:`~.experiment.ExperimentExecutor`
  is documented as not thread-safe; every worker process builds its own
  from a pickled :class:`~.experiment.ExecutorConfig` in the pool
  initializer.
* **Contiguous slot shards.**  The executor's snapshot fast-forward
  (:meth:`ExperimentExecutor._state_at`) only pays off when experiments
  arrive in ascending injection-slot order.  Work is therefore split into
  *contiguous slot ranges*: worker *k* fast-forwards its pristine machine
  once to the start of its range and then advances monotonically, instead
  of rewinding on every interleaved experiment that round-robin dispatch
  would cause.

Shards are balanced by estimated cost, not class count: an experiment
injected at slot *t* replays roughly ``Δt − t + 1`` post-injection cycles,
so early-slot classes are far more expensive than late ones (see
:func:`class_cost`).

The engine is generic over :class:`~repro.faultspace.domain.FaultDomain`:
the domain provides the partition builder, the class keys, the per-class
bit width used by the cost model, and the injector the per-worker
executors apply.  Memory and register campaigns therefore share every
line of this module.

Results are merged in shard order, which reproduces the serial runner's
iteration order — ``class_outcomes`` dictionaries, record lists, sample
sequences and all derived counts are bit-for-bit identical to the serial
path regardless of worker count or OS scheduling.

Pickling constraints (fork *and* spawn start methods are supported):
everything crossing the process boundary must be picklable.  That is
``GoldenRun`` (thus ``Program``, ``Instruction``, ``MemoryTrace``),
``ExecutorConfig`` (which names its fault domain; workers resolve the
singleton), the interval and coordinate types of both domains and
``Outcome`` — all plain dataclasses or enums.  Executors and ``Machine``
instances never cross the boundary; they are rebuilt per worker.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from typing import Callable, Iterator, Sequence

from ..faultspace.defuse import LIVE
from ..faultspace.domain import FaultDomain, MEMORY, get_domain
from .experiment import ExecutorConfig, ExperimentExecutor, ExperimentRecord
from .golden import GoldenRun
from .outcomes import Outcome

ProgressCallback = Callable[[int, int], None]


def resolve_jobs(jobs: int | None) -> int | None:
    """Normalize a ``jobs`` parameter.

    ``None`` means "serial path" and is returned unchanged; ``0`` means
    "one worker per CPU"; any positive value is taken literally.
    """
    if jobs is None:
        return None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


# -- load balancing -----------------------------------------------------------


def class_cost(interval, total_cycles: int, bits: int = 8) -> int:
    """Estimated post-injection cycle cost of one live class.

    Each of the class's ``bits`` experiments (the domain's per-class
    width: 8 for memory bytes, 32 for registers) resumes at the
    representative injection slot and replays up to the remaining
    runtime, so the dominant term is ``bits × (Δt − slot + 1)``.  The
    interval length is added on top for the snapshot fast-forward that
    walks the pristine machine across the class's slot span.  Balancing
    shards by this estimate instead of class count keeps workers evenly
    loaded even though early-slot classes are many times more expensive
    than late-slot ones.
    """
    remaining = total_cycles - interval.injection_slot + 1
    return bits * max(1, remaining) + interval.length


def shard_by_cost(items: Sequence, costs: Sequence[int],
                  jobs: int) -> list[list]:
    """Split ``items`` into at most ``jobs`` contiguous cost-balanced runs.

    ``items`` must already be in execution order (ascending injection
    slot); contiguity is what preserves the per-worker snapshot
    fast-forward.  The *k*-th cut is placed where the cumulative cost
    first reaches ``k/jobs`` of the total.
    """
    items = list(items)
    if not items:
        return []
    jobs = min(jobs, len(items))
    if jobs <= 1:
        return [items]
    total = sum(costs)
    if total <= 0:
        total = len(items)
        costs = [1] * len(items)
    shards: list[list] = []
    current: list = []
    acc = 0
    for item, cost in zip(items, costs):
        current.append(item)
        acc += cost
        if len(shards) < jobs - 1 and acc * jobs >= (len(shards) + 1) * total:
            shards.append(current)
            current = []
    if current:
        shards.append(current)
    return shards


# -- worker side --------------------------------------------------------------

#: Per-worker executor, built once by :func:`_init_worker`.  Module-level
#: because pool workers can only share state through globals.
_WORKER_EXECUTOR: ExperimentExecutor | None = None


def _init_worker(golden: GoldenRun, config: ExecutorConfig) -> None:
    """Pool initializer: build this worker's private executor."""
    global _WORKER_EXECUTOR
    _WORKER_EXECUTOR = config.build(golden)


def _scan_shard(task):
    """Run one contiguous shard of live classes (full-scan worker)."""
    index, intervals, keep_records = task
    executor = _WORKER_EXECUTOR
    class_key = executor.domain.class_key
    pairs = []
    records: list[ExperimentRecord] = []
    for interval in intervals:
        results = [executor.run(coord) for coord in interval.experiments()]
        pairs.append((class_key(interval),
                      tuple(record.outcome for record in results)))
        if keep_records:
            records.extend(results)
    return index, pairs, records


def _brute_shard(task):
    """Run every raw coordinate in one contiguous slot range."""
    index, slot_lo, slot_hi = task
    executor = _WORKER_EXECUTOR
    domain = executor.domain
    space = domain.fault_space(executor.golden)
    out = []
    for slot in range(slot_lo, slot_hi + 1):
        for coord in domain.slot_coordinates(space, slot):
            out.append((coord, executor.run(coord).outcome))
    return index, out


def _sampling_shard(task):
    """Run one shard of distinct (class, bit) representative experiments."""
    index, keyed = task
    executor = _WORKER_EXECUTOR
    return index, [(key, executor.run(coord).outcome)
                   for key, coord in keyed]


# -- driver -------------------------------------------------------------------


class ParallelCampaign:
    """Multi-process campaign driver over one golden run.

    Dispatches contiguous slot-range shards to a worker pool and merges
    the results into the same result types — and the same iteration
    order — as the serial runner.  ``jobs=1`` executes the sharded code
    path inline in the current process (useful for debugging and for
    equivalence tests without pool overhead); ``jobs=0`` uses one worker
    per CPU.  ``domain`` selects the fault model the campaign scans.
    """

    def __init__(self, golden: GoldenRun, jobs: int = 0, *,
                 executor_config: ExecutorConfig | None = None,
                 domain: FaultDomain | str = MEMORY):
        resolved = resolve_jobs(jobs)
        if resolved is None:
            raise ValueError("ParallelCampaign needs a concrete job count; "
                             "use the serial runner for jobs=None")
        self.golden = golden
        self.jobs = resolved
        self.domain = get_domain(domain)
        config = executor_config or ExecutorConfig()
        # The config crosses the process boundary; pin its domain to the
        # campaign's so every worker rebuilds the right injector.
        self.config = dataclasses.replace(config, domain=self.domain.name)

    # -- dispatch ------------------------------------------------------------

    def _map_shards(self, worker: Callable, tasks: list) -> Iterator:
        """Yield ``worker(task)`` results, unordered, from the pool.

        With one job (or one task) everything runs inline — no processes,
        no pickling — but through the exact same shard functions.
        """
        if not tasks:
            return
        processes = min(self.jobs, len(tasks))
        if processes <= 1:
            _init_worker(self.golden, self.config)
            for task in tasks:
                yield worker(task)
            return
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=processes, initializer=_init_worker,
                      initargs=(self.golden, self.config)) as pool:
            yield from pool.imap_unordered(worker, tasks)

    # -- campaign styles -----------------------------------------------------

    def run_full_scan(self, *, partition=None,
                      keep_records: bool = False,
                      progress: ProgressCallback | None = None):
        """Def/use-pruned full scan, sharded across the pool."""
        from .runner import CampaignResult

        golden = self.golden
        domain = self.domain
        if partition is None:
            partition = domain.build_partition(golden)
        live = partition.live_classes()  # sorted by injection slot
        shards = shard_by_cost(
            live, [class_cost(iv, golden.cycles, bits=domain.bits)
                   for iv in live], self.jobs)
        tasks = [(index, shard, keep_records)
                 for index, shard in enumerate(shards)]
        by_index: dict[int, tuple] = {}
        done = 0
        for index, pairs, records in self._map_shards(_scan_shard, tasks):
            by_index[index] = (pairs, records)
            done += len(pairs)
            if progress is not None:
                progress(done, len(live))
        class_outcomes: dict[tuple[int, int], tuple[Outcome, ...]] = {}
        records: list[ExperimentRecord] = []
        for index in range(len(tasks)):
            pairs, shard_records = by_index[index]
            for key, outcomes in pairs:
                class_outcomes[key] = outcomes
            records.extend(shard_records)
        return CampaignResult(golden=golden, partition=partition,
                              class_outcomes=class_outcomes, records=records,
                              domain=domain)

    def run_brute_force(self):
        """One experiment per raw coordinate, sharded by slot range."""
        from .runner import BruteForceResult

        golden = self.golden
        slots = list(range(1, golden.cycles + 1))
        costs = [golden.cycles - slot + 1 or 1 for slot in slots]
        shards = shard_by_cost(slots, costs, self.jobs)
        tasks = [(index, shard[0], shard[-1])
                 for index, shard in enumerate(shards)]
        by_index: dict[int, list] = {}
        for index, out in self._map_shards(_brute_shard, tasks):
            by_index[index] = out
        outcomes: dict = {}
        for index in range(len(tasks)):
            for coord, outcome in by_index[index]:
                outcomes[coord] = outcome
        return BruteForceResult(golden=golden, outcomes=outcomes,
                                domain=self.domain)

    def run_sampling(self, n_samples: int, *, seed: int = 0,
                     sampler: str = "uniform",
                     partition=None,
                     progress: ProgressCallback | None = None):
        """Sampled campaign: shard the distinct (class, bit) experiments.

        Samples are drawn (deterministically, from the seed) in the
        parent; only the distinct representative experiments go to the
        pool.  The resulting outcome cache is then replayed over the
        drawn samples, exactly like the serial runner's cache.
        """
        from .runner import SamplingResult, _draw_classified

        golden = self.golden
        domain = self.domain
        if partition is None:
            partition = domain.build_partition(golden)
        drawn, population = _draw_classified(golden, n_samples, seed,
                                             sampler, partition, domain)
        keyed: dict[tuple[int, int, int], object] = {}
        for sample in drawn:
            if sample.class_kind != LIVE:
                continue
            interval = partition.locate(sample.coordinate)
            key = domain.class_key(interval) + (sample.coordinate.bit,)
            if key not in keyed:
                keyed[key] = domain.coordinate(interval.injection_slot,
                                               domain.axis_of(interval),
                                               sample.coordinate.bit)
        items = sorted(keyed.items(),
                       key=lambda kv: (kv[1].slot,
                                       domain.coordinate_axis(kv[1]),
                                       kv[1].bit))
        costs = [max(1, golden.cycles - coord.slot + 1)
                 for _, coord in items]
        shards = shard_by_cost(items, costs, self.jobs)
        tasks = list(enumerate(shards))
        cache: dict[tuple[int, int, int], Outcome] = {}
        done = 0
        for _, results in self._map_shards(_sampling_shard, tasks):
            for key, outcome in results:
                cache[key] = outcome
            done += len(results)
            if progress is not None:
                progress(done, len(items))
        samples: list[tuple] = []
        for sample in drawn:
            if sample.class_kind != LIVE:
                samples.append((sample, Outcome.NO_EFFECT))
                continue
            interval = partition.locate(sample.coordinate)
            key = domain.class_key(interval) + (sample.coordinate.bit,)
            samples.append((sample, cache[key]))
        return SamplingResult(golden=golden, partition=partition,
                              samples=samples, population=population,
                              experiments_conducted=len(cache),
                              sampler=sampler, domain=domain)
