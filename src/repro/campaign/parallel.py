"""Parallel campaign engine: multi-process FI with slot-sharded snapshot reuse.

Fault-injection experiments are embarrassingly parallel — each one is a
deterministic function of the golden run and a fault coordinate — so
campaigns shard across a pool of worker processes.  Two design rules
keep the parallel engine exactly as exact as the serial one:

* **One executor per worker.**  :class:`~.experiment.ExperimentExecutor`
  is documented as not thread-safe; every worker process builds its own
  from a pickled :class:`~.experiment.ExecutorConfig` in the pool
  initializer.  The golden run — including its checkpoint-digest ladder
  for the convergence early-exit — crosses the process boundary exactly
  once per worker, via the initializer args, never per shard or per
  experiment; each worker expands the ladder into its digest → cycle
  lookup table locally.
* **Contiguous slot shards.**  The executor's snapshot fast-forward
  (:meth:`ExperimentExecutor._state_at`) only pays off when experiments
  arrive in ascending injection-slot order.  Work is therefore split into
  *contiguous slot ranges*: worker *k* fast-forwards its pristine machine
  once to the start of its range and then advances monotonically, instead
  of rewinding on every interleaved experiment that round-robin dispatch
  would cause.

Shards are balanced by estimated cost, not class count: an experiment
injected at slot *t* replays roughly ``Δt − t + 1`` post-injection cycles,
so early-slot classes are far more expensive than late ones (see
:func:`class_cost`).

The engine is generic over :class:`~repro.faultspace.domain.FaultDomain`:
the domain provides the partition builder, the class keys, the per-class
bit width used by the cost model, and the injector the per-worker
executors apply.  Memory and register campaigns therefore share every
line of this module.

Results are merged in canonical (serial) iteration order, which makes
``class_outcomes`` dictionaries, record lists, sample sequences and all
derived counts bit-for-bit identical to the serial path regardless of
worker count or OS scheduling.

Robustness (campaigns are long; machines are not reliable):

* **Wall-clock shard deadlines.**  Each shard gets a deadline derived
  from its estimated cycle cost (or :attr:`RetryPolicy.shard_timeout`).
  A shard that exceeds it — a wedged worker, a pathological injection
  the simulator's own cycle budget cannot catch — is killed and its
  experiments are *classified* :data:`~.outcomes.Outcome.TIMEOUT`
  instead of stalling the whole pool.
* **Retry with backoff.**  If a worker process dies (OOM killer,
  segfault, ``kill -9``), the pool is rebuilt and the unfinished shards
  are resubmitted with exponential backoff, up to
  :attr:`RetryPolicy.max_retries` attempts per shard.
* **Graceful degradation.**  Shards that exhaust their retry budget are
  abandoned; the campaign returns a partial result whose
  ``result.execution`` report lists the missing work, rather than
  raising away everything that did complete.
* **Heartbeat progress.**  During long waits the existing ``progress``
  callback is re-invoked with unchanged counts at
  :attr:`RetryPolicy.heartbeat` intervals, so callers can tell a slow
  campaign from a dead one.
* **Journaling.**  ``journal=`` / ``resume=`` work exactly as in the
  serial runner (see :mod:`repro.campaign.journal`): the parent journals
  each shard's results as it arrives, so a crash of the *driver* loses
  at most the shards in flight.

Failure injection into the engine itself — needed to test the above
deterministically — is provided by the ``REPRO_CHAOS`` environment
variable (see :func:`_chaos`); it only ever fires inside pool worker
processes.

Pickling constraints (fork *and* spawn start methods are supported):
everything crossing the process boundary must be picklable.  That is
``GoldenRun`` (thus ``Program``, ``Instruction``, ``MemoryTrace``),
``ExecutorConfig`` (which names its fault domain; workers resolve the
singleton), the interval and coordinate types of both domains and
``Outcome`` — all plain dataclasses or enums.  Executors and ``Machine``
instances never cross the boundary; they are rebuilt per worker.
"""

from __future__ import annotations

import concurrent.futures as cfutures
import dataclasses
import json
import multiprocessing
import os
import random
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from ..faultspace.defuse import LIVE
from ..faultspace.domain import FaultDomain, MEMORY, get_domain
from .compose import build_composer, compose_into_completed
from .experiment import ExecutorConfig, ExperimentExecutor, ExperimentRecord
from .golden import GoldenRun
from .journal import ExecutionReport, open_campaign
from .outcomes import Outcome

ProgressCallback = Callable[[int, int], None]


def resolve_jobs(jobs: int | None) -> int | None:
    """Normalize a ``jobs`` parameter.

    ``None`` means "serial path" and is returned unchanged; ``0`` means
    "one worker per CPU"; any positive value is taken literally.
    """
    if jobs is None:
        return None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Timeout, retry and heartbeat policy for the parallel engine.

    The default shard deadline is *derived from the golden run*: a shard
    estimated at ``c`` post-injection cycles is allowed
    ``c / cycles_per_second`` wall-clock seconds (floored at
    :attr:`min_shard_timeout` so tiny test programs are never starved).
    ``shard_timeout`` overrides the derivation with a fixed number of
    seconds — campaign results must *not* depend on the policy, only on
    whether work finished at all, which is why expired shards are
    classified as timeouts rather than re-executed.
    """

    #: Resubmissions allowed per shard after its worker process died.
    max_retries: int = 2
    #: Initial delay before resubmitting after a pool break, seconds.
    backoff: float = 0.25
    #: Multiplier applied to the delay after each successive break.
    backoff_factor: float = 2.0
    #: Random jitter fraction added to each retry delay (a delay of
    #: ``d`` sleeps ``d * (1 + U[0, backoff_jitter])``), so campaigns
    #: sharing a machine do not resubmit in lockstep after a common
    #: cause (OOM sweep, suspend/resume) broke all their pools at once.
    backoff_jitter: float = 0.25
    #: Fixed per-shard wall-clock deadline in seconds; ``None`` derives
    #: it from the shard's estimated cycle cost.
    shard_timeout: float | None = None
    #: Simulated cycles per wall-clock second assumed by the derivation.
    cycles_per_second: float = 50_000.0
    #: Floor for derived deadlines, seconds.
    min_shard_timeout: float = 5.0
    #: How often the dispatcher wakes to check deadlines, seconds.
    poll_interval: float = 0.05
    #: Interval between heartbeat re-emissions of ``progress``, seconds.
    heartbeat: float = 5.0

    def deadline_for(self, cost_cycles: int) -> float:
        """Wall-clock seconds granted to a shard of ``cost_cycles``."""
        if self.shard_timeout is not None:
            return self.shard_timeout
        return max(self.min_shard_timeout,
                   cost_cycles / self.cycles_per_second)


# -- load balancing -----------------------------------------------------------


def class_cost(interval, total_cycles: int, bits: int = 8) -> int:
    """Estimated post-injection cycle cost of one live class.

    Each of the class's ``bits`` experiments (the domain's per-class
    width: 8 for memory bytes, 32 for registers) resumes at the
    representative injection slot and replays up to the remaining
    runtime, so the dominant term is ``bits × (Δt − slot + 1)``.  The
    interval length is added on top for the snapshot fast-forward that
    walks the pristine machine across the class's slot span.  Balancing
    shards by this estimate instead of class count keeps workers evenly
    loaded even though early-slot classes are many times more expensive
    than late-slot ones.
    """
    remaining = total_cycles - interval.injection_slot + 1
    return bits * max(1, remaining) + interval.length


def shard_by_cost(items: Sequence, costs: Sequence[int],
                  jobs: int) -> list[list]:
    """Split ``items`` into at most ``jobs`` contiguous cost-balanced runs.

    ``items`` must already be in execution order (ascending injection
    slot); contiguity is what preserves the per-worker snapshot
    fast-forward.  The *k*-th cut is placed where the cumulative cost
    first reaches ``k/jobs`` of the total.
    """
    items = list(items)
    if not items:
        return []
    jobs = min(jobs, len(items))
    if jobs <= 1:
        return [items]
    total = sum(costs)
    if total <= 0:
        total = len(items)
        costs = [1] * len(items)
    shards: list[list] = []
    current: list = []
    acc = 0
    for item, cost in zip(items, costs):
        current.append(item)
        acc += cost
        if len(shards) < jobs - 1 and acc * jobs >= (len(shards) + 1) * total:
            shards.append(current)
            current = []
    if current:
        shards.append(current)
    return shards


#: Estimated total post-injection cycles below which a campaign counts
#: as *small*: per-lease protocol round-trips and idle re-poll waits
#: dominate the simulated work (ROADMAP's 0.18× single-worker dist
#: overhead), so shard planning collapses the lease granularity
#: instead of optimizing for rebalance-after-node-loss.
SMALL_CAMPAIGN_CYCLES = 1_000_000


def tune_shard_count(total_cost_cycles: int, requested: int,
                     workers: int | None = None) -> int:
    """Lease-granularity heuristic for small campaigns.

    Fine shards only pay off when there is enough work to rebalance
    after a worker is lost; on a campaign whose estimated cost is below
    :data:`SMALL_CAMPAIGN_CYCLES` they just multiply lease round-trips.
    Collapsing to one shard per expected worker removes those
    round-trips, and — because no extra pending shards exist to hand
    out — the lease board never needs to down-tune its re-poll wait
    below the default heartbeat interval for waiting workers.

    ``workers`` is the expected worker count (``None`` means unknown,
    e.g. a hand-started ``repro coordinator``: the requested shard
    count is kept untouched).  Deterministic, so a coordinator restart
    with the same arguments re-derives the same plan and journaled
    per-shard lease state stays valid.
    """
    if workers is None or total_cost_cycles >= SMALL_CAMPAIGN_CYCLES:
        return requested
    return max(1, min(requested, workers))


def plan_class_shards(intervals: Sequence, total_cycles: int, *,
                      bits: int, parts: int) -> tuple[list, list[int]]:
    """Plan contiguous, cost-balanced shards of live classes.

    The single shard-planning step shared by every engine that
    distributes a full scan: the in-process pool
    (:class:`ParallelCampaign`) and the multi-host coordinator
    (:mod:`repro.campaign.dist`) both split the same slot-sorted class
    list with the same cost model, so a campaign journaled under one
    engine resumes under any other and the distributed fabric inherits
    the pool's load balance.  Returns ``(shards, costs)`` where each
    shard is a list of intervals and ``costs[i]`` is shard *i*'s summed
    cycle estimate (the input to
    :meth:`RetryPolicy.deadline_for`).
    """
    costs = [class_cost(interval, total_cycles, bits=bits)
             for interval in intervals]
    shards = shard_by_cost(intervals, costs, parts)
    shard_costs = [sum(class_cost(interval, total_cycles, bits=bits)
                       for interval in shard) for shard in shards]
    return shards, shard_costs


# -- worker side --------------------------------------------------------------

#: Per-worker executor, built once by :func:`_init_worker`.  Module-level
#: because pool workers can only share state through globals.
_WORKER_EXECUTOR: ExperimentExecutor | None = None


def _init_worker(golden: GoldenRun, config: ExecutorConfig) -> None:
    """Pool initializer: build this worker's private executor."""
    global _WORKER_EXECUTOR
    _WORKER_EXECUTOR = config.build(golden)


def _chaos(index: int, attempt: int) -> None:
    """Deterministic failure injection into the engine itself (tests only).

    Activated by the ``REPRO_CHAOS`` environment variable holding JSON::

        {"die":  [[shard, attempt], ...],   # os._exit(13), simulating a
                                            # SIGKILLed / OOM-killed worker
         "hang": [[shard, attempt], ...],   # sleep, simulating a wedged one
         "die_delay": 0.0, "hang_seconds": 600.0}

    Keyed by ``(shard index, attempt number)`` so a shard can be made to
    die on its first attempt and succeed on retry.  Only ever fires
    inside pool worker processes — the inline (``jobs=1``) path and the
    parent are immune, so chaos cannot take down the test process.
    """
    spec = os.environ.get("REPRO_CHAOS")
    if not spec or multiprocessing.parent_process() is None:
        return
    data = json.loads(spec)
    if [index, attempt] in data.get("die", []):
        time.sleep(data.get("die_delay", 0.0))
        os._exit(13)
    if [index, attempt] in data.get("hang", []):
        time.sleep(data.get("hang_seconds", 600.0))


def _scan_shard(task):
    """Run one contiguous shard of live classes (full-scan worker).

    The trailing elements of the result are the shard's convergence-hit,
    slice-hit and scalar-tail counts, reported as deltas because the
    worker's executor (and its counters) persists across the shards the
    pool hands this process.
    """
    index, attempt, payload = task
    _chaos(index, attempt)
    intervals, keep_records = payload
    executor = _WORKER_EXECUTOR
    hits_base = executor.convergence_hits
    slice_base = executor.slice_hits
    tail_base = executor.scalar_tail_experiments
    class_key = executor.domain.class_key
    pairs = []
    records: list[ExperimentRecord] = []
    start = 0
    while start < len(intervals):
        # Same-slot runs of classes go to the executor together so a
        # batch engine can fuse them into lockstep lanes; the scalar
        # executor's run_many just iterates, preserving old behaviour.
        end = start + 1
        slot = intervals[start].injection_slot
        while (end < len(intervals)
               and intervals[end].injection_slot == slot):
            end += 1
        group = intervals[start:end]
        results = executor.run_many(
            [coord for member in group for coord in member.experiments()])
        consumed = 0
        for member in group:
            width = len(member.experiments())
            member_records = results[consumed:consumed + width]
            consumed += width
            pairs.append((class_key(member),
                          tuple(record.outcome
                                for record in member_records)))
            if keep_records:
                records.extend(member_records)
        start = end
    return (pairs, records, executor.convergence_hits - hits_base,
            executor.slice_hits - slice_base,
            executor.scalar_tail_experiments - tail_base)


def _brute_shard(task):
    """Run every raw coordinate of the shard's injection slots.

    The slot list is explicit (not a contiguous range) because a resumed
    campaign shards only the *unjournaled* slots, which may have gaps;
    ascending order still preserves the snapshot fast-forward.
    """
    index, attempt, slots = task
    _chaos(index, attempt)
    executor = _WORKER_EXECUTOR
    hits_base = executor.convergence_hits
    slice_base = executor.slice_hits
    tail_base = executor.scalar_tail_experiments
    domain = executor.domain
    space = domain.fault_space(executor.golden)
    out = []
    for slot in slots:
        coords = list(domain.slot_coordinates(space, slot))
        out.append((slot, [(domain.coordinate_axis(coord), coord.bit,
                            record.outcome)
                           for coord, record
                           in zip(coords, executor.run_many(coords))]))
    return (out, executor.convergence_hits - hits_base,
            executor.slice_hits - slice_base,
            executor.scalar_tail_experiments - tail_base)


def _sampling_shard(task):
    """Run one shard of distinct (class, bit) representative experiments.

    Rows carry the full ``(key, outcome, end_cycle, trap)`` record — the
    sampling result itself only needs the outcome, but the section store
    composes these rows into *full-scan* campaigns later, and those need
    end cycles and traps bit-for-bit.
    """
    index, attempt, keyed = task
    _chaos(index, attempt)
    executor = _WORKER_EXECUTOR
    hits_base = executor.convergence_hits
    slice_base = executor.slice_hits
    tail_base = executor.scalar_tail_experiments
    rows = []
    for key, coord in keyed:
        record = executor.run(coord)
        rows.append((key, record.outcome, record.end_cycle, record.trap))
    return (rows, executor.convergence_hits - hits_base,
            executor.slice_hits - slice_base,
            executor.scalar_tail_experiments - tail_base)


# -- driver -------------------------------------------------------------------


class ParallelCampaign:
    """Multi-process campaign driver over one golden run.

    Dispatches contiguous slot-range shards to a worker pool and merges
    the results into the same result types — and the same iteration
    order — as the serial runner.  ``jobs=1`` executes the sharded code
    path inline in the current process (useful for debugging and for
    equivalence tests without pool overhead); ``jobs=0`` uses one worker
    per CPU.  ``domain`` selects the fault model the campaign scans;
    ``policy`` the timeout/retry/heartbeat behaviour (see
    :class:`RetryPolicy`).
    """

    def __init__(self, golden: GoldenRun, jobs: int = 0, *,
                 executor_config: ExecutorConfig | None = None,
                 domain: FaultDomain | str = MEMORY,
                 policy: RetryPolicy | None = None):
        resolved = resolve_jobs(jobs)
        if resolved is None:
            raise ValueError("ParallelCampaign needs a concrete job count; "
                             "use the serial runner for jobs=None")
        self.golden = golden
        self.jobs = resolved
        self.domain = get_domain(domain)
        self.policy = policy or RetryPolicy()
        config = executor_config or ExecutorConfig()
        # The config crosses the process boundary; pin its domain to the
        # campaign's so every worker rebuilds the right injector.
        self.config = dataclasses.replace(config, domain=self.domain.name)

    def _journal_params(self) -> dict:
        """Journal campaign key — must match the serial runner's, so a
        campaign journaled serially resumes under any job count."""
        return {
            "timeout_cycles": self.config.timeout_cycles(self.golden.cycles),
            "early_stop": self.config.early_stop,
        }

    # -- dispatch ------------------------------------------------------------

    def _run_shards(self, worker: Callable, tasks: list, *,
                    costs: dict, report: ExecutionReport,
                    on_result: Callable,
                    timeout_result: Callable | None = None,
                    heartbeat: Callable | None = None) -> None:
        """Execute ``tasks`` (``(index, payload)`` pairs), robustly.

        ``on_result(index, result)`` is called in completion order; the
        caller merges into canonical order afterwards.  Shards whose
        wall-clock deadline (``costs[index]`` cycles through the policy)
        expires are killed and replaced by ``timeout_result(payload)``.
        Shards interrupted by a worker death are retried with backoff;
        after :attr:`RetryPolicy.max_retries` extra attempts they are
        dropped and counted in ``report.failed_shards`` — the caller
        detects the gap and reports the missing units.

        With one job (or one task) everything runs inline — no
        processes, no pickling, no timeouts — through the exact same
        shard functions.
        """
        if not tasks:
            return
        processes = min(self.jobs, len(tasks))
        if processes <= 1:
            _init_worker(self.golden, self.config)
            for index, payload in tasks:
                on_result(index, worker((index, 0, payload)))
            return
        policy = self.policy
        ctx = multiprocessing.get_context()
        pending = dict(tasks)
        attempts = {index: 0 for index in pending}
        backoff = policy.backoff
        while pending:
            workers_n = min(processes, len(pending))
            executor = cfutures.ProcessPoolExecutor(
                max_workers=workers_n, mp_context=ctx,
                initializer=_init_worker,
                initargs=(self.golden, self.config))
            futures = {
                executor.submit(worker, (index, attempts[index], payload)):
                    index
                for index, payload in sorted(pending.items())}
            started: dict[int, float] = {}
            timed_out: list[int] = []
            broke = False
            last_beat = time.monotonic()
            try:
                while futures:
                    done, _ = cfutures.wait(
                        list(futures), timeout=policy.poll_interval,
                        return_when=cfutures.FIRST_COMPLETED)
                    for future in done:
                        index = futures.pop(future)
                        result = future.result()  # raises on a dead worker
                        del pending[index]
                        started.pop(index, None)
                        on_result(index, result)
                    now = time.monotonic()
                    for future, index in futures.items():
                        if index not in started and future.running():
                            started[index] = now
                    timed_out = [
                        index for index in started
                        if now - started[index]
                        >= policy.deadline_for(costs.get(index, 0))]
                    if timed_out:
                        break
                    if (heartbeat is not None
                            and now - last_beat >= policy.heartbeat):
                        heartbeat()
                        last_beat = now
            except BrokenProcessPool:
                broke = True
            finally:
                if timed_out or broke:
                    # Non-daemonic pool workers would survive shutdown()
                    # and block interpreter exit; a wedged or orphaned
                    # worker must be killed outright.
                    procs = getattr(executor, "_processes", None) or {}
                    for proc in list(procs.values()):
                        proc.kill()
                executor.shutdown(wait=True, cancel_futures=True)
            for index in timed_out:
                payload = pending.pop(index)
                report.timed_out_shards += 1
                if timeout_result is not None:
                    on_result(index, timeout_result(payload))
            if broke:
                # Blame cannot be attributed: the executor fails every
                # in-flight future once the pool breaks.  All unfinished
                # shards are charged an attempt; innocent ones have
                # max_retries of headroom.
                retried = []
                for index in list(pending):
                    attempts[index] += 1
                    if attempts[index] > policy.max_retries:
                        report.failed_shards += 1
                        del pending[index]
                    else:
                        retried.append(index)
                if retried:
                    report.shard_retries += len(retried)
                    time.sleep(backoff
                               * (1.0 + policy.backoff_jitter
                                  * random.random()))
                    backoff *= policy.backoff_factor

    # -- campaign styles -----------------------------------------------------

    def run_full_scan(self, *, partition=None,
                      keep_records: bool = False,
                      progress: ProgressCallback | None = None,
                      journal=None, resume: bool = True):
        """Def/use-pruned full scan, sharded across the pool."""
        from .runner import CampaignResult

        golden = self.golden
        domain = self.domain
        if partition is None:
            partition = domain.build_partition(golden)
        handle = open_campaign(journal, golden, domain, "full-scan",
                               self._journal_params())
        completed = {}
        if handle is not None:
            if not resume:
                handle.clear()
            completed = handle.completed_classes()
        live = partition.live_classes()  # sorted by injection slot
        report = ExecutionReport(total_units=len(live))
        # Compose store-known classes into ``completed`` before planning:
        # composed classes never reach a shard, exactly like resumed ones.
        composer = build_composer(handle, golden, domain,
                                  self._journal_params())
        compose_into_completed(composer, live, completed, handle, report)
        todo = [interval for interval in live
                if domain.class_key(interval) not in completed]
        report.resumed = len(live) - len(todo)
        by_key = {domain.class_key(interval): interval for interval in todo}
        synthesized_keys: set[tuple[int, int]] = set()
        # Journaling needs end_cycle/trap, so workers must ship records
        # back even when the caller does not keep them.
        want_records = keep_records or handle is not None
        shards, shard_costs = plan_class_shards(
            todo, golden.cycles, bits=domain.bits, parts=self.jobs)
        costs = dict(enumerate(shard_costs))
        tasks = [(index, (tuple(shard), want_records))
                 for index, shard in enumerate(shards)]
        timeout_cycles = self.config.timeout_cycles(golden.cycles)
        fresh: dict[tuple[int, int], tuple] = {}
        done = report.resumed

        def on_result(index, result):
            nonlocal done
            pairs, shard_records, hits, skips, tails = result
            report.convergence_hits += hits
            report.slice_hits += skips
            report.scalar_tail_experiments += tails
            record_iter = iter(shard_records)
            for key, outcomes in pairs:
                class_records = ([next(record_iter) for _ in outcomes]
                                 if shard_records else [])
                fresh[key] = (outcomes, class_records)
                if handle is not None:
                    handle.record_class(key[0], key[1], [
                        (bit, record.outcome.value, record.end_cycle,
                         record.trap)
                        for bit, record in enumerate(class_records)])
                    if key not in synthesized_keys:
                        # Wall-clock-synthesized timeouts are scheduling
                        # artifacts of this run; only simulator-produced
                        # results enter the cross-campaign store.
                        composer.store_class(by_key[key], [
                            (bit, record.outcome, record.end_cycle,
                             record.trap)
                            for bit, record in enumerate(class_records)])
            report.executed += len(pairs)
            done += len(pairs)
            if progress is not None:
                progress(done, len(live))

        def timeout_result(payload):
            intervals, _ = payload
            pairs = []
            records: list[ExperimentRecord] = []
            for interval in intervals:
                synthesized_keys.add(domain.class_key(interval))
                coords = interval.experiments()
                pairs.append((domain.class_key(interval),
                              tuple([Outcome.TIMEOUT] * len(coords))))
                if want_records:
                    records.extend(
                        ExperimentRecord(coordinate=coord,
                                         outcome=Outcome.TIMEOUT,
                                         end_cycle=timeout_cycles)
                        for coord in coords)
                report.synthesized_timeouts += len(coords)
            return pairs, records, 0, 0, 0

        self._run_shards(
            _scan_shard, tasks, costs=costs, report=report,
            on_result=on_result, timeout_result=timeout_result,
            heartbeat=(lambda: progress(done, len(live)))
            if progress is not None else None)

        class_outcomes: dict[tuple[int, int], tuple[Outcome, ...]] = {}
        records: list[ExperimentRecord] = []
        missing = []
        for interval in live:
            key = domain.class_key(interval)
            if key in fresh:
                outcomes, class_records = fresh[key]
                class_outcomes[key] = outcomes
                if keep_records:
                    records.extend(class_records)
            elif key in completed:
                rows = completed[key]
                class_outcomes[key] = tuple(outcome for _, outcome, _, _
                                            in rows)
                if keep_records:
                    coords = interval.experiments()
                    records.extend(
                        ExperimentRecord(coordinate=coords[bit],
                                         outcome=outcome,
                                         end_cycle=end_cycle, trap=trap)
                        for bit, outcome, end_cycle, trap in rows)
            else:
                missing.append(key)
        report.missing = tuple(missing)
        if handle is not None:
            if report.complete:
                handle.mark_complete()
            handle.close()
        return CampaignResult(golden=golden, partition=partition,
                              class_outcomes=class_outcomes, records=records,
                              domain=domain, execution=report)

    def run_brute_force(self, *, progress: ProgressCallback | None = None,
                        journal=None, resume: bool = True):
        """One experiment per raw coordinate, sharded by slot range."""
        from .runner import BruteForceResult

        golden = self.golden
        domain = self.domain
        handle = open_campaign(journal, golden, domain, "brute-force",
                               self._journal_params())
        completed = {}
        if handle is not None:
            if not resume:
                handle.clear()
            completed = handle.completed_slots()
        all_slots = list(range(1, golden.cycles + 1))
        todo = [slot for slot in all_slots if slot not in completed]
        report = ExecutionReport(total_units=golden.cycles,
                                 resumed=golden.cycles - len(todo))
        slot_costs = [golden.cycles - slot + 1 or 1 for slot in todo]
        shards = shard_by_cost(todo, slot_costs, self.jobs)
        costs = {index: sum(golden.cycles - slot + 1 or 1 for slot in shard)
                 for index, shard in enumerate(shards)}
        tasks = [(index, tuple(shard)) for index, shard in enumerate(shards)]
        space = domain.fault_space(golden)
        fresh: dict[int, list] = {}
        done = report.resumed

        def on_result(index, result):
            nonlocal done
            slot_rows, hits, skips, tails = result
            report.convergence_hits += hits
            report.slice_hits += skips
            report.scalar_tail_experiments += tails
            for slot, rows in slot_rows:
                fresh[slot] = rows
                if handle is not None:
                    handle.record_slot(slot, [(axis, bit, outcome.value)
                                              for axis, bit, outcome in rows])
            report.executed += len(slot_rows)
            done += len(slot_rows)
            if progress is not None:
                progress(done, golden.cycles)

        def timeout_result(slots):
            out = []
            for slot in slots:
                rows = [(domain.coordinate_axis(coord), coord.bit,
                         Outcome.TIMEOUT)
                        for coord in domain.slot_coordinates(space, slot)]
                report.synthesized_timeouts += len(rows)
                out.append((slot, rows))
            return out, 0, 0, 0

        self._run_shards(
            _brute_shard, tasks, costs=costs, report=report,
            on_result=on_result, timeout_result=timeout_result,
            heartbeat=(lambda: progress(done, golden.cycles))
            if progress is not None else None)

        outcomes: dict = {}
        missing = []
        for slot in all_slots:
            if slot in fresh:
                rows = fresh[slot]
            elif slot in completed:
                rows = completed[slot]
            else:
                missing.append(slot)
                continue
            for axis, bit, outcome in rows:
                outcomes[domain.coordinate(slot, axis, bit)] = outcome
        report.missing = tuple(missing)
        if handle is not None:
            if report.complete:
                handle.mark_complete()
            handle.close()
        return BruteForceResult(golden=golden, outcomes=outcomes,
                                domain=domain, execution=report)

    def run_sampling(self, n_samples: int, *, seed: int = 0,
                     sampler: str = "uniform",
                     partition=None,
                     progress: ProgressCallback | None = None,
                     journal=None, resume: bool = True):
        """Sampled campaign: shard the distinct (class, bit) experiments.

        Samples are drawn (deterministically, from the seed) in the
        parent; only the distinct representative experiments go to the
        pool.  The resulting outcome cache is then replayed over the
        drawn samples, exactly like the serial runner's cache.  On
        resume the journal's RNG-position check proves the re-drawn
        sequence is the journaled one before any cache is reused.
        """
        from .runner import SamplingResult, _draw_classified

        golden = self.golden
        domain = self.domain
        if partition is None:
            partition = domain.build_partition(golden)
        handle = open_campaign(
            journal, golden, domain, "sampling",
            dict(self._journal_params(), seed=seed, sampler=sampler,
                 n_samples=n_samples))
        if handle is not None and not resume:
            handle.clear()
        drawn, population, rng_state = _draw_classified(
            golden, n_samples, seed, sampler, partition, domain)
        journaled: dict[tuple[int, int, int], Outcome] = {}
        if handle is not None:
            handle.verify_sampler_state(len(drawn), rng_state)
            journaled = handle.completed_experiments()
        keyed: dict[tuple[int, int, int], object] = {}
        for sample in drawn:
            if sample.class_kind != LIVE:
                continue
            interval = partition.locate(sample.coordinate)
            key = (domain.class_key(interval)
                   + (domain.experiment_index(interval, sample.coordinate),))
            if key not in keyed:
                keyed[key] = domain.experiment_coordinate(interval, key[2])
        items = sorted(keyed.items(),
                       key=lambda kv: (kv[1].slot,
                                       domain.coordinate_axis(kv[1]),
                                       kv[1].bit))
        cache: dict[tuple[int, int, int], Outcome] = {
            key: journaled[key] for key, _ in items if key in journaled}
        report = ExecutionReport(total_units=len(items), resumed=len(cache))
        # Sections are keyed by executor parameters alone, so sampled
        # campaigns compose from (and feed) the same store full scans use.
        composer = build_composer(handle, golden, domain,
                                  self._journal_params())
        if composer is not None:
            for key, coord in items:
                if key in cache:
                    continue
                hit = composer.compose_experiment(coord.slot, key[0],
                                                  key[2])
                if hit is None:
                    continue
                cache[key] = hit[0]
                handle.record_experiments(
                    [(key[0], key[1], key[2], hit[0].value)])
                report.resumed += 1
                report.composed_hits += 1
        todo = [(key, coord) for key, coord in items if key not in cache]
        synthesized_keys: set = set()
        item_costs = [max(1, golden.cycles - coord.slot + 1)
                      for _, coord in todo]
        shards = shard_by_cost(todo, item_costs, self.jobs)
        costs = {index: sum(max(1, golden.cycles - coord.slot + 1)
                            for _, coord in shard)
                 for index, shard in enumerate(shards)}
        tasks = [(index, tuple(shard)) for index, shard in enumerate(shards)]
        done = len(cache)

        def on_result(index, result):
            nonlocal done
            rows, hits, skips, tails = result
            report.convergence_hits += hits
            report.slice_hits += skips
            report.scalar_tail_experiments += tails
            if handle is not None:
                handle.record_experiments(
                    [(key[0], key[1], key[2], outcome.value)
                     for key, outcome, _, _ in rows])
                for key, outcome, end_cycle, trap in rows:
                    if key not in synthesized_keys:
                        composer.store_experiment(
                            keyed[key].slot, key[0], key[2], outcome,
                            end_cycle, trap)
            for key, outcome, _, _ in rows:
                cache[key] = outcome
            report.executed += len(rows)
            done += len(rows)
            if progress is not None:
                progress(done, len(items))

        def timeout_result(shard):
            report.synthesized_timeouts += len(shard)
            synthesized_keys.update(key for key, _ in shard)
            return ([(key, Outcome.TIMEOUT, 0, "") for key, _ in shard],
                    0, 0, 0)

        self._run_shards(
            _sampling_shard, tasks, costs=costs, report=report,
            on_result=on_result, timeout_result=timeout_result,
            heartbeat=(lambda: progress(done, len(items)))
            if progress is not None else None)

        samples: list[tuple] = []
        missing: list = []
        missing_seen: set = set()
        for sample in drawn:
            if sample.class_kind != LIVE:
                samples.append((sample, Outcome.NO_EFFECT))
                continue
            interval = partition.locate(sample.coordinate)
            key = (domain.class_key(interval)
                   + (domain.experiment_index(interval, sample.coordinate),))
            if key in cache:
                samples.append((sample, cache[key]))
            elif key not in missing_seen:
                # Degraded campaign: the shard owning this experiment was
                # abandoned, so its samples cannot be classified and are
                # omitted from the (partial) result.
                missing_seen.add(key)
                missing.append(key)
        report.missing = tuple(missing)
        if handle is not None:
            if report.complete:
                handle.mark_complete()
            handle.close()
        return SamplingResult(golden=golden, partition=partition,
                              samples=samples, population=population,
                              experiments_conducted=len(cache),
                              sampler=sampler, domain=domain,
                              execution=report)
