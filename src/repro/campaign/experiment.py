"""Single fault-injection experiment execution.

One experiment (Section III-B): run the benchmark from the beginning
until the injection slot, pause, flip the bit, resume, observe.

:class:`ExperimentExecutor` keeps a *pristine* machine that is advanced
monotonically through the golden instruction stream and forked (via
snapshots) at each injection slot.  When experiments are executed in
ascending slot order — the runner guarantees this — every pre-injection
instruction is executed exactly once across the whole campaign instead
of once per experiment, which turns the full-scan cost from
O(experiments × Δt) into O(Δt + Σ post-injection cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faultspace.domain import FaultDomain, MEMORY, get_domain
from ..faultspace.model import FaultCoordinate
from ..isa.cpu import Machine, MachineState
from ..isa.errors import CPUException
from .golden import GoldenRun
from .outcomes import Outcome, PANIC_CODE, classify


def _classify_diverged(detections: tuple[tuple[int, int], ...]) -> Outcome:
    """Failure mode for a run stopped at its first wrong output byte."""
    if any(code >= PANIC_CODE for _, code in detections):
        return Outcome.DETECTED_FAIL_STOP
    if detections:
        return Outcome.DETECTED_UNCORRECTED
    return Outcome.SDC

#: Default multiple of the golden runtime before declaring a timeout.
DEFAULT_TIMEOUT_FACTOR = 3.0
#: Minimum extra cycles granted beyond the golden runtime.
DEFAULT_TIMEOUT_SLACK = 256


@dataclass(frozen=True)
class ExecutorConfig:
    """Picklable executor settings.

    Executors themselves are not picklable (they own live machines), so
    the parallel campaign engine ships this config to worker processes
    and rebuilds one executor per worker via :meth:`build`.
    """

    timeout_factor: float = DEFAULT_TIMEOUT_FACTOR
    timeout_slack: int = DEFAULT_TIMEOUT_SLACK
    use_snapshots: bool = True
    early_stop: bool = True
    #: Fault-domain registry name; workers resolve it to the singleton.
    domain: str = MEMORY.name

    def timeout_cycles(self, golden_cycles: int) -> int:
        """Cycle budget before a run is classified as a timeout.

        This is the paper's hang detector: a faulty run may legitimately
        take somewhat longer than the golden run, but one that exceeds a
        multiple of the golden runtime (plus fixed slack for tiny
        programs) will never halt and is classified
        :data:`~.outcomes.Outcome.TIMEOUT`.  Shared between the executor
        and the parallel engine's wall-clock shard guard so both layers
        agree on what "hung" means.
        """
        if self.timeout_factor < 1.0:
            raise ValueError("timeout_factor must be >= 1.0")
        return max(int(golden_cycles * self.timeout_factor),
                   golden_cycles + self.timeout_slack)

    def build(self, golden: "GoldenRun",
              executor_class: type | None = None) -> "ExperimentExecutor":
        """Construct an executor for ``golden`` with these settings."""
        cls = executor_class or ExperimentExecutor
        return cls(golden,
                   timeout_factor=self.timeout_factor,
                   timeout_slack=self.timeout_slack,
                   use_snapshots=self.use_snapshots,
                   early_stop=self.early_stop,
                   domain=self.domain)


@dataclass(frozen=True)
class ExperimentRecord:
    """The result of one fault-injection experiment."""

    coordinate: FaultCoordinate
    outcome: Outcome
    #: Cycle count when the run ended (halt, trap, or timeout).
    end_cycle: int
    #: Trap name if the run ended in a CPU exception, else "".
    trap: str = ""


class ExperimentExecutor:
    """Executes experiments against one golden run.

    Not thread-safe; create one executor per worker.  Experiments may be
    submitted in any order, but ascending injection-slot order enables
    the snapshot fast-forward optimization (out-of-order slots force a
    rewind, i.e. a fresh re-run of the pre-injection prefix).
    """

    def __init__(self, golden: GoldenRun, *,
                 timeout_factor: float = DEFAULT_TIMEOUT_FACTOR,
                 timeout_slack: int = DEFAULT_TIMEOUT_SLACK,
                 use_snapshots: bool = True,
                 early_stop: bool = True,
                 domain: FaultDomain | str = MEMORY):
        self.golden = golden
        self.domain = get_domain(domain)
        self.timeout_cycles = ExecutorConfig(
            timeout_factor=timeout_factor,
            timeout_slack=timeout_slack).timeout_cycles(golden.cycles)
        self.use_snapshots = use_snapshots
        self.early_stop = early_stop
        oracle = golden.output if early_stop else None
        self._machine = Machine(golden.program, oracle=oracle)
        self._pristine = Machine(golden.program)
        self._snapshot: MachineState | None = None
        #: Number of pre-injection rewinds (diagnostics for the ablation
        #: benchmark; stays 0 when experiments arrive slot-sorted).
        self.rewinds = 0

    def run(self, coordinate: FaultCoordinate) -> ExperimentRecord:
        """Run one experiment and classify its outcome."""
        if coordinate.slot > self.golden.cycles:
            raise ValueError(
                f"slot {coordinate.slot} beyond golden runtime "
                f"{self.golden.cycles}")
        machine = self._machine
        if self.use_snapshots:
            machine.restore(self._state_at(coordinate.slot - 1))
        else:
            machine.reset()
            machine.run_to_cycle(coordinate.slot - 1)
        self._inject(machine, coordinate)

        trap = ""
        try:
            machine.run(self.timeout_cycles)
        except CPUException as exc:
            trap = exc.trap_name
        trapped = bool(trap)
        timed_out = not machine.halted and not trapped
        if machine.diverged:
            # Early stop on first deviating output byte: the run can
            # never be benign again, so it is a failure; attribute the
            # mode from what was observed up to the divergence.
            outcome = _classify_diverged(tuple(machine.detections))
        else:
            outcome = classify(
                golden_output=self.golden.output,
                output=bytes(machine.serial),
                halted_cleanly=machine.halted and not trapped,
                trapped=trapped,
                timed_out=timed_out,
                detections=tuple(machine.detections),
            )
        return ExperimentRecord(coordinate=coordinate, outcome=outcome,
                                end_cycle=machine.cycle, trap=trap)

    def _inject(self, machine: Machine, coordinate) -> None:
        """Apply the fault at the current pause point.

        Delegates to the executor's fault domain (RAM bit flip for the
        memory domain, register-file flip for Section VI-B, ...);
        subclasses may still override to target other machine state.
        """
        self.domain.inject(machine, coordinate)

    # -- snapshot fast-forward -------------------------------------------------

    def _state_at(self, cycle: int) -> MachineState:
        """Pristine machine state after exactly ``cycle`` instructions."""
        if self._snapshot is not None and self._snapshot.cycle == cycle:
            return self._snapshot
        if cycle < self._pristine.cycle:
            self.rewinds += 1
            self._pristine.reset()
        self._pristine.run_to_cycle(cycle)
        if self._pristine.cycle != cycle:
            raise AssertionError(
                f"golden prefix halted at {self._pristine.cycle}, "
                f"wanted {cycle}")  # pragma: no cover
        self._snapshot = self._pristine.snapshot()
        return self._snapshot
