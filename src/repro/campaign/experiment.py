"""Single fault-injection experiment execution.

One experiment (Section III-B): run the benchmark from the beginning
until the injection slot, pause, flip the bit, resume, observe.

:class:`ExperimentExecutor` keeps a *pristine* machine that is advanced
monotonically through the golden instruction stream and forked (via
snapshots) at each injection slot.  When experiments are executed in
ascending slot order — the runner guarantees this — every pre-injection
instruction is executed exactly once across the whole campaign instead
of once per experiment, which turns the full-scan cost from
O(experiments × Δt) into O(Δt + Σ post-injection cycles).

The *post*-injection half of that sum is cut by the **convergence
early-exit** (``ExecutorConfig.use_convergence``, on by default): most
experiments under the uniform bit-flip model are benign — the flipped
bit is dead, overwritten, or corrected by a hardening mechanism — and
the faulty machine becomes state-identical to the golden run within a
few dozen cycles of injection.  The executor therefore pauses the
faulty machine at exponentially backed-off checkpoints and compares
its :meth:`~repro.isa.cpu.Machine.state_digest` against the golden
run's :class:`~.golden.CheckpointLadder` digest table.  On a match the
remaining execution is *provably* identical to the golden suffix
starting at the matched golden cycle — the machine is deterministic
and the digest covers all state that drives execution — so the
experiment is classified from golden facts alone and the rest of the
tail is skipped.  Three refinements make the hit rate high and the
miss cost low:

* Matches at a *shifted* cycle (the fault inserted or removed a
  constant number of cycles before the state re-joined the golden
  trajectory — the typical shape of a detect-and-correct recovery) are
  equally sound: the suffix is still the golden suffix, only the end
  cycle moves by the shift.  The ladder is dense (a rung per golden
  cycle, up to :data:`~.golden.MAX_CHECKPOINTS`) precisely so that a
  check at any faulty cycle can match whatever the shift is.
* Each checkpoint also probes a *masked* digest with the injected cell
  flipped back (the flip is an involution).  A masked match means the
  state differs from the golden state in exactly the injected bit —
  and when def/use analysis shows that cell's next golden access is
  not a read, the corrupt value can never be observed again, so the
  suffix is provably golden and the early exit is equally exact.
  This catches the large "benign but still dirty" population whose
  flipped bit simply dies in place.
* Check gaps double after every miss, so a run that never converges
  (a real failure) pays O(log tail) digests instead of a fixed
  per-stride toll, while a converging run is still caught within ~2×
  its convergence latency.

A fourth early exit needs no digest at all: the **criticality
pre-skip**.  A backward slice of the golden run
(:mod:`repro.faultspace.slicing`) proves, per fault-space cell and
injection point, whether a corrupt value there can ever reach an
observable sink (serial output, control flow, a memory address, a
trapping divisor).  When it cannot, the experiment's outcome *is* the
golden outcome and the executor classifies it before running a single
post-injection cycle.  The same map strengthens the masked probe: a
masked match is sound not only when the injected cell is def/use-dead
at the matched cycle but whenever it is non-critical there — dead
cells are a strict subset of non-critical ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import ExecutionEngine, get_engine
from ..faultspace.domain import FaultDomain, MEMORY, get_domain
from ..faultspace.slicing import backward_slice
from ..faultspace.model import FaultCoordinate
from ..isa.cpu import Machine, MachineState
from ..isa.errors import CPUException
from .golden import GoldenRun
from .outcomes import Outcome, PANIC_CODE, classify


def _classify_diverged(detections: tuple[tuple[int, int], ...]) -> Outcome:
    """Failure mode for a run stopped at its first wrong output byte."""
    if any(code >= PANIC_CODE for _, code in detections):
        return Outcome.DETECTED_FAIL_STOP
    if detections:
        return Outcome.DETECTED_UNCORRECTED
    return Outcome.SDC

#: Default multiple of the golden runtime before declaring a timeout.
DEFAULT_TIMEOUT_FACTOR = 3.0
#: Minimum extra cycles granted beyond the golden runtime.
DEFAULT_TIMEOUT_SLACK = 256


@dataclass(frozen=True)
class ExecutorConfig:
    """Picklable executor settings.

    Executors themselves are not picklable (they own live machines), so
    the parallel campaign engine ships this config to worker processes
    and rebuilds one executor per worker via :meth:`build`.
    """

    timeout_factor: float = DEFAULT_TIMEOUT_FACTOR
    timeout_slack: int = DEFAULT_TIMEOUT_SLACK
    use_snapshots: bool = True
    early_stop: bool = True
    #: Classify experiments early when the faulty machine's state digest
    #: re-joins the golden checkpoint ladder.  Outcome-invariant (the
    #: differential tests prove bit-for-bit identity), so it is *not*
    #: part of the journal campaign key; requires the golden run to
    #: carry a :class:`~.golden.CheckpointLadder`.
    use_convergence: bool = True
    #: Fault-domain registry name; workers resolve it to the singleton.
    domain: str = MEMORY.name
    #: Execution-engine registry name (see :mod:`repro.engine`).  Like
    #: ``use_convergence`` this is outcome-invariant — the equivalence
    #: tests prove bit-for-bit identical campaign results across
    #: engines — so it is not part of the journal campaign key.  The
    #: default ``auto`` resolves per campaign through the tier planner
    #: (:mod:`repro.engine.plan`) when :meth:`build` sees the golden
    #: run; naming a concrete engine pins it.
    engine: str = "auto"
    #: Distributed-fabric heartbeat cadence (seconds) shipped to every
    #: worker with the campaign spec; ``None`` keeps each worker's own
    #: default.  Pure transport tuning — outcome-invariant, so it is
    #: *not* part of the journal campaign key.
    heartbeat_interval: float | None = None
    #: Override for the lease/shard wall-clock budget (seconds) the
    #: coordinator's retry policy derives from cycle cost; ``None``
    #: keeps the cost-derived deadline.  Transport tuning only — also
    #: excluded from the journal campaign key.
    lease_timeout: float | None = None

    def timeout_cycles(self, golden_cycles: int) -> int:
        """Cycle budget before a run is classified as a timeout.

        This is the paper's hang detector: a faulty run may legitimately
        take somewhat longer than the golden run, but one that exceeds a
        multiple of the golden runtime (plus fixed slack for tiny
        programs) will never halt and is classified
        :data:`~.outcomes.Outcome.TIMEOUT`.  Shared between the executor
        and the parallel engine's wall-clock shard guard so both layers
        agree on what "hung" means.
        """
        if self.timeout_factor < 1.0:
            raise ValueError("timeout_factor must be >= 1.0")
        return max(int(golden_cycles * self.timeout_factor),
                   golden_cycles + self.timeout_slack)

    def build(self, golden: "GoldenRun",
              executor_class: type | None = None,
              partition=None) -> "ExperimentExecutor":
        """Construct an executor for ``golden`` with these settings.

        The executor class follows the engine unless overridden: batch
        engines get the lockstep :class:`BatchExperimentExecutor`,
        scalar engines the plain :class:`ExperimentExecutor`.  The
        ``auto`` engine resolves here — the first point where the
        golden run and domain are both known — so serial runners,
        parallel workers and dist workers all plan identically and
        deterministically.  ``partition`` hands the tier planner a
        def/use partition the caller already built; without it the
        planner builds (and caches) its own.
        """
        engine = get_engine(self.engine).resolve(golden, self.domain,
                                                 partition=partition)
        cls = executor_class
        if cls is None:
            cls = (BatchExperimentExecutor if engine.batch
                   else ExperimentExecutor)
        return cls(golden,
                   timeout_factor=self.timeout_factor,
                   timeout_slack=self.timeout_slack,
                   use_snapshots=self.use_snapshots,
                   early_stop=self.early_stop,
                   use_convergence=self.use_convergence,
                   domain=self.domain,
                   engine=engine)


@dataclass(frozen=True)
class ExperimentRecord:
    """The result of one fault-injection experiment."""

    coordinate: FaultCoordinate
    outcome: Outcome
    #: Cycle count when the run ended (halt, trap, or timeout).
    end_cycle: int
    #: Trap name if the run ended in a CPU exception, else "".
    trap: str = ""


class ExperimentExecutor:
    """Executes experiments against one golden run.

    Not thread-safe; create one executor per worker.  Experiments may be
    submitted in any order, but ascending injection-slot order enables
    the snapshot fast-forward optimization (out-of-order slots force a
    rewind, i.e. a fresh re-run of the pre-injection prefix).
    """

    def __init__(self, golden: GoldenRun, *,
                 timeout_factor: float = DEFAULT_TIMEOUT_FACTOR,
                 timeout_slack: int = DEFAULT_TIMEOUT_SLACK,
                 use_snapshots: bool = True,
                 early_stop: bool = True,
                 use_convergence: bool = True,
                 domain: FaultDomain | str = MEMORY,
                 engine: ExecutionEngine | str | None = None):
        self.golden = golden
        self.domain = get_domain(domain)
        self.engine = get_engine(engine)
        self.timeout_cycles = ExecutorConfig(
            timeout_factor=timeout_factor,
            timeout_slack=timeout_slack).timeout_cycles(golden.cycles)
        self.use_snapshots = use_snapshots
        self.early_stop = early_stop
        self.use_convergence = use_convergence
        ladder = getattr(golden, "checkpoints", None)
        if use_convergence and ladder is not None and ladder.digests:
            self._stride = ladder.stride
            self._golden_cycle_of = ladder.lookup()
        else:
            # No ladder (hand-built or pre-ladder golden run) or
            # convergence disabled: every tail runs to completion.
            self._stride = 0
            self._golden_cycle_of = {}
        oracle = golden.output if early_stop else None
        self._machine = self.engine.create_machine(golden.program,
                                                   oracle=oracle)
        self._pristine = self.engine.create_machine(golden.program)
        self._snapshot: MachineState | None = None
        # Criticality map for the pre-run skip and the masked-probe
        # observability proofs; built lazily on the first experiment
        # (never needed when convergence is off).
        self._criticality = None
        self._golden_record_cache: ExperimentRecord | None = None
        #: Number of pre-injection rewinds (diagnostics for the ablation
        #: benchmark; stays 0 when experiments arrive slot-sorted).
        self.rewinds = 0
        #: Experiments classified early at a golden checkpoint digest.
        self.convergence_hits = 0
        #: Experiments classified without running at all because the
        #: backward slice proved the injected cell non-critical.
        self.slice_hits = 0
        #: Checkpoint boundaries at which a digest was computed and
        #: compared (diagnostics: overhead per skipped tail).
        self.convergence_checks = 0
        #: Lanes that left a lockstep pack by eviction and had to finish
        #: on the scalar tier (always 0 for the scalar executor).  High
        #: values mean packs are shredding on divergent control flow and
        #: the batch tier is paying for lanes it cannot keep.
        self.scalar_tail_experiments = 0
        #: Evicted lanes whose scalar continuation rejoined the pack's
        #: shared pc in phase and re-entered lockstep.
        self.readmitted_lanes = 0
        #: Lockstep packs opened, and lanes that entered one (at open
        #: or by cross-slot/re-entry admission).  Their ratio is the
        #: achieved mean pack width — the quantity the pack planner
        #: maximizes (always 0 for the scalar executor).
        self.packs_opened = 0
        self.packed_lanes = 0

    def run(self, coordinate: FaultCoordinate) -> ExperimentRecord:
        """Run one experiment and classify its outcome."""
        if coordinate.slot > self.golden.cycles:
            raise ValueError(
                f"slot {coordinate.slot} beyond golden runtime "
                f"{self.golden.cycles}")
        if self.use_convergence and not self._cell_critical(coordinate):
            # Criticality pre-skip: the corrupt value provably never
            # reaches an observable sink, so the run would reproduce
            # the golden outcome cycle for cycle — skip it entirely.
            self.slice_hits += 1
            return self._golden_record(coordinate)
        machine = self._machine
        if self.use_snapshots:
            machine.restore(self._state_at(coordinate.slot - 1))
        else:
            machine.reset()
            machine.run_to_cycle(coordinate.slot - 1)
        self._inject(machine, coordinate)
        return self._finish(machine, coordinate)

    def run_many(self, coordinates) -> list[ExperimentRecord]:
        """Run a sequence of experiments, preserving input order.

        The scalar executor simply iterates; the batch executor
        overrides this to run same-slot stretches as lockstep lanes.
        Callers should submit coordinates slot-sorted for the snapshot
        fast-forward (and, in the batch case, lane grouping) to pay off.
        """
        return [self.run(coordinate) for coordinate in coordinates]

    def _finish(self, machine: Machine,
                coordinate) -> ExperimentRecord:
        """Run an injected machine to its end and classify the outcome."""
        trap = ""
        matched_cycle = None
        try:
            if self._stride:
                matched_cycle = self._seek_convergence(machine, coordinate)
            if matched_cycle is None:
                machine.run(self.timeout_cycles)
        except CPUException as exc:
            trap = exc.trap_name
        if matched_cycle is not None:
            return self._converged_record(
                coordinate, matched_cycle, cycle=machine.cycle,
                serial=bytes(machine.serial),
                detections=tuple(machine.detections))
        return self._classify_end(
            coordinate, trap=trap, diverged=machine.diverged,
            halted=machine.halted, serial=bytes(machine.serial),
            detections=tuple(machine.detections), cycle=machine.cycle)

    def _classify_end(self, coordinate, *, trap: str, diverged: bool,
                      halted: bool, serial: bytes, detections: tuple,
                      cycle: int) -> ExperimentRecord:
        """Classify a run that ended (halt, trap, divergence, timeout).

        Takes plain values rather than a machine so the batch executor
        can classify lane exits through the exact same code path.
        """
        trapped = bool(trap)
        timed_out = not halted and not trapped
        if diverged:
            # Early stop on first deviating output byte: the run can
            # never be benign again, so it is a failure; attribute the
            # mode from what was observed up to the divergence.
            outcome = _classify_diverged(detections)
        else:
            outcome = classify(
                golden_output=self.golden.output,
                output=serial,
                halted_cleanly=halted and not trapped,
                trapped=trapped,
                timed_out=timed_out,
                detections=detections,
            )
        return ExperimentRecord(coordinate=coordinate, outcome=outcome,
                                end_cycle=cycle, trap=trap)

    # -- convergence early-exit ------------------------------------------------

    def _seek_convergence(self, machine: Machine,
                          coordinate) -> int | None:
        """Advance checkpoint-to-checkpoint until a digest matches.

        Returns the *golden* cycle the faulty machine's state matched
        at (exactly, or up to the provably-dead injected cell), or
        ``None`` when the run ended (halt, divergence; traps propagate
        to the caller) or exhausted the cycle budget without re-joining
        the golden trajectory.  On ``None`` the caller's
        ``machine.run(timeout_cycles)`` finishes the remaining tail, so
        the classification path stays byte-identical to the
        non-convergent executor.

        Check positions stay aligned to the ladder stride (off-stride
        cycles have no rung to match under a zero shift) and the gap
        between checks doubles after every miss.
        """
        stride = self._stride
        table = self._golden_cycle_of
        limit = self.timeout_cycles
        inject = self.domain.inject
        gap = stride
        target = machine.cycle + gap
        target += -target % stride
        while target < limit:
            machine.run_to_cycle(target)
            if machine.halted:
                return None
            self.convergence_checks += 1
            matched = table.get(machine.state_digest())
            if matched is not None:
                return matched
            if self.domain.involutive:
                # Masked probe: re-flipping the injected cell is the
                # inverse of the injection, so this digest asks "is the
                # state golden except for exactly the injected bit?".
                # Non-involutive domains (stuck-at) skip it: a second
                # inject would not undo the first.
                inject(machine, coordinate)
                masked = table.get(machine.state_digest())
                inject(machine, coordinate)
                if masked is not None and self._cell_unobservable_after(
                        coordinate, masked):
                    return masked
            gap *= 2
            target += gap
            target += -target % stride
        return None

    def _cell_critical(self, coordinate) -> bool:
        """Can the fault at ``coordinate`` ever influence the outcome?"""
        if self._criticality is None:
            self._criticality = backward_slice(self.golden)
        return self.domain.cell_critical(self._criticality, coordinate)

    def _cell_unobservable_after(self, coordinate,
                                 golden_cycle: int) -> bool:
        """Is the injected cell's value irrelevant past ``golden_cycle``?

        True when the backward slice shows the cell is non-critical at
        the matched golden cycle: even if the golden suffix still reads
        it, the corrupt value provably never reaches an observable
        sink, so execution after a masked match classifies exactly like
        the golden suffix.  (Def/use-dead cells — overwritten first, or
        never touched again — are a strict subset of this.)
        """
        probe = self.domain.coordinate(
            golden_cycle + 1, self.domain.coordinate_axis(coordinate),
            coordinate.bit)
        return not self._cell_critical(probe)

    def _golden_record(self, coordinate) -> ExperimentRecord:
        """The record of an experiment proven to reproduce the golden run."""
        cached = self._golden_record_cache
        if cached is None:
            outcome = classify(
                golden_output=self.golden.output,
                output=self.golden.output,
                halted_cleanly=True,
                trapped=False,
                timed_out=False,
                detections=(),
            )
            cached = self._golden_record_cache = ExperimentRecord(
                coordinate=coordinate, outcome=outcome,
                end_cycle=self.golden.cycles)
        return ExperimentRecord(coordinate=coordinate,
                                outcome=cached.outcome,
                                end_cycle=cached.end_cycle)

    def _converged_record(self, coordinate, matched_cycle: int, *,
                          cycle: int, serial: bytes,
                          detections: tuple) -> ExperimentRecord:
        """Classify a converged experiment from golden facts alone.

        The faulty run at cycle ``c' = cycle`` holds the golden state of
        cycle ``c = matched_cycle`` (exactly, or up to the injected
        cell whose value is proven dead); determinism makes its
        remaining execution the golden suffix after ``c``: it emits the
        golden output's remaining bytes, records no further detections
        (the golden run has none), and halts cleanly when the suffix
        ends at cycle ``c' + (Δt - c)`` — unless that end lies beyond
        the cycle budget, in which case the run is a timeout, exactly
        as if it had been executed.
        """
        self.convergence_hits += 1
        golden = self.golden
        end_cycle = cycle - matched_cycle + golden.cycles
        if end_cycle > self.timeout_cycles:
            # The golden suffix cannot finish inside the budget, and it
            # cannot halt, trap or diverge early — the golden run did
            # not: the real run would hit the budget mid-suffix.
            return ExperimentRecord(coordinate=coordinate,
                                    outcome=Outcome.TIMEOUT,
                                    end_cycle=self.timeout_cycles)
        output = serial + golden.output[len(serial):]
        outcome = classify(
            golden_output=golden.output,
            output=output,
            halted_cleanly=True,
            trapped=False,
            timed_out=False,
            detections=detections,
        )
        return ExperimentRecord(coordinate=coordinate, outcome=outcome,
                                end_cycle=end_cycle)

    def _inject(self, machine: Machine, coordinate) -> None:
        """Apply the fault at the current pause point.

        Delegates to the executor's fault domain (RAM bit flip for the
        memory domain, register-file flip for Section VI-B, ...);
        subclasses may still override to target other machine state.
        """
        self.domain.inject(machine, coordinate)

    # -- snapshot fast-forward -------------------------------------------------

    def _state_at(self, cycle: int) -> MachineState:
        """Pristine machine state after exactly ``cycle`` instructions."""
        if self._snapshot is not None and self._snapshot.cycle == cycle:
            return self._snapshot
        if cycle < self._pristine.cycle:
            self.rewinds += 1
            self._pristine.reset()
        self._pristine.run_to_cycle(cycle)
        if self._pristine.cycle != cycle:
            raise AssertionError(
                f"golden prefix halted at {self._pristine.cycle}, "
                f"wanted {cycle}")  # pragma: no cover
        self._snapshot = self._pristine.snapshot()
        return self._snapshot


class BatchExperimentExecutor(ExperimentExecutor):
    """Executes slot-sorted experiment groups as lockstep vectorized lanes.

    :meth:`run_many` splits its input into consecutive same-slot
    stretches, then plans **packs** over them: a pack opens at the
    first stretch's pre-injection snapshot and, whenever its shared
    trajectory reaches a later stretch's injection cycle *on the golden
    pc*, admits that stretch's freshly injected lanes in place
    (:meth:`~repro.engine.batch.LockstepLanes.admit`).  Late slots with
    a handful of live cells therefore ride along in a wide pack instead
    of running thin ones — the planner aims for :data:`PACK_TARGET`
    live lanes across the whole campaign.  Lane execution uses the
    fused basic-block kernels (:mod:`repro.engine.fused`) with
    automatic per-instruction fallback, so one dispatch covers a whole
    block across all live lanes.  Everything an experiment can do maps
    back onto the scalar executor's own classification code:

    * halt / trap / divergence lane exits go through
      :meth:`~ExperimentExecutor._classify_end` with exactly the values
      a scalar machine would hold;
    * control-flow eviction restores the lane's
      :class:`~repro.isa.cpu.MachineState` into the scalar (Tier-1)
      machine, which catches up to the pack's current cycle; if it
      arrives back on the pack's shared pc the lane is **re-admitted**
      into lockstep, otherwise it finishes scalar via
      :meth:`~ExperimentExecutor._finish` (counted in
      :attr:`~ExperimentExecutor.scalar_tail_experiments`);
    * the convergence ladder is probed per live lane at the same
      stride-aligned, exponentially backed-off checkpoints the scalar
      executor uses.  Admitted lanes join whatever schedule the pack is
      on — sound because a digest match at *any* checkpoint classifies
      identically (see :meth:`_converged_record`: the end cycle is
      shift-invariant and the emitted prefix is completed from golden
      output), so the checkpoint schedule never affects records.

    Single experiments (:meth:`run`) and thin stretches with no
    adjacent stretches to pack with fall back to the inherited scalar
    path, which under the ``batch`` engine runs on the compiled Tier-1
    machine.
    """

    #: Below this many injectable lanes (summed over an adjacent
    #: ascending-slot window) a stretch runs scalar: one numpy dispatch
    #: costs ~100× a compiled-engine instruction, so tiny packs would
    #: be slower than Tier 1.
    MIN_LANES = 8
    #: Packs admit adjacent-slot lanes until they hold this many; wider
    #: packs amortize the per-block dispatch further but shrink the
    #: population left to refill later packs.
    PACK_TARGET = 32
    #: Lanes per batch chunk; bounds peak memory at
    #: ``MAX_LANES × ram_size`` bytes and keeps eviction compaction
    #: copies cheap.
    MAX_LANES = 1024

    _fused_cache: object = False  # False = not compiled yet

    @property
    def _fused(self):
        """The program's fused kernels, compiled once per executor."""
        if self._fused_cache is False:
            from ..engine.fused import compile_fused

            self._fused_cache = compile_fused(self.golden.program)
        return self._fused_cache

    def _golden_pc(self, cycle: int) -> int:
        """The pristine machine's pc after exactly ``cycle`` cycles."""
        pcs = self._golden_pcs
        if pcs is None:
            pcs = self._golden_pcs = self.golden.executed_pcs()
        if cycle < len(pcs):
            return pcs[cycle]
        return len(self.golden.program.rom)  # at the implicit exit stub

    _golden_pcs: list | None = None

    def run_many(self, coordinates) -> list["ExperimentRecord"]:
        from collections import deque

        coordinates = list(coordinates)
        records: list[ExperimentRecord | None] = [None] * len(coordinates)
        groups: deque[tuple[int, list[int]]] = deque()
        start = 0
        while start < len(coordinates):
            end = start + 1
            slot = coordinates[start].slot
            while (end < len(coordinates)
                   and coordinates[end].slot == slot):
                end += 1
            if slot > self.golden.cycles:
                raise ValueError(
                    f"slot {slot} beyond golden runtime "
                    f"{self.golden.cycles}")
            batchable = []
            for idx in range(start, end):
                coordinate = coordinates[idx]
                if (self.use_convergence
                        and not self._cell_critical(coordinate)):
                    self.slice_hits += 1
                    records[idx] = self._golden_record(coordinate)
                else:
                    batchable.append(idx)
            if batchable:
                groups.append((slot, batchable))
            start = end
        if not self.domain.batchable:
            # Non-batchable domains (PC faults redirect control flow
            # immediately, so lanes would never march in lockstep) run
            # scalar regardless of stretch width.
            for _, idxs in groups:
                for idx in idxs:
                    records[idx] = self.run(coordinates[idx])
            return records
        while groups:
            slot, idxs = groups.popleft()
            if self._pack_width(len(idxs), slot, groups) < self.MIN_LANES:
                for idx in idxs:
                    records[idx] = self.run(coordinates[idx])
                continue
            while len(idxs) > self.MAX_LANES:
                chunk, idxs = (idxs[:self.MAX_LANES],
                               idxs[self.MAX_LANES:])
                self._run_pack(slot, chunk, coordinates, records, deque())
            self._run_pack(slot, idxs, coordinates, records, groups)
        return records

    def _pack_width(self, width: int, slot: int, groups) -> int:
        """Prospective pack width: this stretch plus admissible followers.

        Counts lanes over the maximal non-descending-slot window
        starting here, stopping early once :data:`MIN_LANES` is
        reached (the only threshold the caller compares against).
        """
        prev = slot
        for nslot, nidxs in groups:
            if width >= self.MIN_LANES or nslot < prev:
                break
            width += len(nidxs)
            prev = nslot
        return width

    def _run_pack(self, slot, idxs, coordinates, records, groups) -> None:
        """Run one pack; admits groups from ``groups`` when reachable.

        Writes results into ``records[idx]`` for every lane it ends up
        owning (the opening ``idxs`` plus any admitted group's).
        """
        from ..engine.batch import DIVERGE, EVICT, LockstepLanes

        oracle = self.golden.output if self.early_stop else None
        state = self._state_at(slot - 1)
        lanes = LockstepLanes(self.golden.program, state, len(idxs),
                              oracle=oracle, fused=self._fused)
        self.packs_opened += 1
        self.packed_lanes += len(idxs)
        inject = self.domain.inject
        #: Per lane-id coordinate / records index, growing on admission.
        lane_coords = [coordinates[i] for i in idxs]
        lane_idx = list(idxs)
        for pos, coordinate in enumerate(lane_coords):
            inject(lanes.lane_view(pos), coordinate)
        limit = self.timeout_cycles

        def settle() -> None:
            for exit_ in lanes.pop_exits():
                coordinate = lane_coords[exit_.lane]
                idx = lane_idx[exit_.lane]
                if exit_.kind != EVICT:
                    records[idx] = self._classify_end(
                        coordinate, trap=exit_.trap,
                        diverged=exit_.kind == DIVERGE, halted=True,
                        serial=exit_.serial, detections=exit_.detections,
                        cycle=exit_.cycle)
                    continue
                machine = self._machine
                exit_.restore_into(machine)
                if lanes.n:
                    # Scalar catch-up to the pack's clock; a lane back
                    # on the shared pc in phase re-enters lockstep.
                    try:
                        machine.run_to_cycle(lanes.cycle)
                    except CPUException as exc:
                        records[idx] = self._classify_end(
                            coordinate, trap=exc.trap_name,
                            diverged=machine.diverged,
                            halted=machine.halted,
                            serial=bytes(machine.serial),
                            detections=tuple(machine.detections),
                            cycle=machine.cycle)
                        self.scalar_tail_experiments += 1
                        continue
                    if (not machine.halted and not machine.diverged
                            and machine.cycle == lanes.cycle
                            and machine.pc == lanes.pc):
                        lanes.admit(machine.snapshot())
                        lane_coords.append(coordinate)
                        lane_idx.append(idx)
                        self.readmitted_lanes += 1
                        self.packed_lanes += 1
                        continue
                records[idx] = self._finish(machine, coordinate)
                self.scalar_tail_experiments += 1

        def admit_groups() -> bool:
            """Admit every group whose injection point is *now*.

            Returns False when admission into this pack must stop for
            good (pack off the golden pc at a group's slot, pack full,
            or an out-of-order slot) — remaining groups then open
            fresh packs in the caller's loop.
            """
            while groups:
                nslot = groups[0][0]
                if nslot - 1 < lanes.cycle:
                    return False  # pack already past this slot
                if nslot - 1 > lanes.cycle:
                    return True   # not there yet; keep advancing
                if lanes.n >= self.PACK_TARGET:
                    return False
                if lanes.pc != self._golden_pc(lanes.cycle):
                    return False  # pack diverged from the golden pc
                _, nidxs = groups.popleft()
                st = self._state_at(nslot - 1)
                for idx in nidxs:
                    coordinate = coordinates[idx]
                    lanes.admit(st)
                    inject(lanes.lane_view(lanes.n - 1), coordinate)
                    lane_coords.append(coordinate)
                    lane_idx.append(idx)
                    self.packed_lanes += 1
            return True

        admitting = admit_groups()
        stride = self._stride
        table = self._golden_cycle_of
        gap = stride
        target = lanes.cycle + gap
        if stride:
            target += -target % stride
        while lanes.n and lanes.cycle < limit:
            bound = limit
            if stride and target < bound:
                bound = target
            if admitting and groups:
                next_admit = groups[0][0] - 1
                if next_admit < bound:
                    bound = next_admit
            lanes.run_to(bound)
            settle()
            if not lanes.n:
                break
            if admitting:
                admitting = admit_groups()
            if stride and lanes.cycle == target and target < limit:
                drop = []
                for pos in range(lanes.n):
                    lane = lanes.ids[pos]
                    coordinate = lane_coords[lane]
                    self.convergence_checks += 1
                    matched = table.get(lanes.digest(pos))
                    if matched is None and self.domain.involutive:
                        view = lanes.lane_view(pos)
                        inject(view, coordinate)
                        masked = table.get(lanes.digest(pos))
                        inject(view, coordinate)
                        if masked is not None and \
                                self._cell_unobservable_after(coordinate,
                                                              masked):
                            matched = masked
                    if matched is not None:
                        records[lane_idx[lane]] = self._converged_record(
                            coordinate, matched, cycle=lanes.cycle,
                            serial=bytes(lanes.serial[pos]),
                            detections=tuple(lanes.detections[pos]))
                        drop.append(pos)
                if drop:
                    lanes.remove(drop)
                gap *= 2
                target += gap
                target += -target % stride
        for pos in range(lanes.n):
            # Budget exhausted without halting: timeout, like the
            # scalar path's un-halted machine at ``timeout_cycles``.
            lane = lanes.ids[pos]
            records[lane_idx[lane]] = self._classify_end(
                lane_coords[lane], trap="", diverged=False, halted=False,
                serial=bytes(lanes.serial[pos]),
                detections=tuple(lanes.detections[pos]),
                cycle=lanes.cycle)
