"""Program sections: stable units of fault-injection result reuse.

FastFlip-style incremental campaigns (PAPERS.md) rest on one
observation: if a slice of a program's execution is *bit-identical*
between two campaign runs — the same code reachable from every
injection point, the same machine state entering the slice, the same
absolute cycle window and executor budget — then every experiment
inside that slice must produce the same outcome, so its results can be
composed from a persistent store instead of re-executed.

This module builds that slicing:

* A **section** is a maximal run of injection slots opened by the first
  visit of a basic block that was never executed before (block
  discovery is the compiled engine's own).  Loop iterations stay inside
  the section that first entered the loop, so a program has at most as
  many sections as executed basic blocks.
* Each section carries a content **fingerprint** hashing everything
  that pins experiment outcomes inside its window:

  - the forward control-flow closure of the blocks executed in the
    window.  Branch and ``jal`` targets are immediates and the pc is
    not part of any fault domain, so a corrupted run entering at any
    slot of the window can only ever execute code inside that closure;
    a reachable ``jalr`` (computed target) widens the closure to the
    whole ROM.
  - the machine state digest at window entry (RAM, registers, pc and
    serial *length* after ``first_slot - 1`` fault-free instructions).
    The serial bytes themselves are deliberately excluded: the outcome
    classifier compares output positionally against the golden run, so
    two variants whose prefixes differ but have equal length classify
    every downstream experiment identically.
  - the absolute ``[first_slot, last_slot]`` window, the fault domain
    and the executor parameters (timeout budget, early-stop), because
    end cycles and timeout classifications are functions of absolute
    cycle counts.
  - the RAM size and ROM length, which bound the fault space and the
    trap behaviour of wild loads/stores and jumps.

Two sections with equal fingerprints are therefore interchangeable:
any experiment injected at a slot of one has, coordinate for
coordinate, the same outcome, end cycle and trap as in the other.
This is the soundness contract behind ``campaign/compose.py`` and the
``section_results`` journal table (see DESIGN.md §3f).
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass

from ..engine.compiled import _BRANCHES, _find_blocks
from ..isa.cpu import Machine
from ..isa.isa import Op
from .domain import FaultDomain, get_domain

#: Bump whenever the fingerprint recipe changes: stored fingerprints
#: from older recipes then never match and stale section results can
#: never be composed into new campaigns.
FINGERPRINT_VERSION = 1


def canonical_params(params: dict | None) -> str:
    """The canonical JSON text of a fault-model parameter dict.

    Shared by section fingerprints and the journal's campaign identity
    so one byte string keys both.
    """
    return json.dumps(params or {}, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Section:
    """One contiguous slot window with a content fingerprint.

    ``leaders`` are the block-start pcs of the window's forward
    control-flow closure (the whole ROM when ``escape`` is set, i.e. a
    ``jalr`` is reachable).  Windows are inclusive on both ends and
    consecutive sections tile ``[1, Δt]`` exactly.
    """

    index: int
    first_slot: int
    last_slot: int
    fingerprint: str
    leaders: tuple[int, ...] = ()
    escape: bool = False

    def __post_init__(self) -> None:
        if self.first_slot < 1 or self.first_slot > self.last_slot:
            raise ValueError(
                f"bad section window [{self.first_slot}, {self.last_slot}]")

    @property
    def slots(self) -> int:
        """Number of injection slots in this section's window."""
        return self.last_slot - self.first_slot + 1

    def covers(self, slot: int) -> bool:
        return self.first_slot <= slot <= self.last_slot


class SectionMap:
    """The complete section partition of one golden run's fault space.

    Maps every injection slot — and hence every (cycle, cell)
    coordinate of any fault domain — to its owning section.
    """

    def __init__(self, *, program_name: str, domain: str, cycles: int,
                 sections: list[Section] | tuple[Section, ...]):
        self.program_name = program_name
        self.domain = domain
        self.cycles = cycles
        self.sections = tuple(sections)
        if not self.sections:
            raise ValueError("a section map needs at least one section")
        expected = 1
        for section in self.sections:
            if section.first_slot != expected:
                raise ValueError(
                    f"section windows must tile [1, {cycles}]: gap at "
                    f"slot {expected}")
            expected = section.last_slot + 1
        if expected != cycles + 1:
            raise ValueError(
                f"section windows end at {expected - 1}, expected {cycles}")
        self._starts = [s.first_slot for s in self.sections]

    def __len__(self) -> int:
        return len(self.sections)

    def __iter__(self):
        return iter(self.sections)

    def owner(self, slot: int) -> Section:
        """The section owning injection slot ``slot``."""
        if not 1 <= slot <= self.cycles:
            raise IndexError(f"slot {slot} outside [1, {self.cycles}]")
        return self.sections[bisect_right(self._starts, slot) - 1]

    def owner_of(self, coordinate) -> Section:
        """The section owning a raw fault coordinate (either domain)."""
        return self.owner(coordinate.slot)

    def fingerprints(self) -> list[str]:
        return [s.fingerprint for s in self.sections]


def _block_successors(blocks, rom_len: int):
    """``start -> (successor starts, jalr-escape?)`` for every block.

    Successor targets are always block leaders by construction: in-range
    branch/``jal`` immediates are leaders, every control op makes the
    following pc a leader, and a block truncated by the next leader
    falls through to exactly that leader.  Out-of-range targets trap
    (``IllegalPC``) — state-determined, so they add nothing reachable.
    """
    successors = {}
    for block in blocks:
        last_pc, last = block.instrs[-1]
        targets = []
        escape = False
        op = last.op
        if op in _BRANCHES:
            if 0 <= last.imm < rom_len:
                targets.append(last.imm)
            if last_pc + 1 < rom_len:
                targets.append(last_pc + 1)
        elif op is Op.JAL:
            if 0 <= last.imm < rom_len:
                targets.append(last.imm)
        elif op is Op.JALR:
            escape = True
        elif op is not Op.HALT:
            # Block truncated by the next leader: plain fallthrough.
            if last_pc + 1 < rom_len:
                targets.append(last_pc + 1)
        successors[block.start] = (tuple(targets), escape)
    return successors


def _forward_closure(start: int, successors) -> tuple[frozenset, bool]:
    """All block leaders reachable from ``start``, plus escape flag."""
    seen = {start}
    stack = [start]
    escape = False
    while stack:
        leaders, esc = successors[stack.pop()]
        escape = escape or esc
        for target in leaders:
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return frozenset(seen), escape


def _code_digest(rom, leaders, blocks_by_start, escape: bool) -> str:
    """Hash the instruction content of a closure (whole ROM on escape)."""
    digest = hashlib.sha256()
    if escape:
        items = list(enumerate(rom))
    else:
        items = []
        for start in sorted(leaders):
            items.extend(blocks_by_start[start].instrs)
    for pc, ins in items:
        digest.update(
            f"{pc}:{int(ins.op)}:{ins.rd}:{ins.rs1}:{ins.rs2}:{ins.imm};"
            .encode())
    return digest.hexdigest()


def build_section_map(golden, domain: FaultDomain | str | None = None,
                      params: dict | None = None) -> SectionMap:
    """Partition a golden run into fingerprinted sections.

    ``params`` are the executor parameters that key campaign identity
    (timeout budget, early-stop); they enter every fingerprint because
    outcomes like TIMEOUT depend on them.  The entry-state digests are
    taken with the interpreter ``Machine`` (one forward replay), so the
    map is engine-independent.
    """
    domain = get_domain(domain)
    program = golden.program
    rom = program.rom
    blocks = _find_blocks(rom, program.entry)
    blocks_by_start = {b.start: b for b in blocks}
    starts = sorted(blocks_by_start)
    successors = _block_successors(blocks, len(rom))

    pcs = golden.executed_pcs()
    if len(pcs) != golden.cycles:
        raise ValueError(
            f"pc trace length {len(pcs)} != golden cycles {golden.cycles}")

    def block_of(pc: int) -> int:
        return starts[bisect_right(starts, pc) - 1]

    # First-visit windowing: a new section opens at slot t when the
    # block executing at t was never executed before.
    boundaries: list[int] = []
    visited: set[int] = set()
    for slot, pc in enumerate(pcs, start=1):
        leader = block_of(pc)
        if leader not in visited:
            visited.add(leader)
            boundaries.append(slot)
    windows = [
        (boundaries[i],
         boundaries[i + 1] - 1 if i + 1 < len(boundaries)
         else golden.cycles)
        for i in range(len(boundaries))
    ]

    params_text = canonical_params(params)
    machine = Machine(program)
    sections: list[Section] = []
    for index, (first, last) in enumerate(windows):
        machine.run_to_cycle(first - 1)
        entry_digest = machine.state_digest().hex()
        closure, escape = _forward_closure(block_of(pcs[first - 1]),
                                           successors)
        if domain.control_hazard:
            # Domains that corrupt the pc itself (e.g. the "pc" domain)
            # can land execution on *any* instruction, so the static
            # forward closure no longer bounds reachable code; hash the
            # whole ROM, exactly like a reachable ``jalr``.
            escape = True
        code = _code_digest(rom, closure, blocks_by_start, escape)
        payload = json.dumps({
            "v": FINGERPRINT_VERSION,
            "domain": domain.name,
            "params": params_text,
            "first_slot": first,
            "last_slot": last,
            "entry": entry_digest,
            "code": code,
            "ram_size": program.ram_size,
            "rom_len": len(rom),
        }, sort_keys=True, separators=(",", ":"))
        fingerprint = hashlib.sha256(payload.encode()).hexdigest()[:32]
        sections.append(Section(
            index=index, first_slot=first, last_slot=last,
            fingerprint=fingerprint,
            leaders=tuple(sorted(closure)), escape=escape))
    return SectionMap(program_name=program.name, domain=domain.name,
                      cycles=golden.cycles, sections=sections)


# -- per-section Pitfall-1 weighting ----------------------------------------


def section_weighted_counts(section_map: SectionMap, live_intervals,
                            class_outcomes, *, domain, space):
    """Def/use-weighted outcome counters, split per section.

    ``class_outcomes`` maps ``domain.class_key(interval)`` to the
    per-experiment outcome sequence of that class.  Each live class's
    weight (``length × Σ experiment_slot_weights``, which equals
    ``interval.weight_bits``) is split across the sections its interval
    overlaps, proportionally to the overlapping slot count; the
    remaining weight of each section — dead intervals and never-touched
    cells — is exact residual NO_EFFECT mass, so no dead-class list is
    needed.  Summing the returned counters over sections reproduces the
    whole-program weighted counts bit for bit, which is what keeps the
    paper's Pitfall-1 correction sound under composition (see
    :func:`aggregate_section_counts`).
    """
    from ..campaign.outcomes import Outcome

    domain = get_domain(domain)
    if space.size % section_map.cycles:
        raise ValueError("fault space size not slot-uniform")
    per_slot = space.size // section_map.cycles
    counts: dict[int, Counter] = {s.index: Counter()
                                  for s in section_map.sections}
    live_weight: dict[int, int] = {s.index: 0 for s in section_map.sections}
    for interval in live_intervals:
        outcomes = class_outcomes[domain.class_key(interval)]
        weights = domain.experiment_slot_weights(interval)
        first = section_map.owner(interval.first_slot).index
        last = section_map.owner(interval.last_slot).index
        for section in section_map.sections[first:last + 1]:
            overlap = (min(interval.last_slot, section.last_slot)
                       - max(interval.first_slot, section.first_slot) + 1)
            if overlap <= 0:  # pragma: no cover - owner() bounds this
                continue
            counter = counts[section.index]
            for outcome, weight in zip(outcomes, weights):
                counter[outcome] += overlap * weight
            live_weight[section.index] += overlap * sum(weights)
    for section in section_map.sections:
        dead = section.slots * per_slot - live_weight[section.index]
        if dead < 0:  # pragma: no cover - partition invariant
            raise AssertionError(
                f"section {section.index} live weight exceeds its space")
        counts[section.index][Outcome.NO_EFFECT] += dead
    return counts


def aggregate_section_counts(per_section) -> Counter:
    """Fold per-section counters back into whole-program counts."""
    total: Counter = Counter()
    for counter in per_section.values():
        total.update(counter)
    return total
