"""Register-file fault space — the Section VI-B generalization.

The paper restricts its fault model to main memory but notes (Section
VI-B) that the methodology extends to "every bit in the caches, the CPU
registers, or the microarchitectural state" once reads and writes to
those bits are recorded for def/use pruning.  This module implements
that extension for the machine's general-purpose register file:

* the fault space is ``Δt × 15 registers × 32 bits`` (r0 is hardwired
  to zero and cannot hold a fault);
* register reads/writes per executed instruction are derived statically
  from the opcode table and replayed over the golden run's pc trace —
  no extra tracing hooks in the interpreter's hot path;
* def/use pruning, weighting and the comparison metrics carry over
  unchanged, which is exactly the paper's point.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..isa.isa import Instruction, LOAD_OPS, NUM_REGS, Op, STORE_OPS

#: Bits per register.
REGISTER_BITS = 32

LIVE = "live"
DEAD = "dead"


def register_reads(instr: Instruction) -> tuple[int, ...]:
    """Registers an instruction reads (r0 excluded — it is constant)."""
    op = instr.op
    if op in LOAD_OPS or op == Op.JALR:
        regs = (instr.rs1,)
    elif op in STORE_OPS:
        regs = (instr.rs1, instr.rs2)
    elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
        regs = (instr.rs1, instr.rs2)
    elif op in (Op.LUI, Op.JAL, Op.DETECT, Op.HALT, Op.NOP):
        regs = ()
    elif op == Op.OUT:
        regs = (instr.rs1,)
    elif op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI,
                Op.SRAI, Op.SLTI, Op.SLTIU):
        regs = (instr.rs1,)
    else:  # R-type ALU
        regs = (instr.rs1, instr.rs2)
    return tuple(sorted({r for r in regs if r != 0}))


def register_writes(instr: Instruction) -> tuple[int, ...]:
    """Registers an instruction writes (writes to r0 are discarded)."""
    op = instr.op
    if op in STORE_OPS or op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE,
                                 Op.BLTU, Op.BGEU, Op.OUT, Op.DETECT,
                                 Op.HALT, Op.NOP):
        return ()
    return (instr.rd,) if instr.rd != 0 else ()


@dataclass(frozen=True, order=True)
class RegisterFaultCoordinate:
    """One point of the register fault space: flip ``bit`` of register
    ``reg`` right before the ``slot``-th instruction executes."""

    slot: int
    reg: int
    bit: int

    def __post_init__(self) -> None:
        if self.slot < 1:
            raise ValueError(f"slot must be >= 1, got {self.slot}")
        if not 1 <= self.reg < NUM_REGS:
            raise ValueError(
                f"reg must be in 1..{NUM_REGS - 1} (r0 is hardwired)")
        if not 0 <= self.bit < REGISTER_BITS:
            raise ValueError(f"bit must be in 0..31, got {self.bit}")


@dataclass(frozen=True)
class RegisterFaultSpace:
    """Δt × 15 registers × 32 bits."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("fault space needs at least one cycle")

    @property
    def size(self) -> int:
        return self.cycles * (NUM_REGS - 1) * REGISTER_BITS

    @property
    def slot_bits(self) -> int:
        """Fault-space coordinates per injection slot (15 regs × 32)."""
        return (NUM_REGS - 1) * REGISTER_BITS

    def contains(self, coord: RegisterFaultCoordinate) -> bool:
        return 1 <= coord.slot <= self.cycles

    def coordinate(self, index: int) -> RegisterFaultCoordinate:
        """Map a flat index in ``[0, size)`` to a coordinate.

        Row-major over (slot, reg, bit), mirroring
        :meth:`repro.faultspace.model.FaultSpace.coordinate`; samplers
        draw uniform flat indices and convert them here, which gives
        the raw-space uniformity Pitfall 2 demands in this domain too.
        """
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside fault space")
        slot, rest = divmod(index, self.slot_bits)
        reg, bit = divmod(rest, REGISTER_BITS)
        return RegisterFaultCoordinate(slot=slot + 1, reg=reg + 1, bit=bit)

    def index(self, coord: RegisterFaultCoordinate) -> int:
        """Inverse of :meth:`coordinate`."""
        if not self.contains(coord):
            raise IndexError(f"{coord} outside fault space")
        return ((coord.slot - 1) * self.slot_bits
                + (coord.reg - 1) * REGISTER_BITS + coord.bit)

    def iter_coordinates(self):
        for slot in range(1, self.cycles + 1):
            for reg in range(1, NUM_REGS):
                for bit in range(REGISTER_BITS):
                    yield RegisterFaultCoordinate(slot=slot, reg=reg,
                                                  bit=bit)


@dataclass(frozen=True)
class RegisterInterval:
    """A def/use equivalence class of one register over ``[first_slot,
    last_slot]`` (32 bits wide)."""

    reg: int
    first_slot: int
    last_slot: int
    kind: str

    @property
    def length(self) -> int:
        return self.last_slot - self.first_slot + 1

    @property
    def weight_bits(self) -> int:
        return self.length * REGISTER_BITS

    @property
    def injection_slot(self) -> int:
        return self.last_slot

    def covers(self, slot: int) -> bool:
        return self.first_slot <= slot <= self.last_slot

    def experiments(self) -> list[RegisterFaultCoordinate]:
        if self.kind != LIVE:
            raise ValueError("dead classes need no experiments")
        return [RegisterFaultCoordinate(slot=self.last_slot, reg=self.reg,
                                        bit=b)
                for b in range(REGISTER_BITS)]


@dataclass
class RegisterPartition:
    """Def/use partition of the register fault space."""

    fault_space: RegisterFaultSpace
    intervals: dict[int, list[RegisterInterval]] = field(
        default_factory=dict)

    @classmethod
    def from_pc_trace(cls, rom: list[Instruction],
                      pc_trace: list[int]) -> "RegisterPartition":
        """Build the partition from the golden run's executed-pc list.

        ``pc_trace[t]`` is the ROM index of the instruction executed at
        slot ``t + 1``.  Register accesses are derived from the opcode
        table; machine reset (all registers zero) counts as a def at
        slot 0.
        """
        total = len(pc_trace)
        if total < 1:
            raise ValueError("empty pc trace")
        partition = cls(fault_space=RegisterFaultSpace(cycles=total))
        # Collect per-register chronological events.
        events: dict[int, list[tuple[int, bool]]] = {
            reg: [] for reg in range(1, NUM_REGS)}
        for index, pc in enumerate(pc_trace):
            slot = index + 1
            instr = rom[pc]
            for reg in register_reads(instr):
                events[reg].append((slot, False))
            for reg in register_writes(instr):
                events[reg].append((slot, True))
        for reg in range(1, NUM_REGS):
            intervals: list[RegisterInterval] = []
            prev = 0
            for slot, is_write in events[reg]:
                if slot == prev:
                    # Same instruction reads and writes the register
                    # (e.g. addi r1, r1, 1): the read happened first and
                    # already closed the interval; the write opens the
                    # next one at the same slot boundary.
                    continue
                intervals.append(RegisterInterval(
                    reg=reg, first_slot=prev + 1, last_slot=slot,
                    kind=DEAD if is_write else LIVE))
                prev = slot
            if prev < total:
                intervals.append(RegisterInterval(
                    reg=reg, first_slot=prev + 1, last_slot=total,
                    kind=DEAD))
            partition.intervals[reg] = intervals
        return partition

    def live_classes(self) -> list[RegisterInterval]:
        live = [iv for ivs in self.intervals.values() for iv in ivs
                if iv.kind == LIVE]
        live.sort(key=lambda iv: (iv.injection_slot, iv.reg))
        return live

    def locate(self, coord: RegisterFaultCoordinate) -> RegisterInterval:
        if coord.slot > self.fault_space.cycles:
            raise IndexError(f"{coord} outside fault space")
        intervals = self.intervals[coord.reg]
        starts = [iv.first_slot for iv in intervals]
        idx = bisect.bisect_right(starts, coord.slot) - 1
        interval = intervals[idx]
        if not interval.covers(coord.slot):  # pragma: no cover
            raise AssertionError(f"partition hole at {coord}")
        return interval

    @property
    def experiment_count(self) -> int:
        return REGISTER_BITS * sum(
            1 for ivs in self.intervals.values() for iv in ivs
            if iv.kind == LIVE)

    @property
    def known_no_effect_weight(self) -> int:
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs if iv.kind == DEAD)

    @property
    def total_weight(self) -> int:
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs)

    def validate(self) -> None:
        total = self.fault_space.cycles
        for reg, intervals in self.intervals.items():
            expected = 1
            for iv in intervals:
                assert iv.first_slot == expected, (reg, iv)
                expected = iv.last_slot + 1
            assert expected == total + 1, (reg, expected)
        assert self.total_weight == self.fault_space.size

    def reduction_factor(self) -> float:
        experiments = self.experiment_count
        if experiments == 0:
            return float("inf")
        return self.fault_space.size / experiments
