"""The fault-space model: CPU cycles × memory bits.

Following Section III-A of the paper, the fault space of one benchmark
run is the discrete grid ``Δt × Δm``: every (injection slot, memory bit)
coordinate denotes the event "this RAM bit flips right before the t-th
instruction executes".  Its size ``w = Δt · Δm`` parametrizes both the
Poisson fault-occurrence model and the extrapolation of sampled results.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class FaultCoordinate:
    """One point of the fault space.

    ``slot``
        1-based injection slot: the fault becomes visible to the
        ``slot``-th executed instruction (inject after ``slot - 1``
        instructions have run).
    ``addr`` / ``bit``
        Byte address in RAM and bit index (0 = LSB) to flip.
    """

    slot: int
    addr: int
    bit: int

    def __post_init__(self) -> None:
        if self.slot < 1:
            raise ValueError(f"slot must be >= 1, got {self.slot}")
        if self.addr < 0:
            raise ValueError(f"addr must be >= 0, got {self.addr}")
        if not 0 <= self.bit < 8:
            raise ValueError(f"bit must be in 0..7, got {self.bit}")

    @property
    def bit_index(self) -> int:
        """Absolute bit position on the memory axis (addr*8 + bit)."""
        return self.addr * 8 + self.bit


@dataclass(frozen=True)
class FaultSpace:
    """The full fault space of one deterministic benchmark run.

    ``cycles``
        Benchmark runtime Δt in CPU cycles (= number of injection slots).
    ``ram_bytes``
        Benchmark memory usage Δm in bytes (the program's declared RAM
        footprint; the memory axis spans all its bits).
    """

    cycles: int
    ram_bytes: int

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("fault space needs at least one cycle")
        if self.ram_bytes < 1:
            raise ValueError("fault space needs at least one RAM byte")

    @property
    def memory_bits(self) -> int:
        """Δm in bits."""
        return self.ram_bytes * 8

    @property
    def size(self) -> int:
        """w = Δt · Δm — the number of fault-space coordinates."""
        return self.cycles * self.memory_bits

    def contains(self, coord: FaultCoordinate) -> bool:
        return (1 <= coord.slot <= self.cycles
                and 0 <= coord.addr < self.ram_bytes)

    def coordinate(self, index: int) -> FaultCoordinate:
        """Map a flat index in ``[0, size)`` to a coordinate.

        The layout is row-major over (slot, addr, bit); samplers draw
        uniform flat indices and convert them here, which guarantees the
        raw-space uniformity that Pitfall 2 demands.
        """
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside fault space")
        slot, rest = divmod(index, self.memory_bits)
        addr, bit = divmod(rest, 8)
        return FaultCoordinate(slot=slot + 1, addr=addr, bit=bit)

    def index(self, coord: FaultCoordinate) -> int:
        """Inverse of :meth:`coordinate`."""
        if not self.contains(coord):
            raise IndexError(f"{coord} outside fault space")
        return (coord.slot - 1) * self.memory_bits + coord.addr * 8 + coord.bit

    def iter_coordinates(self):
        """Iterate over every coordinate (only sensible for tiny spaces)."""
        for slot in range(1, self.cycles + 1):
            for addr in range(self.ram_bytes):
                for bit in range(8):
                    yield FaultCoordinate(slot=slot, addr=addr, bit=bit)
