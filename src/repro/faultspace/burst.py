"""Multi-bit upset fault space: adjacent bit bursts within one byte.

Single-event upsets in dense memories increasingly flip *several
adjacent* cells at once (the DAVOS fault dictionary models these as
burst faults).  This module extends the paper's ``Δt × Δm`` grid to
bursts of ``width`` adjacent bits confined to one byte: a coordinate
``(slot, addr, start)`` denotes "bits ``start .. start+width-1`` of RAM
byte ``addr`` all flip right before the ``slot``-th instruction".  A
byte has ``9 - width`` start positions, so the space size is
``Δt × Δm_bytes × (9 - width)``.

Def/use pruning carries over *unchanged in structure* from the
single-bit model, which is exactly why it is sound here:

* the machine reads and writes whole bytes (multi-byte accesses touch
  every covered byte), so a burst confined to one byte is first
  *activated* by the next read of that byte and completely *killed* by
  the next write of that byte — the same events that delimit the
  single-bit intervals;
* therefore the interval boundaries of :class:`BurstPartition` are
  identical to :class:`~repro.faultspace.defuse.DefUsePartition`'s, and
  only the per-slot weight changes from 8 to ``9 - width`` start
  positions.

Burst coordinates reuse :class:`~repro.faultspace.model.FaultCoordinate`
with ``bit`` holding the start position (``0 .. 8-width``, always a
valid bit index), so injection, journaling and CSV export need no new
coordinate type.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..isa.tracing import MemoryTrace
from .defuse import DEAD, LIVE
from .model import FaultCoordinate


def burst_positions(width: int) -> int:
    """Start positions of a ``width``-bit burst within one byte."""
    if not 2 <= width <= 8:
        raise ValueError(f"burst width must be in 2..8, got {width}")
    return 9 - width


@dataclass(frozen=True)
class BurstFaultSpace:
    """``Δt × Δm_bytes × (9 - width)`` burst-start coordinates."""

    cycles: int
    ram_bytes: int
    width: int

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("fault space needs at least one cycle")
        if self.ram_bytes < 1:
            raise ValueError("fault space needs at least one RAM byte")
        burst_positions(self.width)  # validates width

    @property
    def positions(self) -> int:
        """Burst start positions per byte."""
        return burst_positions(self.width)

    @property
    def byte_units(self) -> int:
        """Coordinates per injection slot (bytes × start positions)."""
        return self.ram_bytes * self.positions

    @property
    def size(self) -> int:
        return self.cycles * self.byte_units

    def contains(self, coord: FaultCoordinate) -> bool:
        return (1 <= coord.slot <= self.cycles
                and 0 <= coord.addr < self.ram_bytes
                and 0 <= coord.bit < self.positions)

    def coordinate(self, index: int) -> FaultCoordinate:
        """Map a flat index in ``[0, size)`` to a burst coordinate.

        Row-major over (slot, addr, start), mirroring
        :meth:`repro.faultspace.model.FaultSpace.coordinate` so uniform
        flat draws stay uniform over burst coordinates (Pitfall 2).
        """
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside fault space")
        slot, rest = divmod(index, self.byte_units)
        addr, start = divmod(rest, self.positions)
        return FaultCoordinate(slot=slot + 1, addr=addr, bit=start)

    def index(self, coord: FaultCoordinate) -> int:
        """Inverse of :meth:`coordinate`."""
        if not self.contains(coord):
            raise IndexError(f"{coord} outside fault space")
        return ((coord.slot - 1) * self.byte_units
                + coord.addr * self.positions + coord.bit)

    def iter_coordinates(self):
        for slot in range(1, self.cycles + 1):
            for addr in range(self.ram_bytes):
                for start in range(self.positions):
                    yield FaultCoordinate(slot=slot, addr=addr, bit=start)


@dataclass(frozen=True)
class BurstInterval:
    """One def/use class covering every burst start of one byte."""

    addr: int
    first_slot: int
    last_slot: int
    kind: str
    width: int

    def __post_init__(self) -> None:
        if self.first_slot > self.last_slot:
            raise ValueError(
                f"empty interval [{self.first_slot}, {self.last_slot}]")
        if self.kind not in (LIVE, DEAD):
            raise ValueError(f"bad kind {self.kind!r}")

    @property
    def positions(self) -> int:
        return burst_positions(self.width)

    @property
    def length(self) -> int:
        return self.last_slot - self.first_slot + 1

    @property
    def weight_bits(self) -> int:
        """Total burst coordinates covered (all start positions)."""
        return self.length * self.positions

    @property
    def injection_slot(self) -> int:
        return self.last_slot

    def covers(self, slot: int) -> bool:
        return self.first_slot <= slot <= self.last_slot

    def experiments(self) -> list[FaultCoordinate]:
        """Representative coordinates, one per burst start position."""
        if self.kind != LIVE:
            raise ValueError("dead classes need no experiments")
        return [FaultCoordinate(slot=self.last_slot, addr=self.addr, bit=s)
                for s in range(self.positions)]


@dataclass
class BurstPartition:
    """Def/use partition of the burst fault space.

    Interval boundaries match the single-bit partition exactly (see the
    module docstring for the soundness argument); only the per-slot
    weight differs.
    """

    fault_space: BurstFaultSpace
    intervals: dict[int, list[BurstInterval]] = field(default_factory=dict)

    @classmethod
    def from_trace(cls, trace: MemoryTrace,
                   fault_space: BurstFaultSpace) -> "BurstPartition":
        if trace.total_slots != fault_space.cycles:
            raise ValueError(
                f"trace covers {trace.total_slots} slots but fault space "
                f"has {fault_space.cycles} cycles")
        partition = cls(fault_space=fault_space)
        total = fault_space.cycles
        width = fault_space.width
        for addr in range(fault_space.ram_bytes):
            intervals: list[BurstInterval] = []
            prev_slot = 0  # machine reset defines every byte at slot 0
            for event in trace.accesses(addr):
                if event.slot > total or event.slot <= prev_slot:
                    raise ValueError(
                        f"bad trace event for byte {addr} at {event.slot}")
                intervals.append(BurstInterval(
                    addr=addr, first_slot=prev_slot + 1,
                    last_slot=event.slot,
                    kind=LIVE if event.is_read else DEAD, width=width))
                prev_slot = event.slot
            if prev_slot < total:
                intervals.append(BurstInterval(
                    addr=addr, first_slot=prev_slot + 1, last_slot=total,
                    kind=DEAD, width=width))
            partition.intervals[addr] = intervals
        return partition

    def byte_intervals(self, addr: int) -> list[BurstInterval]:
        return self.intervals.get(addr, [])

    def live_classes(self) -> list[BurstInterval]:
        live = [iv for ivs in self.intervals.values() for iv in ivs
                if iv.kind == LIVE]
        live.sort(key=lambda iv: (iv.injection_slot, iv.addr))
        return live

    def dead_classes(self) -> list[BurstInterval]:
        return [iv for ivs in self.intervals.values() for iv in ivs
                if iv.kind == DEAD]

    def locate(self, coord: FaultCoordinate) -> BurstInterval:
        if not self.fault_space.contains(coord):
            raise IndexError(f"{coord} outside fault space")
        intervals = self.intervals[coord.addr]
        starts = [iv.first_slot for iv in intervals]
        idx = bisect.bisect_right(starts, coord.slot) - 1
        interval = intervals[idx]
        if not interval.covers(coord.slot):  # pragma: no cover
            raise AssertionError(f"partition hole at {coord}")
        return interval

    @property
    def experiment_count(self) -> int:
        return self.fault_space.positions * sum(
            1 for ivs in self.intervals.values() for iv in ivs
            if iv.kind == LIVE)

    @property
    def live_weight(self) -> int:
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs if iv.kind == LIVE)

    @property
    def known_no_effect_weight(self) -> int:
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs if iv.kind == DEAD)

    @property
    def total_weight(self) -> int:
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs)

    def validate(self) -> None:
        total = self.fault_space.cycles
        for addr, intervals in self.intervals.items():
            expected = 1
            for iv in intervals:
                assert iv.first_slot == expected, (addr, iv)
                expected = iv.last_slot + 1
            assert expected == total + 1, (addr, expected)
        assert self.total_weight == self.fault_space.size

    def reduction_factor(self) -> float:
        experiments = self.experiment_count
        if experiments == 0:
            return float("inf")
        return self.fault_space.size / experiments
