"""Stuck-at-until-write fault space: a RAM bit forced to 0 or 1.

The DAVOS fault dictionary's second memory model after the transient
bit flip: from the injection slot on, one RAM bit is *forced* to a
value ``v ∈ {0, 1}`` until the owning byte's next write, which releases
the cell ("write wins").  Every read during the fault's lifetime sees
the forced value; the clearing write stores its data unmodified.

A coordinate is ``(slot, addr, bit)`` with the 4-bit experiment index
``bit = (value << 3) | bitpos`` packing the forced value and the bit
position, so each byte carries ``16`` experiments per class and the
space size is ``Δt × Δm_bytes × 16``.

Def/use pruning — soundness per model (Pitfall 1):

* **No accesses between two injection slots ⇒ equivalence.**  Forcing
  the bit at ``t1`` vs. ``t2`` in the same inter-access gap produces
  machines that differ only in a byte no instruction touches before the
  gap's terminating access; from that access on, both have the same
  forced bit, the same armed fault, and the fault clears at the same
  first write.  Executions coincide, so gaps between consecutive
  accesses are equivalence classes — the *same boundaries* as the
  transient model.
* **Write-terminated gaps and the tail are dead.**  If the terminating
  access is a write, it clears the fault before any read observes the
  forced value; past the last access nothing observes it either.  Both
  are known "No Effect" a priori.
* **Read-terminated gaps are live** with the representative injection
  right before the activating read (``injection_slot = last_slot``),
  one experiment per (bit position, forced value) pair.

Unlike a bit flip, arming a stuck-at twice does not cancel it, so the
domain is *non-involutive*: the convergence machinery must not use
double-injection masked probes (gated by ``FaultDomain.involutive``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..isa.tracing import MemoryTrace
from .defuse import DEAD, LIVE

#: Experiments per byte and class: 8 bit positions × 2 forced values.
STUCK_BITS = 16


@dataclass(frozen=True, order=True)
class StuckAtCoordinate:
    """One stuck-at fault: force a bit of byte ``addr`` from ``slot``.

    ``bit`` packs the experiment index: ``bit & 7`` is the bit
    position, ``bit >> 3`` the forced value (0 or 1).
    """

    slot: int
    addr: int
    bit: int

    def __post_init__(self) -> None:
        if self.slot < 1:
            raise ValueError(f"slot must be >= 1, got {self.slot}")
        if self.addr < 0:
            raise ValueError(f"addr must be >= 0, got {self.addr}")
        if not 0 <= self.bit < STUCK_BITS:
            raise ValueError(f"bit must be in 0..15, got {self.bit}")

    @property
    def bitpos(self) -> int:
        """Bit position within the byte (0 = LSB)."""
        return self.bit & 7

    @property
    def value(self) -> int:
        """The forced value (0 or 1)."""
        return self.bit >> 3


@dataclass(frozen=True)
class StuckAtFaultSpace:
    """``Δt × Δm_bytes × 16`` stuck-at coordinates."""

    cycles: int
    ram_bytes: int

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("fault space needs at least one cycle")
        if self.ram_bytes < 1:
            raise ValueError("fault space needs at least one RAM byte")

    @property
    def byte_units(self) -> int:
        """Coordinates per injection slot."""
        return self.ram_bytes * STUCK_BITS

    @property
    def size(self) -> int:
        return self.cycles * self.byte_units

    def contains(self, coord: StuckAtCoordinate) -> bool:
        return (1 <= coord.slot <= self.cycles
                and 0 <= coord.addr < self.ram_bytes)

    def coordinate(self, index: int) -> StuckAtCoordinate:
        """Flat index → coordinate, row-major over (slot, addr, bit)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside fault space")
        slot, rest = divmod(index, self.byte_units)
        addr, bit = divmod(rest, STUCK_BITS)
        return StuckAtCoordinate(slot=slot + 1, addr=addr, bit=bit)

    def index(self, coord: StuckAtCoordinate) -> int:
        """Inverse of :meth:`coordinate`."""
        if not self.contains(coord):
            raise IndexError(f"{coord} outside fault space")
        return ((coord.slot - 1) * self.byte_units
                + coord.addr * STUCK_BITS + coord.bit)

    def iter_coordinates(self):
        for slot in range(1, self.cycles + 1):
            for addr in range(self.ram_bytes):
                for bit in range(STUCK_BITS):
                    yield StuckAtCoordinate(slot=slot, addr=addr, bit=bit)


@dataclass(frozen=True)
class StuckAtInterval:
    """One equivalence class covering all 16 experiments of one byte."""

    addr: int
    first_slot: int
    last_slot: int
    kind: str

    def __post_init__(self) -> None:
        if self.first_slot > self.last_slot:
            raise ValueError(
                f"empty interval [{self.first_slot}, {self.last_slot}]")
        if self.kind not in (LIVE, DEAD):
            raise ValueError(f"bad kind {self.kind!r}")

    @property
    def length(self) -> int:
        return self.last_slot - self.first_slot + 1

    @property
    def weight_bits(self) -> int:
        return self.length * STUCK_BITS

    @property
    def injection_slot(self) -> int:
        return self.last_slot

    def covers(self, slot: int) -> bool:
        return self.first_slot <= slot <= self.last_slot

    def experiments(self) -> list[StuckAtCoordinate]:
        if self.kind != LIVE:
            raise ValueError("dead classes need no experiments")
        return [StuckAtCoordinate(slot=self.last_slot, addr=self.addr,
                                  bit=b)
                for b in range(STUCK_BITS)]


@dataclass
class StuckAtPartition:
    """Def/use partition of the stuck-at fault space."""

    fault_space: StuckAtFaultSpace
    intervals: dict[int, list[StuckAtInterval]] = field(
        default_factory=dict)

    @classmethod
    def from_trace(cls, trace: MemoryTrace,
                   fault_space: StuckAtFaultSpace) -> "StuckAtPartition":
        if trace.total_slots != fault_space.cycles:
            raise ValueError(
                f"trace covers {trace.total_slots} slots but fault space "
                f"has {fault_space.cycles} cycles")
        partition = cls(fault_space=fault_space)
        total = fault_space.cycles
        for addr in range(fault_space.ram_bytes):
            intervals: list[StuckAtInterval] = []
            prev_slot = 0  # machine reset defines every byte at slot 0
            for event in trace.accesses(addr):
                if event.slot > total or event.slot <= prev_slot:
                    raise ValueError(
                        f"bad trace event for byte {addr} at {event.slot}")
                intervals.append(StuckAtInterval(
                    addr=addr, first_slot=prev_slot + 1,
                    last_slot=event.slot,
                    kind=LIVE if event.is_read else DEAD))
                prev_slot = event.slot
            if prev_slot < total:
                intervals.append(StuckAtInterval(
                    addr=addr, first_slot=prev_slot + 1, last_slot=total,
                    kind=DEAD))
            partition.intervals[addr] = intervals
        return partition

    def byte_intervals(self, addr: int) -> list[StuckAtInterval]:
        return self.intervals.get(addr, [])

    def live_classes(self) -> list[StuckAtInterval]:
        live = [iv for ivs in self.intervals.values() for iv in ivs
                if iv.kind == LIVE]
        live.sort(key=lambda iv: (iv.injection_slot, iv.addr))
        return live

    def dead_classes(self) -> list[StuckAtInterval]:
        return [iv for ivs in self.intervals.values() for iv in ivs
                if iv.kind == DEAD]

    def locate(self, coord: StuckAtCoordinate) -> StuckAtInterval:
        if not self.fault_space.contains(coord):
            raise IndexError(f"{coord} outside fault space")
        intervals = self.intervals[coord.addr]
        starts = [iv.first_slot for iv in intervals]
        idx = bisect.bisect_right(starts, coord.slot) - 1
        interval = intervals[idx]
        if not interval.covers(coord.slot):  # pragma: no cover
            raise AssertionError(f"partition hole at {coord}")
        return interval

    @property
    def experiment_count(self) -> int:
        return STUCK_BITS * sum(
            1 for ivs in self.intervals.values() for iv in ivs
            if iv.kind == LIVE)

    @property
    def live_weight(self) -> int:
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs if iv.kind == LIVE)

    @property
    def known_no_effect_weight(self) -> int:
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs if iv.kind == DEAD)

    @property
    def total_weight(self) -> int:
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs)

    def validate(self) -> None:
        total = self.fault_space.cycles
        for addr, intervals in self.intervals.items():
            expected = 1
            for iv in intervals:
                assert iv.first_slot == expected, (addr, iv)
                expected = iv.last_slot + 1
            assert expected == total + 1, (addr, expected)
        assert self.total_weight == self.fault_space.size

    def reduction_factor(self) -> float:
        experiments = self.experiment_count
        if experiments == 0:
            return float("inf")
        return self.fault_space.size / experiments
