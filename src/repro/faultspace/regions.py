"""Named memory regions for fault-space book-keeping and reporting.

Campaign reports often break results down by what the affected memory
holds (kernel objects, thread stacks, application data...).  A
:class:`RegionMap` attaches names to byte ranges of a program's RAM and
lets analysis code attribute fault coordinates and equivalence classes
to regions.  Regions do not change campaign semantics — the fault model
stays "uniform over all of RAM".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Region:
    """A half-open byte range ``[start, end)`` with a name."""

    start: int
    end: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"bad region [{self.start}, {self.end})")

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


class RegionMap:
    """A set of non-overlapping named regions over a program's RAM."""

    def __init__(self, ram_size: int):
        if ram_size <= 0:
            raise ValueError("ram_size must be positive")
        self.ram_size = ram_size
        self._regions: list[Region] = []

    def add(self, start: int, end: int, name: str) -> Region:
        """Add a region; raises ``ValueError`` on overlap or out of RAM."""
        region = Region(start=start, end=end, name=name)
        if end > self.ram_size:
            raise ValueError(f"region {name!r} exceeds RAM size")
        for existing in self._regions:
            if region.start < existing.end and existing.start < region.end:
                raise ValueError(
                    f"region {name!r} overlaps {existing.name!r}")
        self._regions.append(region)
        self._regions.sort()
        return region

    @property
    def regions(self) -> list[Region]:
        return list(self._regions)

    def lookup(self, addr: int) -> Region | None:
        """Find the region containing ``addr`` (or ``None``)."""
        if not 0 <= addr < self.ram_size:
            raise IndexError(f"address {addr:#x} outside RAM")
        starts = [r.start for r in self._regions]
        idx = bisect.bisect_right(starts, addr) - 1
        if idx >= 0 and self._regions[idx].contains(addr):
            return self._regions[idx]
        return None

    def name_of(self, addr: int, default: str = "unmapped") -> str:
        region = self.lookup(addr)
        return region.name if region is not None else default

    def coverage(self) -> float:
        """Fraction of RAM covered by named regions."""
        return sum(r.size for r in self._regions) / self.ram_size
