"""Def/use fault-space pruning (Section III-C of the paper).

The pruning partitions each memory bit's timeline into *equivalence
classes*:

* an interval between a write/read and the *next read* of the same byte
  is **live**: any fault in it is first activated by that read, so one
  experiment (injected right before the read) stands for the whole
  interval;
* an interval ending in a write (the fault is overwritten), the tail
  after the last access (the fault is never read again), and the entire
  timeline of never-read bytes are **dead**: the outcome is known to be
  "No Effect" a priori, no experiment needed.

Machine reset counts as a def (at slot 0) of every RAM byte, so the
intervals of each byte exactly partition the timeline ``[1, Δt]`` and the
class weights sum to the fault-space size ``w`` — the invariant behind
Pitfall 1's weighting requirement.

Because one instruction accesses whole bytes, intervals are computed per
byte and stand for eight per-bit classes each; live classes still need
one experiment *per bit* (different bits of the same word can mask
differently), while weights simply multiply by eight.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..isa.tracing import MemoryTrace
from .model import FaultCoordinate, FaultSpace

#: Class kinds.
LIVE = "live"
DEAD = "dead"


@dataclass(frozen=True)
class ByteInterval:
    """One def/use equivalence class covering all 8 bits of one byte.

    The interval spans injection slots ``[first_slot, last_slot]``
    (inclusive).  For live intervals, ``last_slot`` is the slot of the
    activating read, which is also the representative injection slot.
    """

    addr: int
    first_slot: int
    last_slot: int
    kind: str  # LIVE or DEAD

    def __post_init__(self) -> None:
        if self.first_slot > self.last_slot:
            raise ValueError(
                f"empty interval [{self.first_slot}, {self.last_slot}]")
        if self.kind not in (LIVE, DEAD):
            raise ValueError(f"bad kind {self.kind!r}")

    @property
    def length(self) -> int:
        """Data lifetime in cycles — the per-bit weight of this class."""
        return self.last_slot - self.first_slot + 1

    @property
    def weight_bits(self) -> int:
        """Total fault-space coordinates covered (all 8 bits)."""
        return self.length * 8

    @property
    def injection_slot(self) -> int:
        """Representative injection slot (right before the read)."""
        return self.last_slot

    def covers(self, slot: int) -> bool:
        return self.first_slot <= slot <= self.last_slot

    def experiments(self):
        """The 8 representative fault coordinates (one per bit)."""
        if self.kind != LIVE:
            raise ValueError("dead classes need no experiments")
        return [FaultCoordinate(slot=self.last_slot, addr=self.addr, bit=b)
                for b in range(8)]


@dataclass
class DefUsePartition:
    """The complete def/use partitioning of a benchmark's fault space.

    ``intervals[addr]`` lists the byte's intervals in chronological
    order, exactly covering ``[1, fault_space.cycles]``.
    """

    fault_space: FaultSpace
    intervals: dict[int, list[ByteInterval]] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: MemoryTrace,
                   fault_space: FaultSpace) -> "DefUsePartition":
        """Build the partition from a golden-run memory trace."""
        if trace.total_slots != fault_space.cycles:
            raise ValueError(
                f"trace covers {trace.total_slots} slots but fault space "
                f"has {fault_space.cycles} cycles")
        partition = cls(fault_space=fault_space)
        total = fault_space.cycles
        for addr in range(fault_space.ram_bytes):
            events = trace.accesses(addr)
            intervals: list[ByteInterval] = []
            prev_slot = 0  # machine reset defines every byte at slot 0
            for event in events:
                if event.slot > total:
                    raise ValueError(
                        f"access at slot {event.slot} beyond run end")
                if event.slot <= prev_slot:
                    raise ValueError(
                        f"trace events for byte {addr} out of order")
                kind = LIVE if event.is_read else DEAD
                intervals.append(ByteInterval(
                    addr=addr, first_slot=prev_slot + 1,
                    last_slot=event.slot, kind=kind))
                prev_slot = event.slot
            if prev_slot < total:
                intervals.append(ByteInterval(
                    addr=addr, first_slot=prev_slot + 1, last_slot=total,
                    kind=DEAD))
            partition.intervals[addr] = intervals
        return partition

    # -- queries --------------------------------------------------------------

    def byte_intervals(self, addr: int) -> list[ByteInterval]:
        return self.intervals.get(addr, [])

    def live_classes(self) -> list[ByteInterval]:
        """All live classes, ordered by injection slot (then address)."""
        live = [iv for ivs in self.intervals.values() for iv in ivs
                if iv.kind == LIVE]
        live.sort(key=lambda iv: (iv.injection_slot, iv.addr))
        return live

    def dead_classes(self) -> list[ByteInterval]:
        return [iv for ivs in self.intervals.values() for iv in ivs
                if iv.kind == DEAD]

    def locate(self, coord: FaultCoordinate) -> ByteInterval:
        """Find the equivalence class containing a raw fault coordinate.

        This is the primitive that makes Pitfall-2-safe sampling cheap:
        a uniform sample from the raw space maps to the single class
        whose representative experiment provides its outcome.
        """
        if not self.fault_space.contains(coord):
            raise IndexError(f"{coord} outside fault space")
        intervals = self.intervals[coord.addr]
        starts = [iv.first_slot for iv in intervals]
        idx = bisect.bisect_right(starts, coord.slot) - 1
        interval = intervals[idx]
        if not interval.covers(coord.slot):
            raise AssertionError(
                f"partition hole at {coord}")  # pragma: no cover
        return interval

    # -- accounting -----------------------------------------------------------

    @property
    def experiment_count(self) -> int:
        """FI experiments needed for a full scan (8 per live class)."""
        return 8 * sum(1 for ivs in self.intervals.values()
                       for iv in ivs if iv.kind == LIVE)

    @property
    def live_weight(self) -> int:
        """Fault-space coordinates covered by live classes."""
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs if iv.kind == LIVE)

    @property
    def known_no_effect_weight(self) -> int:
        """Coordinates known a priori to be "No Effect" (dead classes)."""
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs if iv.kind == DEAD)

    @property
    def total_weight(self) -> int:
        """Must equal ``fault_space.size`` — checked by :meth:`validate`."""
        return sum(iv.weight_bits for ivs in self.intervals.values()
                   for iv in ivs)

    def validate(self) -> None:
        """Check the partition invariants; raises ``AssertionError``.

        * every byte's intervals exactly tile ``[1, Δt]``;
        * total weight equals the fault-space size ``w``.
        """
        total = self.fault_space.cycles
        for addr, intervals in self.intervals.items():
            expected = 1
            for iv in intervals:
                assert iv.first_slot == expected, (
                    f"byte {addr}: gap before slot {iv.first_slot}")
                expected = iv.last_slot + 1
            assert expected == total + 1, (
                f"byte {addr}: intervals end at {expected - 1}, "
                f"expected {total}")
        assert self.total_weight == self.fault_space.size

    def reduction_factor(self) -> float:
        """How many raw coordinates each conducted experiment stands for."""
        experiments = self.experiment_count
        if experiments == 0:
            return float("inf")
        return self.fault_space.size / experiments
