"""Program-counter fault space: single bit flips in the PC register.

Section VI-B's list of generalization targets explicitly includes the
microarchitectural state; the program counter is its most consequential
register.  A coordinate ``(slot, bit)`` denotes "bit ``bit`` of the PC
flips right before the ``slot``-th instruction is fetched", so the
space is ``Δt × 32``.

Equivalence-class pruning here is *static*, not def/use-based: the PC
is read and written every cycle, so lifetime intervals degenerate to
single slots.  What can be pruned is the per-slot *target* structure.
With golden pc ``p`` at slot ``t``, flipping bit ``b`` redirects the
fetch to ``q = p ^ (1 << b)``:

* ``q < rom_len`` — execution continues at a real instruction; every
  such bit is its own **singleton class** (different targets generally
  behave differently, no grouping is sound);
* ``q == rom_len`` — the machine's implicit clean-halt address; also a
  singleton;
* ``q > rom_len`` — the fetch traps (``IllegalPC``) *immediately*, with
  the machine state otherwise identical across all such bits at this
  slot.  The trap record (outcome, end cycle, trap name, output) cannot
  depend on which illegal bit was flipped, so **all illegal bits of one
  slot form a single grouped class** with one representative
  experiment, weighted by the group size (Pitfall 1's weighting
  requirement).

Class weights per slot therefore sum to 32 and the partition total to
``Δt × 32`` — the same accounting invariant as the def/use domains.

The PC domain is a *control-hazard* domain: a flipped PC can transfer
control anywhere in the ROM, so section fingerprints must cover the
whole ROM (``FaultDomain.control_hazard`` forces the escape digest) and
the lockstep batch tier, whose lanes share one PC, cannot host it
(``FaultDomain.batchable = False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .defuse import LIVE

#: Bits of the program counter.
PC_BITS = 32

#: Spatial-axis sentinel of the per-slot grouped illegal-target class.
#: Real singleton classes use their bit index (0..31) as the axis.
ILLEGAL_AXIS = PC_BITS


@dataclass(frozen=True, order=True)
class PCFaultCoordinate:
    """Flip ``bit`` of the PC right before the ``slot``-th fetch."""

    slot: int
    bit: int

    def __post_init__(self) -> None:
        if self.slot < 1:
            raise ValueError(f"slot must be >= 1, got {self.slot}")
        if not 0 <= self.bit < PC_BITS:
            raise ValueError(f"bit must be in 0..31, got {self.bit}")


@dataclass(frozen=True)
class PCFaultSpace:
    """``Δt × 32`` PC-bit coordinates."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("fault space needs at least one cycle")

    @property
    def slot_bits(self) -> int:
        return PC_BITS

    @property
    def size(self) -> int:
        return self.cycles * PC_BITS

    def contains(self, coord: PCFaultCoordinate) -> bool:
        return 1 <= coord.slot <= self.cycles

    def coordinate(self, index: int) -> PCFaultCoordinate:
        """Flat index → coordinate, row-major over (slot, bit)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside fault space")
        slot, bit = divmod(index, PC_BITS)
        return PCFaultCoordinate(slot=slot + 1, bit=bit)

    def index(self, coord: PCFaultCoordinate) -> int:
        """Inverse of :meth:`coordinate`."""
        if not self.contains(coord):
            raise IndexError(f"{coord} outside fault space")
        return (coord.slot - 1) * PC_BITS + coord.bit

    def iter_coordinates(self):
        for slot in range(1, self.cycles + 1):
            for bit in range(PC_BITS):
                yield PCFaultCoordinate(slot=slot, bit=bit)


@dataclass(frozen=True)
class PCInterval:
    """One per-slot PC equivalence class.

    ``axis`` is the class's spatial-axis index: the bit itself for
    singleton classes, :data:`ILLEGAL_AXIS` for the grouped
    illegal-target class.  ``members`` lists the bits the class covers
    (one for singletons); its first entry is the representative.
    """

    slot: int
    axis: int
    members: tuple[int, ...]
    kind: str = LIVE

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("PC class needs at least one member bit")

    @property
    def first_slot(self) -> int:
        return self.slot

    @property
    def last_slot(self) -> int:
        return self.slot

    @property
    def injection_slot(self) -> int:
        return self.slot

    @property
    def length(self) -> int:
        return 1

    @property
    def weight_bits(self) -> int:
        return len(self.members)

    def covers(self, slot: int) -> bool:
        return slot == self.slot

    def experiments(self) -> list[PCFaultCoordinate]:
        """The single representative coordinate of this class."""
        return [PCFaultCoordinate(slot=self.slot, bit=self.members[0])]


@dataclass
class PCPartition:
    """Static per-slot partition of the PC fault space."""

    fault_space: PCFaultSpace
    #: ``slots[t]`` lists slot ``t``'s classes, singletons first
    #: (ascending bit), the grouped illegal class last.
    slots: dict[int, list[PCInterval]] = field(default_factory=dict)

    @classmethod
    def from_pc_trace(cls, rom_len: int,
                      pc_trace: list[int]) -> "PCPartition":
        """Build the partition from the golden run's executed-pc list.

        ``pc_trace[t]`` is the ROM index fetched at slot ``t + 1``;
        targets ``<= rom_len`` stay in bounds (``== rom_len`` is the
        implicit clean halt), larger ones trap identically.
        """
        total = len(pc_trace)
        if total < 1:
            raise ValueError("empty pc trace")
        if rom_len < 1:
            raise ValueError("empty ROM")
        partition = cls(fault_space=PCFaultSpace(cycles=total))
        # The legal/illegal split depends only on the golden pc value,
        # so memoize per distinct pc (programs revisit few pcs).
        split_cache: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = {}
        for index, pc in enumerate(pc_trace):
            slot = index + 1
            cached = split_cache.get(pc)
            if cached is None:
                legal = tuple(b for b in range(PC_BITS)
                              if pc ^ (1 << b) <= rom_len)
                illegal = tuple(b for b in range(PC_BITS)
                                if pc ^ (1 << b) > rom_len)
                cached = split_cache[pc] = (legal, illegal)
            legal, illegal = cached
            classes = [PCInterval(slot=slot, axis=b, members=(b,))
                       for b in legal]
            if illegal:
                classes.append(PCInterval(
                    slot=slot, axis=ILLEGAL_AXIS, members=illegal))
            partition.slots[slot] = classes
        return partition

    def live_classes(self) -> list[PCInterval]:
        """All classes (every PC class needs an experiment)."""
        live = [iv for ivs in self.slots.values() for iv in ivs]
        live.sort(key=lambda iv: (iv.injection_slot, iv.axis))
        return live

    def dead_classes(self) -> list[PCInterval]:
        """No PC fault is a-priori benign — a flipped PC always acts."""
        return []

    def locate(self, coord: PCFaultCoordinate) -> PCInterval:
        if not self.fault_space.contains(coord):
            raise IndexError(f"{coord} outside fault space")
        for interval in self.slots[coord.slot]:
            if coord.bit in interval.members:
                return interval
        raise AssertionError(
            f"partition hole at {coord}")  # pragma: no cover

    @property
    def experiment_count(self) -> int:
        """One experiment per class."""
        return sum(len(ivs) for ivs in self.slots.values())

    @property
    def live_weight(self) -> int:
        return self.total_weight

    @property
    def known_no_effect_weight(self) -> int:
        return 0

    @property
    def total_weight(self) -> int:
        return sum(iv.weight_bits for ivs in self.slots.values()
                   for iv in ivs)

    def validate(self) -> None:
        total = self.fault_space.cycles
        assert set(self.slots) == set(range(1, total + 1))
        for slot, intervals in self.slots.items():
            members = sorted(b for iv in intervals for b in iv.members)
            assert members == list(range(PC_BITS)), (slot, members)
        assert self.total_weight == self.fault_space.size

    def reduction_factor(self) -> float:
        experiments = self.experiment_count
        if experiments == 0:
            return float("inf")
        return self.fault_space.size / experiments
