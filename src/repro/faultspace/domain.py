"""Fault domains: one campaign stack, many fault models (Section VI-B).

The paper restricts its fault model to main memory, but Section VI-B
argues the three pitfalls and their remedies apply to *any* state whose
reads and writes can be traced — CPU registers, caches, microarchitectural
state.  A :class:`FaultDomain` bundles everything the campaign engine
needs to know about one such fault model:

* the **fault space** spanned by a golden run (``Δt × Δm`` memory bits,
  ``Δt × 15 regs × 32 bits``, ...);
* the **def/use partition builder** that prunes that space into
  equivalence classes;
* the **class key** and **coordinate factory** that connect intervals,
  raw coordinates and campaign dictionaries;
* the **injector** that applies a fault coordinate to a paused machine.

The generic runners (:mod:`repro.campaign.runner`), the parallel sharder
(:mod:`repro.campaign.parallel`), the samplers
(:mod:`repro.faultspace.sampling`), persistence and metrics are all
written against this interface, so a new fault model (multi-bit faults,
instruction operands, ...) is one subclass plus a :data:`DOMAINS` entry —
not another fork of the campaign stack.

Domains are stateless singletons (:data:`MEMORY`, :data:`REGISTER`);
they pickle trivially, which the multi-process campaign engine relies
on.  ``get_domain`` accepts either a domain instance or its registry
name, so every public API takes ``domain="register"`` as a convenience.
"""

from __future__ import annotations

from typing import Iterator

from ..isa.isa import NUM_REGS
from .burst import (
    BurstFaultSpace,
    BurstInterval,
    BurstPartition,
    burst_positions,
)
from .defuse import ByteInterval, DefUsePartition
from .model import FaultCoordinate, FaultSpace
from .pcreg import (
    PC_BITS,
    PCFaultCoordinate,
    PCFaultSpace,
    PCInterval,
    PCPartition,
)
from .registers import (
    REGISTER_BITS,
    RegisterFaultCoordinate,
    RegisterFaultSpace,
    RegisterInterval,
    RegisterPartition,
)
from .stuckat import (
    STUCK_BITS,
    StuckAtCoordinate,
    StuckAtFaultSpace,
    StuckAtInterval,
    StuckAtPartition,
)


class FaultDomain:
    """Interface one fault model exposes to the generic campaign stack.

    Subclasses define class attributes ``name`` (registry key, also used
    for persistence) and ``bits`` (experiments per live equivalence
    class — the bit width of one unit on the domain's spatial axis), and
    implement every method below.  Instances must be stateless: the
    parallel engine ships them to worker processes by name.

    Four capability flags tell the engines what a model is allowed to
    do; the conservative default is chosen so that *forgetting* to set
    a flag yields a slower-but-correct campaign, never a wrong one:

    ``involutive``
        Injecting the same coordinate twice restores the pre-injection
        state.  Required for the convergence machinery's masked
        double-injection probes; stuck-at faults are not involutive.
    ``batchable``
        The lockstep batch tier can host the model's faults in lanes.
        PC faults cannot — lanes share one program counter.
    ``persistent``
        Injection arms state that outlives the injection instant (the
        stuck-at latch); engines must preserve it across snapshot /
        restore and the compiled tier must leave its store-inlining
        fast path while a fault is armed.
    ``control_hazard``
        A fault can redirect control flow *directly* (not via data), so
        section fingerprints must cover the whole ROM rather than the
        golden run's forward closure.
    """

    #: Registry name, also stored in :class:`CampaignSummary.domain`.
    name: str = ""
    #: Bits per spatial unit == experiments per live class.
    bits: int = 0
    #: Double injection restores the pre-injection state.
    involutive: bool = True
    #: The lockstep batch tier may host this model's faults.
    batchable: bool = True
    #: Injection arms state that outlives the injection instant.
    persistent: bool = False
    #: Faults redirect control flow directly (PC corruption).
    control_hazard: bool = False

    # -- spaces and partitions ------------------------------------------------

    def fault_space(self, golden):
        """The fault space one golden run spans in this domain."""
        raise NotImplementedError

    def build_partition(self, golden):
        """Def/use-prune the domain's fault space (validated)."""
        raise NotImplementedError

    # -- coordinates and classes ----------------------------------------------

    def axis_of(self, interval) -> int:
        """The spatial-axis index of an equivalence class (addr / reg)."""
        raise NotImplementedError

    def class_key(self, interval) -> tuple[int, int]:
        """Hashable identity of a class: ``(axis, first_slot)``."""
        return (self.axis_of(interval), interval.first_slot)

    def coordinate(self, slot: int, axis: int, bit: int):
        """Build a raw fault coordinate from (slot, axis, bit)."""
        raise NotImplementedError

    def coordinate_axis(self, coordinate) -> int:
        """The spatial-axis index of a raw coordinate."""
        raise NotImplementedError

    def slot_coordinates(self, space, slot: int) -> Iterator:
        """All raw coordinates of one injection slot, in scan order."""
        raise NotImplementedError

    # -- experiments per class ------------------------------------------------
    #
    # The default hook implementations encode the classic def/use shape
    # (``bits`` experiments per class, one per bit, each standing for
    # one coordinate per covered slot) and are bit- and RNG-exact with
    # the pre-hook behaviour of the memory and register domains.
    # Domains with grouped or irregular classes (the PC domain's
    # illegal-target group) override them.

    def experiment_count(self, interval) -> int:
        """Representative experiments a live class needs."""
        return self.bits

    def experiment_index(self, interval, coordinate) -> int:
        """Index of the experiment standing for ``coordinate``.

        Inverse of :meth:`experiment_coordinate` up to equivalence:
        every coordinate of the class maps to the index of the
        representative whose outcome it shares.
        """
        return coordinate.bit

    def experiment_coordinate(self, interval, index: int):
        """The class's ``index``-th representative fault coordinate."""
        return self.coordinate(interval.injection_slot,
                               self.axis_of(interval), index)

    def experiment_slot_weights(self, interval) -> tuple[int, ...]:
        """Raw coordinates each experiment stands for, per covered slot.

        ``interval.length * sum(...)`` must equal
        ``interval.weight_bits`` — the Pitfall 1 weighting contract
        checked by the property suite.
        """
        return (1,) * self.experiment_count(interval)

    def interval_coordinate(self, interval, offset: int):
        """The ``offset``-th raw coordinate covered by a class.

        Enumerates the class's ``weight_bits`` coordinates in a fixed
        order; samplers use it to map uniform flat draws inside a class
        to concrete coordinates (Pitfall 2 uniformity).
        """
        slot_offset, bit = divmod(offset, self.bits)
        return self.coordinate(interval.first_slot + slot_offset,
                               self.axis_of(interval), bit)

    # -- injection ------------------------------------------------------------

    def inject(self, machine, coordinate) -> None:
        """Apply the fault to a machine paused at the injection slot."""
        raise NotImplementedError

    # -- criticality ----------------------------------------------------------

    def cell_critical(self, criticality, coordinate) -> bool:
        """Can the fault at ``coordinate`` ever influence the outcome?

        Queries a :class:`~.slicing.CriticalityMap` at the *point* the
        coordinate corrupts — the state after ``slot - 1`` instructions,
        visible to the ``slot``-th.  ``False`` is a proof that the
        experiment's outcome is exactly the golden outcome (see the
        soundness argument in :mod:`repro.faultspace.slicing`).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultDomain {self.name!r}>"


class MemoryDomain(FaultDomain):
    """The paper's fault model: single bit flips in main memory."""

    name = "memory"
    bits = 8

    def fault_space(self, golden) -> FaultSpace:
        return golden.fault_space

    def build_partition(self, golden) -> DefUsePartition:
        return golden.partition()

    def axis_of(self, interval: ByteInterval) -> int:
        return interval.addr

    def coordinate(self, slot: int, axis: int, bit: int) -> FaultCoordinate:
        return FaultCoordinate(slot=slot, addr=axis, bit=bit)

    def coordinate_axis(self, coordinate: FaultCoordinate) -> int:
        return coordinate.addr

    def slot_coordinates(self, space: FaultSpace,
                         slot: int) -> Iterator[FaultCoordinate]:
        for addr in range(space.ram_bytes):
            for bit in range(8):
                yield FaultCoordinate(slot=slot, addr=addr, bit=bit)

    def inject(self, machine, coordinate: FaultCoordinate) -> None:
        machine.flip_bit(coordinate.addr, coordinate.bit)

    def cell_critical(self, criticality,
                      coordinate: FaultCoordinate) -> bool:
        return criticality.byte_critical(coordinate.slot - 1,
                                         coordinate.addr)


class RegisterDomain(FaultDomain):
    """Section VI-B: single bit flips in the general-purpose registers."""

    name = "register"
    bits = REGISTER_BITS

    def fault_space(self, golden) -> RegisterFaultSpace:
        return RegisterFaultSpace(cycles=golden.cycles)

    def build_partition(self, golden) -> RegisterPartition:
        partition = RegisterPartition.from_pc_trace(
            golden.program.rom, golden.executed_pcs())
        partition.validate()
        return partition

    def axis_of(self, interval: RegisterInterval) -> int:
        return interval.reg

    def coordinate(self, slot: int, axis: int,
                   bit: int) -> RegisterFaultCoordinate:
        return RegisterFaultCoordinate(slot=slot, reg=axis, bit=bit)

    def coordinate_axis(self, coordinate: RegisterFaultCoordinate) -> int:
        return coordinate.reg

    def slot_coordinates(self, space: RegisterFaultSpace,
                         slot: int) -> Iterator[RegisterFaultCoordinate]:
        for reg in range(1, NUM_REGS):
            for bit in range(REGISTER_BITS):
                yield RegisterFaultCoordinate(slot=slot, reg=reg, bit=bit)

    def inject(self, machine, coordinate: RegisterFaultCoordinate) -> None:
        machine.flip_register_bit(coordinate.reg, coordinate.bit)

    def cell_critical(self, criticality,
                      coordinate: RegisterFaultCoordinate) -> bool:
        return criticality.reg_critical(coordinate.slot - 1,
                                        coordinate.reg)


class BurstDomain(FaultDomain):
    """Multi-bit upsets: ``width`` adjacent bits of one byte flip at once.

    The coordinate's ``bit`` field holds the burst *start* position
    (``0 .. 8-width``); the burst width is part of the domain name
    (``burst2`` / ``burst4``), which folds it into every campaign
    identity and section fingerprint automatically.
    """

    def __init__(self, width: int):
        self.width = width
        self.name = f"burst{width}"
        self.bits = burst_positions(width)

    def fault_space(self, golden) -> BurstFaultSpace:
        return BurstFaultSpace(cycles=golden.cycles,
                               ram_bytes=golden.fault_space.ram_bytes,
                               width=self.width)

    def build_partition(self, golden) -> BurstPartition:
        partition = BurstPartition.from_trace(golden.trace,
                                              self.fault_space(golden))
        partition.validate()
        return partition

    def axis_of(self, interval: BurstInterval) -> int:
        return interval.addr

    def coordinate(self, slot: int, axis: int, bit: int) -> FaultCoordinate:
        return FaultCoordinate(slot=slot, addr=axis, bit=bit)

    def coordinate_axis(self, coordinate: FaultCoordinate) -> int:
        return coordinate.addr

    def slot_coordinates(self, space: BurstFaultSpace,
                         slot: int) -> Iterator[FaultCoordinate]:
        for addr in range(space.ram_bytes):
            for start in range(space.positions):
                yield FaultCoordinate(slot=slot, addr=addr, bit=start)

    def inject(self, machine, coordinate: FaultCoordinate) -> None:
        for bit in range(coordinate.bit, coordinate.bit + self.width):
            machine.flip_bit(coordinate.addr, bit)

    def cell_critical(self, criticality,
                      coordinate: FaultCoordinate) -> bool:
        # Criticality is tracked per byte: if the byte cannot influence
        # the outcome, neither can any burst inside it.
        return criticality.byte_critical(coordinate.slot - 1,
                                         coordinate.addr)


class StuckAtDomain(FaultDomain):
    """Stuck-at-until-write faults: a RAM bit forced to 0/1 (DAVOS)."""

    name = "stuck"
    bits = STUCK_BITS
    #: Arming the latch twice does not cancel it.
    involutive = False
    #: The latch outlives the injection instant.
    persistent = True

    def fault_space(self, golden) -> StuckAtFaultSpace:
        return StuckAtFaultSpace(cycles=golden.cycles,
                                 ram_bytes=golden.fault_space.ram_bytes)

    def build_partition(self, golden) -> StuckAtPartition:
        partition = StuckAtPartition.from_trace(golden.trace,
                                                self.fault_space(golden))
        partition.validate()
        return partition

    def axis_of(self, interval: StuckAtInterval) -> int:
        return interval.addr

    def coordinate(self, slot: int, axis: int,
                   bit: int) -> StuckAtCoordinate:
        return StuckAtCoordinate(slot=slot, addr=axis, bit=bit)

    def coordinate_axis(self, coordinate: StuckAtCoordinate) -> int:
        return coordinate.addr

    def slot_coordinates(self, space: StuckAtFaultSpace,
                         slot: int) -> Iterator[StuckAtCoordinate]:
        for addr in range(space.ram_bytes):
            for bit in range(STUCK_BITS):
                yield StuckAtCoordinate(slot=slot, addr=addr, bit=bit)

    def inject(self, machine, coordinate: StuckAtCoordinate) -> None:
        machine.stuck_at(coordinate.addr, coordinate.bitpos,
                         coordinate.value)

    def cell_critical(self, criticality,
                      coordinate: StuckAtCoordinate) -> bool:
        # The backward slice argues about a transient corruption of the
        # state *at one point*; an armed latch keeps corrupting every
        # later re-read of the byte, so the slice proof does not apply.
        return True


class PCDomain(FaultDomain):
    """Single bit flips in the program counter (Section VI-B's list)."""

    name = "pc"
    bits = 1  # every PC class has exactly one representative experiment
    #: Lockstep lanes share one PC; scalar execution only.
    batchable = False
    #: A flipped PC transfers control anywhere in the ROM.
    control_hazard = True

    def fault_space(self, golden) -> PCFaultSpace:
        return PCFaultSpace(cycles=golden.cycles)

    def build_partition(self, golden) -> PCPartition:
        partition = PCPartition.from_pc_trace(
            len(golden.program.rom), golden.executed_pcs())
        partition.validate()
        return partition

    def axis_of(self, interval: PCInterval) -> int:
        return interval.axis

    def coordinate(self, slot: int, axis: int,
                   bit: int) -> PCFaultCoordinate:
        # Journal rows key grouped classes by the sentinel axis and the
        # experiment index; the physical bit lives in the coordinate.
        return PCFaultCoordinate(slot=slot, bit=bit)

    def coordinate_axis(self, coordinate: PCFaultCoordinate) -> int:
        # A raw PC coordinate's class axis depends on the golden pc at
        # its slot (partition state); as a pure journal/sort key the
        # physical bit is deterministic and collision-free per slot.
        return coordinate.bit

    def slot_coordinates(self, space: PCFaultSpace,
                         slot: int) -> Iterator[PCFaultCoordinate]:
        for bit in range(PC_BITS):
            yield PCFaultCoordinate(slot=slot, bit=bit)

    # -- grouped-class experiment hooks ---------------------------------------

    def experiment_count(self, interval: PCInterval) -> int:
        return 1

    def experiment_index(self, interval: PCInterval, coordinate) -> int:
        return 0

    def experiment_coordinate(self, interval: PCInterval, index: int):
        if index != 0:
            raise IndexError(f"PC classes have one experiment, not {index}")
        return PCFaultCoordinate(slot=interval.slot,
                                 bit=interval.members[0])

    def experiment_slot_weights(self,
                                interval: PCInterval) -> tuple[int, ...]:
        return (len(interval.members),)

    def interval_coordinate(self, interval: PCInterval, offset: int):
        return PCFaultCoordinate(slot=interval.slot,
                                 bit=interval.members[offset])

    def inject(self, machine, coordinate: PCFaultCoordinate) -> None:
        machine.flip_pc_bit(coordinate.bit)

    def cell_critical(self, criticality,
                      coordinate: PCFaultCoordinate) -> bool:
        # The criticality map has no PC timeline — the PC steers every
        # subsequent instruction, so no pre-skip proof exists.
        return True


#: The built-in domains, as shared stateless singletons.
MEMORY = MemoryDomain()
REGISTER = RegisterDomain()
BURST2 = BurstDomain(2)
BURST4 = BurstDomain(4)
STUCK = StuckAtDomain()
PC = PCDomain()

#: Registry of available fault domains, keyed by name.  Third-party
#: domains register here to become usable via ``domain="<name>"`` in
#: every campaign entry point (and via ``--domain`` on the CLI).
DOMAINS: dict[str, FaultDomain] = {
    MEMORY.name: MEMORY,
    REGISTER.name: REGISTER,
    BURST2.name: BURST2,
    BURST4.name: BURST4,
    STUCK.name: STUCK,
    PC.name: PC,
}


def get_domain(domain: FaultDomain | str | None) -> FaultDomain:
    """Resolve a domain argument: an instance, a registry name, or None.

    ``None`` means the default (memory) domain, preserving the behaviour
    of every pre-domain API.
    """
    if domain is None:
        return MEMORY
    if isinstance(domain, FaultDomain):
        return domain
    try:
        return DOMAINS[domain]
    except KeyError:
        available = ", ".join(sorted(DOMAINS))
        raise ValueError(
            f"unknown fault domain {domain!r}; available: {available}"
        ) from None
