"""Fault domains: one campaign stack, many fault models (Section VI-B).

The paper restricts its fault model to main memory, but Section VI-B
argues the three pitfalls and their remedies apply to *any* state whose
reads and writes can be traced — CPU registers, caches, microarchitectural
state.  A :class:`FaultDomain` bundles everything the campaign engine
needs to know about one such fault model:

* the **fault space** spanned by a golden run (``Δt × Δm`` memory bits,
  ``Δt × 15 regs × 32 bits``, ...);
* the **def/use partition builder** that prunes that space into
  equivalence classes;
* the **class key** and **coordinate factory** that connect intervals,
  raw coordinates and campaign dictionaries;
* the **injector** that applies a fault coordinate to a paused machine.

The generic runners (:mod:`repro.campaign.runner`), the parallel sharder
(:mod:`repro.campaign.parallel`), the samplers
(:mod:`repro.faultspace.sampling`), persistence and metrics are all
written against this interface, so a new fault model (multi-bit faults,
instruction operands, ...) is one subclass plus a :data:`DOMAINS` entry —
not another fork of the campaign stack.

Domains are stateless singletons (:data:`MEMORY`, :data:`REGISTER`);
they pickle trivially, which the multi-process campaign engine relies
on.  ``get_domain`` accepts either a domain instance or its registry
name, so every public API takes ``domain="register"`` as a convenience.
"""

from __future__ import annotations

from typing import Iterator

from ..isa.isa import NUM_REGS
from .defuse import ByteInterval, DefUsePartition
from .model import FaultCoordinate, FaultSpace
from .registers import (
    REGISTER_BITS,
    RegisterFaultCoordinate,
    RegisterFaultSpace,
    RegisterInterval,
    RegisterPartition,
)


class FaultDomain:
    """Interface one fault model exposes to the generic campaign stack.

    Subclasses define class attributes ``name`` (registry key, also used
    for persistence) and ``bits`` (experiments per live equivalence
    class — the bit width of one unit on the domain's spatial axis), and
    implement every method below.  Instances must be stateless: the
    parallel engine ships them to worker processes by name.
    """

    #: Registry name, also stored in :class:`CampaignSummary.domain`.
    name: str = ""
    #: Bits per spatial unit == experiments per live class.
    bits: int = 0

    # -- spaces and partitions ------------------------------------------------

    def fault_space(self, golden):
        """The fault space one golden run spans in this domain."""
        raise NotImplementedError

    def build_partition(self, golden):
        """Def/use-prune the domain's fault space (validated)."""
        raise NotImplementedError

    # -- coordinates and classes ----------------------------------------------

    def axis_of(self, interval) -> int:
        """The spatial-axis index of an equivalence class (addr / reg)."""
        raise NotImplementedError

    def class_key(self, interval) -> tuple[int, int]:
        """Hashable identity of a class: ``(axis, first_slot)``."""
        return (self.axis_of(interval), interval.first_slot)

    def coordinate(self, slot: int, axis: int, bit: int):
        """Build a raw fault coordinate from (slot, axis, bit)."""
        raise NotImplementedError

    def coordinate_axis(self, coordinate) -> int:
        """The spatial-axis index of a raw coordinate."""
        raise NotImplementedError

    def slot_coordinates(self, space, slot: int) -> Iterator:
        """All raw coordinates of one injection slot, in scan order."""
        raise NotImplementedError

    # -- injection ------------------------------------------------------------

    def inject(self, machine, coordinate) -> None:
        """Apply the fault to a machine paused at the injection slot."""
        raise NotImplementedError

    # -- criticality ----------------------------------------------------------

    def cell_critical(self, criticality, coordinate) -> bool:
        """Can the fault at ``coordinate`` ever influence the outcome?

        Queries a :class:`~.slicing.CriticalityMap` at the *point* the
        coordinate corrupts — the state after ``slot - 1`` instructions,
        visible to the ``slot``-th.  ``False`` is a proof that the
        experiment's outcome is exactly the golden outcome (see the
        soundness argument in :mod:`repro.faultspace.slicing`).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultDomain {self.name!r}>"


class MemoryDomain(FaultDomain):
    """The paper's fault model: single bit flips in main memory."""

    name = "memory"
    bits = 8

    def fault_space(self, golden) -> FaultSpace:
        return golden.fault_space

    def build_partition(self, golden) -> DefUsePartition:
        return golden.partition()

    def axis_of(self, interval: ByteInterval) -> int:
        return interval.addr

    def coordinate(self, slot: int, axis: int, bit: int) -> FaultCoordinate:
        return FaultCoordinate(slot=slot, addr=axis, bit=bit)

    def coordinate_axis(self, coordinate: FaultCoordinate) -> int:
        return coordinate.addr

    def slot_coordinates(self, space: FaultSpace,
                         slot: int) -> Iterator[FaultCoordinate]:
        for addr in range(space.ram_bytes):
            for bit in range(8):
                yield FaultCoordinate(slot=slot, addr=addr, bit=bit)

    def inject(self, machine, coordinate: FaultCoordinate) -> None:
        machine.flip_bit(coordinate.addr, coordinate.bit)

    def cell_critical(self, criticality,
                      coordinate: FaultCoordinate) -> bool:
        return criticality.byte_critical(coordinate.slot - 1,
                                         coordinate.addr)


class RegisterDomain(FaultDomain):
    """Section VI-B: single bit flips in the general-purpose registers."""

    name = "register"
    bits = REGISTER_BITS

    def fault_space(self, golden) -> RegisterFaultSpace:
        return RegisterFaultSpace(cycles=golden.cycles)

    def build_partition(self, golden) -> RegisterPartition:
        partition = RegisterPartition.from_pc_trace(
            golden.program.rom, golden.executed_pcs())
        partition.validate()
        return partition

    def axis_of(self, interval: RegisterInterval) -> int:
        return interval.reg

    def coordinate(self, slot: int, axis: int,
                   bit: int) -> RegisterFaultCoordinate:
        return RegisterFaultCoordinate(slot=slot, reg=axis, bit=bit)

    def coordinate_axis(self, coordinate: RegisterFaultCoordinate) -> int:
        return coordinate.reg

    def slot_coordinates(self, space: RegisterFaultSpace,
                         slot: int) -> Iterator[RegisterFaultCoordinate]:
        for reg in range(1, NUM_REGS):
            for bit in range(REGISTER_BITS):
                yield RegisterFaultCoordinate(slot=slot, reg=reg, bit=bit)

    def inject(self, machine, coordinate: RegisterFaultCoordinate) -> None:
        machine.flip_register_bit(coordinate.reg, coordinate.bit)

    def cell_critical(self, criticality,
                      coordinate: RegisterFaultCoordinate) -> bool:
        return criticality.reg_critical(coordinate.slot - 1,
                                        coordinate.reg)


#: The two built-in domains, as shared stateless singletons.
MEMORY = MemoryDomain()
REGISTER = RegisterDomain()

#: Registry of available fault domains, keyed by name.  Third-party
#: domains register here to become usable via ``domain="<name>"`` in
#: every campaign entry point (and via ``--domain`` on the CLI).
DOMAINS: dict[str, FaultDomain] = {
    MEMORY.name: MEMORY,
    REGISTER.name: REGISTER,
}


def get_domain(domain: FaultDomain | str | None) -> FaultDomain:
    """Resolve a domain argument: an instance, a registry name, or None.

    ``None`` means the default (memory) domain, preserving the behaviour
    of every pre-domain API.
    """
    if domain is None:
        return MEMORY
    if isinstance(domain, FaultDomain):
        return domain
    try:
        return DOMAINS[domain]
    except KeyError:
        available = ", ".join(sorted(DOMAINS))
        raise ValueError(
            f"unknown fault domain {domain!r}; available: {available}"
        ) from None
