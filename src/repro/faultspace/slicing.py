"""Backward criticality slicing of the golden run.

Def/use pruning (Section III-C) asks a *syntactic* question about each
fault-space cell: is the next access a read?  This module asks the
stronger *semantic* question: can a corrupt value in this cell, at this
point in time, ever influence anything observable?  A cell can be read
— even read many times — and still be provably benign, because the
loaded value only flows into computations whose results are themselves
never observed (dead stores, scratch registers, diagnostic counters
that are never printed).

The analysis is a single backward pass over the golden instruction
trace that tracks, per register and per RAM byte, whether the cell is
**critical**: whether its value at that point can reach one of the
observable sinks before the run ends.  The sinks are exactly the ways
a corrupt value can change an experiment's classification on this
machine model:

* ``out`` operands — serial output is the failure oracle;
* branch and ``jalr`` operands — control flow decides *which*
  instructions run, so any divergence voids the analysis;
* load/store **address** operands — a corrupt address reads or writes
  the wrong bytes and can trap (``MemoryFault``/``AlignmentFault``);
* ``divu``/``remu`` divisors — a corrupt divisor can trap
  (``ArithmeticTrap``) even when the quotient is dead.

``detect`` takes no operands (its code is an immediate) and ``halt``
takes none either; both are covered by the control-flow sink — they
fire iff execution reaches them.

Walking backward, an instruction *kills* the criticality of the
register or bytes it writes (their prior value is overwritten without
having been observed) and *generates* criticality for its source
operands when — and only when — the destination was critical.  Sink
operands are unconditionally critical.  The result is, per cell, a
compact timeline of criticality toggles queryable at any point.

**Soundness.**  Suppose a cell is non-critical at point ``p`` (the
state after ``p`` golden instructions) and its value is corrupted
there.  By induction over the remaining golden instructions: the
corrupt value never reaches a branch/``jalr`` operand, so the faulty
run executes the same instruction sequence; never reaches an address
operand or divisor, so no instruction traps or touches different
bytes; never reaches an ``out`` operand, so the serial output is
byte-identical; and ``detect``/``halt`` fire at the same cycles
because control flow is identical.  Corruption can spread — loads may
copy it into registers, stores back into memory — but the kill/gen
rules propagate criticality backward through exactly those moves, so
every cell the corruption spreads *to* was itself non-critical.  The
run therefore halts at the golden cycle count with the golden output
and the golden detections: the outcome is exactly the golden outcome.

This strictly subsumes def/use deadness: a byte whose next access is a
write (or that is never accessed again) is killed at that write before
it can generate anything, hence non-critical.  The converse fails —
that is the whole point.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..isa.isa import ACCESS_WIDTH, NUM_REGS, Op

#: Opcode groups driving the backward kill/gen rules.  Shifts mask
#: their amount operand (``& 31``) and cannot trap; ``divu``/``remu``
#: are separated because a zero divisor traps.
_ALU_RR = frozenset({
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.SRA,
    Op.SLT, Op.SLTU, Op.MUL,
})
_ALU_RI = frozenset({
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SRAI,
    Op.SLTI, Op.SLTIU,
})
_LOADS = frozenset({Op.LW, Op.LH, Op.LHU, Op.LB, Op.LBU})
_STORES = frozenset({Op.SW, Op.SH, Op.SB})
_BRANCHES = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU})


@dataclass(frozen=True)
class CriticalityMap:
    """Per-cell criticality timelines of one golden run.

    ``reg_timelines[r]`` / ``byte_timelines[addr]`` is a pair
    ``(value_at_point_0, boundaries)``: the cell's criticality in the
    initial state (before the first instruction) and the ascending
    cycles at which it toggles — a boundary at cycle ``c`` separates
    point ``c - 1`` from point ``c``, where *point* ``p`` denotes the
    machine state after ``p`` executed instructions.

    A fault injected at slot ``t`` corrupts the state at point
    ``t - 1`` (it is visible to the ``t``-th instruction), so callers
    must query the *point*, not the slot — the one-cycle difference
    decides exactly the faults whose first observation is the very
    next instruction.
    """

    reg_timelines: tuple[tuple[bool, tuple[int, ...]], ...]
    byte_timelines: tuple[tuple[bool, tuple[int, ...]], ...]

    @staticmethod
    def _value(timeline: tuple[bool, tuple[int, ...]], point: int) -> bool:
        base, boundaries = timeline
        return base ^ bool(bisect_right(boundaries, point) & 1)

    def byte_critical(self, point: int, addr: int) -> bool:
        """Can corrupting RAM byte ``addr`` at ``point`` be observed?"""
        return self._value(self.byte_timelines[addr], point)

    def reg_critical(self, point: int, reg: int) -> bool:
        """Can corrupting register ``reg`` at ``point`` be observed?"""
        return self._value(self.reg_timelines[reg], point)


def backward_slice(golden) -> CriticalityMap:
    """Compute the criticality timelines of ``golden`` (one backward pass).

    Uses the recorded pc trace (falling back to
    :meth:`~repro.campaign.golden.GoldenRun.executed_pcs` for hand-built
    golden runs) and the memory trace for effective addresses, so no
    re-execution is needed.  Cost is O(Δt) time and O(toggles) space —
    a few milliseconds even for the largest bundled benchmarks.
    """
    rom = golden.program.rom
    pcs = golden.executed_pcs()
    ram_size = golden.program.ram_size
    # Effective address per slot, reconstructed from the per-byte
    # memory trace (one instruction per slot accesses one contiguous
    # range, so the minimum byte address is the base; the width comes
    # from the opcode).  Slot 0 is the machine-reset def of every byte.
    base_addr: dict[int, int] = {}
    for addr, events in golden.trace.events.items():
        for event in events:
            slot = event.slot
            if slot and addr < base_addr.get(slot, ram_size):
                base_addr[slot] = addr

    crit_regs = [False] * NUM_REGS
    crit_bytes = bytearray(ram_size)
    reg_bounds: list[list[int]] = [[] for _ in range(NUM_REGS)]
    byte_bounds: list[list[int]] = [[] for _ in range(ram_size)]

    def set_reg(reg: int, value: bool, cycle: int) -> None:
        # r0 is hardwired to zero: it cannot hold a corrupt value and
        # writes to it are discarded, so it never carries criticality.
        if reg and crit_regs[reg] != value:
            crit_regs[reg] = value
            reg_bounds[reg].append(cycle)

    def set_byte(addr: int, value: bool, cycle: int) -> None:
        if crit_bytes[addr] != value:
            crit_bytes[addr] = value
            byte_bounds[addr].append(cycle)

    for cycle in range(len(pcs), 0, -1):
        inst = rom[pcs[cycle - 1]]
        op = inst.op
        if op in _ALU_RR:
            if crit_regs[inst.rd]:
                set_reg(inst.rd, False, cycle)
                set_reg(inst.rs1, True, cycle)
                set_reg(inst.rs2, True, cycle)
        elif op in _ALU_RI:
            if crit_regs[inst.rd]:
                set_reg(inst.rd, False, cycle)
                set_reg(inst.rs1, True, cycle)
        elif op in _LOADS:
            generate = crit_regs[inst.rd]
            set_reg(inst.rd, False, cycle)
            set_reg(inst.rs1, True, cycle)  # address sink
            if generate:
                addr = base_addr[cycle]
                for offset in range(ACCESS_WIDTH[op]):
                    set_byte(addr + offset, True, cycle)
        elif op in _STORES:
            addr = base_addr[cycle]
            generate = False
            for offset in range(ACCESS_WIDTH[op]):
                if crit_bytes[addr + offset]:
                    generate = True
                set_byte(addr + offset, False, cycle)
            set_reg(inst.rs1, True, cycle)  # address sink
            if generate:
                set_reg(inst.rs2, True, cycle)
        elif op in _BRANCHES:
            set_reg(inst.rs1, True, cycle)  # control sinks
            set_reg(inst.rs2, True, cycle)
        elif op is Op.JAL:
            set_reg(inst.rd, False, cycle)  # rd <- pc, a constant here
        elif op is Op.JALR:
            set_reg(inst.rd, False, cycle)
            set_reg(inst.rs1, True, cycle)  # control sink
        elif op is Op.LUI:
            set_reg(inst.rd, False, cycle)
        elif op is Op.OUT:
            set_reg(inst.rs1, True, cycle)  # output sink
        elif op in (Op.DIVU, Op.REMU):
            if crit_regs[inst.rd]:
                set_reg(inst.rd, False, cycle)
                set_reg(inst.rs1, True, cycle)
            set_reg(inst.rs2, True, cycle)  # trap sink (division by zero)
        # DETECT, HALT, NOP: no operands, no data flow.

    # The walk appended boundaries in descending order; the final
    # kill/gen state is the criticality at point 0.
    return CriticalityMap(
        reg_timelines=tuple(
            (crit_regs[reg], tuple(reversed(reg_bounds[reg])))
            for reg in range(NUM_REGS)),
        byte_timelines=tuple(
            (bool(crit_bytes[addr]), tuple(reversed(byte_bounds[addr])))
            for addr in range(ram_size)),
    )
