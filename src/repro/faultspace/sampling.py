"""Fault-space samplers, generic over fault domains.

Three samplers are provided:

* :class:`UniformSampler` — the correct one: draws coordinates uniformly
  from the *raw, unpruned* fault space (Section III-B / III-E).  When
  combined with def/use pruning, several samples may land in the same
  equivalence class; only one experiment is conducted per class, but
  every sample counts in the estimate.
* :class:`LiveOnlySampler` — the Pitfall 3 Corollary 1 refinement:
  uniform over the live subset of the space, extrapolated against the
  live weight ``w'``.
* :class:`BiasedClassSampler` — deliberately wrong, kept to *demonstrate*
  Pitfall 2: it samples uniformly over pruned equivalence classes,
  ignoring their sizes.  Its estimates are biased whenever class size
  correlates with outcome.

All three are deterministic given a seed and work for any registered
:class:`~repro.faultspace.domain.FaultDomain` — the domain supplies the
coordinate factory, the spatial-axis accessor and the per-class bit
width, so memory and register campaigns share one sampling stack.

Every sampler also exposes its RNG *position* (:meth:`SeededSampler.\
rng_state` / :meth:`SeededSampler.set_rng_state`) as a JSON string.  The
experiment journal records the post-draw position so that a resumed
campaign can re-draw from the seed and *verify* it reproduced exactly
the sample sequence the journaled experiments belong to — a changed
seed, sampler or sample count is detected instead of silently mixing
two campaigns.
"""

from __future__ import annotations

import bisect
import json
import random
from dataclasses import dataclass

from .defuse import LIVE
from .domain import FaultDomain, MEMORY, get_domain


class SeededSampler:
    """Base for deterministic samplers: seeded RNG with journalable state.

    ``random.Random`` state is a nested tuple of ints; it is encoded to
    JSON (tuples become lists) so the experiment journal can store it as
    text, and decoded back on restore.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def rng_state(self) -> str:
        """The RNG position as a deterministic JSON string."""
        version, internal, gauss_next = self._rng.getstate()
        return json.dumps([version, list(internal), gauss_next])

    def set_rng_state(self, state: str) -> None:
        """Restore an RNG position captured by :meth:`rng_state`."""
        version, internal, gauss_next = json.loads(state)
        self._rng.setstate((version, tuple(internal), gauss_next))


@dataclass(frozen=True)
class Sample:
    """One drawn sample: the raw coordinate and its equivalence class.

    ``addr`` is the spatial-axis index of the class the sample fell
    into: the byte address in the memory domain, the register number in
    the register domain.
    """

    coordinate: object
    addr: int
    class_first_slot: int
    class_kind: str

    @property
    def class_key(self) -> tuple[int, int]:
        """Hashable identity of the class the sample fell into."""
        return (self.addr, self.class_first_slot)


class UniformSampler(SeededSampler):
    """Uniform sampling (with replacement) from the raw fault space."""

    def __init__(self, fault_space, *, seed: int = 0,
                 domain: FaultDomain | str = MEMORY):
        super().__init__(seed)
        self.fault_space = fault_space
        self.domain = get_domain(domain)

    def draw(self, count: int) -> list:
        """Draw ``count`` coordinates uniformly from the raw space."""
        if count < 0:
            raise ValueError("count must be >= 0")
        size = self.fault_space.size
        return [self.fault_space.coordinate(self._rng.randrange(size))
                for _ in range(count)]

    def draw_classified(self, count: int, partition) -> list[Sample]:
        """Draw ``count`` samples and map each to its def/use class."""
        axis_of = self.domain.axis_of
        samples = []
        for coord in self.draw(count):
            interval = partition.locate(coord)
            samples.append(Sample(
                coordinate=coord,
                addr=axis_of(interval),
                class_first_slot=interval.first_slot,
                class_kind=interval.kind,
            ))
        return samples


class LiveOnlySampler(SeededSampler):
    """Uniform sampling restricted to the live part of the fault space.

    Implements the refinement of Pitfall 3, Corollary 1: since "No
    Effect" outcomes are irrelevant for the comparison metric, sampling
    can skip equivalence classes known a priori to be benign, shrinking
    the population from ``w`` to ``w' = partition.live_weight``.
    Extrapolation must then use ``w'`` as the population size.
    """

    def __init__(self, partition, *, seed: int = 0,
                 domain: FaultDomain | str = MEMORY):
        super().__init__(seed)
        self.partition = partition
        self.domain = get_domain(domain)
        self._live = partition.live_classes()
        # Cumulative weights over live classes enable O(log n) draws.
        self._cumulative: list[int] = []
        total = 0
        for interval in self._live:
            total += interval.weight_bits
            self._cumulative.append(total)
        self.population = total  # == partition.live_weight

    def draw_classified(self, count: int) -> list[Sample]:
        """Draw ``count`` samples uniformly from live coordinates."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if self.population == 0:
            raise ValueError("no live coordinates to sample from")
        domain = self.domain
        samples = []
        for _ in range(count):
            flat = self._rng.randrange(self.population)
            idx = bisect.bisect_right(self._cumulative, flat)
            interval = self._live[idx]
            offset = flat - (self._cumulative[idx] - interval.weight_bits)
            coord = domain.interval_coordinate(interval, offset)
            samples.append(Sample(
                coordinate=coord,
                addr=domain.axis_of(interval),
                class_first_slot=interval.first_slot,
                class_kind=interval.kind,
            ))
        return samples


class BiasedClassSampler(SeededSampler):
    """The Pitfall 2 anti-pattern: uniform over *classes*, not coordinates.

    Each draw picks a live equivalence class uniformly at random
    (regardless of its size) and injects at its representative
    coordinate.  Kept in the library purely so the bias can be measured
    and demonstrated — in every fault domain; do not use for real
    campaigns.
    """

    def __init__(self, partition, *, seed: int = 0,
                 domain: FaultDomain | str = MEMORY):
        super().__init__(seed)
        self.partition = partition
        self.domain = get_domain(domain)
        self._live = partition.live_classes()
        if not self._live:
            raise ValueError("no live classes to sample from")

    def draw_classified(self, count: int) -> list[Sample]:
        if count < 0:
            raise ValueError("count must be >= 0")
        domain = self.domain
        samples = []
        for _ in range(count):
            interval = self._rng.choice(self._live)
            idx = self._rng.randrange(domain.experiment_count(interval))
            coord = domain.experiment_coordinate(interval, idx)
            samples.append(Sample(
                coordinate=coord,
                addr=domain.axis_of(interval),
                class_first_slot=interval.first_slot,
                class_kind=LIVE,
            ))
        return samples
