"""Fault-space modeling: the cycles × bits grid, def/use pruning, sampling."""

from .defuse import ByteInterval, DefUsePartition, DEAD, LIVE
from .model import FaultCoordinate, FaultSpace
from .regions import Region, RegionMap
from .registers import (
    REGISTER_BITS,
    RegisterFaultCoordinate,
    RegisterFaultSpace,
    RegisterInterval,
    RegisterPartition,
    register_reads,
    register_writes,
)
from .sampling import (
    BiasedClassSampler,
    LiveOnlySampler,
    Sample,
    UniformSampler,
)

__all__ = [
    "BiasedClassSampler",
    "REGISTER_BITS",
    "RegisterFaultCoordinate",
    "RegisterFaultSpace",
    "RegisterInterval",
    "RegisterPartition",
    "register_reads",
    "register_writes",
    "ByteInterval",
    "DEAD",
    "DefUsePartition",
    "FaultCoordinate",
    "FaultSpace",
    "LIVE",
    "LiveOnlySampler",
    "Region",
    "RegionMap",
    "Sample",
    "UniformSampler",
]
