"""Fault-space modeling: the cycles × bits grid, def/use pruning, sampling."""

from .defuse import ByteInterval, DefUsePartition, DEAD, LIVE
from .domain import (
    DOMAINS,
    FaultDomain,
    MEMORY,
    MemoryDomain,
    REGISTER,
    RegisterDomain,
    get_domain,
)
from .model import FaultCoordinate, FaultSpace
from .regions import Region, RegionMap
from .registers import (
    REGISTER_BITS,
    RegisterFaultCoordinate,
    RegisterFaultSpace,
    RegisterInterval,
    RegisterPartition,
    register_reads,
    register_writes,
)
from .slicing import CriticalityMap, backward_slice
from .sampling import (
    BiasedClassSampler,
    LiveOnlySampler,
    Sample,
    SeededSampler,
    UniformSampler,
)

__all__ = [
    "BiasedClassSampler",
    "DOMAINS",
    "FaultDomain",
    "MEMORY",
    "MemoryDomain",
    "REGISTER",
    "RegisterDomain",
    "get_domain",
    "REGISTER_BITS",
    "RegisterFaultCoordinate",
    "RegisterFaultSpace",
    "RegisterInterval",
    "RegisterPartition",
    "register_reads",
    "register_writes",
    "ByteInterval",
    "CriticalityMap",
    "DEAD",
    "DefUsePartition",
    "backward_slice",
    "FaultCoordinate",
    "FaultSpace",
    "LIVE",
    "LiveOnlySampler",
    "Region",
    "RegionMap",
    "Sample",
    "SeededSampler",
    "UniformSampler",
]
