"""Fault-space modeling: the cycles × bits grid, def/use pruning, sampling."""

from .defuse import ByteInterval, DefUsePartition, DEAD, LIVE
from .domain import (
    DOMAINS,
    FaultDomain,
    MEMORY,
    MemoryDomain,
    REGISTER,
    RegisterDomain,
    get_domain,
)
from .model import FaultCoordinate, FaultSpace
from .regions import Region, RegionMap
from .registers import (
    REGISTER_BITS,
    RegisterFaultCoordinate,
    RegisterFaultSpace,
    RegisterInterval,
    RegisterPartition,
    register_reads,
    register_writes,
)
from .sections import (
    FINGERPRINT_VERSION,
    Section,
    SectionMap,
    aggregate_section_counts,
    build_section_map,
    section_weighted_counts,
)
from .slicing import CriticalityMap, backward_slice
from .sampling import (
    BiasedClassSampler,
    LiveOnlySampler,
    Sample,
    SeededSampler,
    UniformSampler,
)

__all__ = [
    "BiasedClassSampler",
    "DOMAINS",
    "FaultDomain",
    "MEMORY",
    "MemoryDomain",
    "REGISTER",
    "RegisterDomain",
    "get_domain",
    "REGISTER_BITS",
    "RegisterFaultCoordinate",
    "RegisterFaultSpace",
    "RegisterInterval",
    "RegisterPartition",
    "register_reads",
    "register_writes",
    "ByteInterval",
    "CriticalityMap",
    "DEAD",
    "DefUsePartition",
    "FINGERPRINT_VERSION",
    "Section",
    "SectionMap",
    "aggregate_section_counts",
    "backward_slice",
    "build_section_map",
    "section_weighted_counts",
    "FaultCoordinate",
    "FaultSpace",
    "LIVE",
    "LiveOnlySampler",
    "Region",
    "RegionMap",
    "Sample",
    "SeededSampler",
    "UniformSampler",
]
