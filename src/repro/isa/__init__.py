"""Deterministic RISC machine substrate: ISA, assembler, CPU, tracing.

This package implements the paper's machine model (Section II-C): a
simple in-order RISC CPU with one cycle per instruction, executing from
fault-immune ROM, with a flat byte-addressable RAM as the fault space.
"""

from .assembler import Assembler, Program, assemble, DEFAULT_RAM_SIZE
from .cpu import Machine, MachineState
from .errors import (
    AlignmentFault,
    ArithmeticTrap,
    AssemblyError,
    CPUException,
    HaltedMachine,
    IllegalInstruction,
    IllegalPC,
    IsaError,
    MemoryFault,
)
from .isa import (
    ACCESS_WIDTH,
    Instruction,
    LINK_REG,
    LOAD_OPS,
    NUM_REGS,
    Op,
    STACK_REG,
    STORE_OPS,
    signed8,
    signed16,
    signed32,
)
from .tracing import AccessEvent, MemoryTrace, READ, WRITE

__all__ = [
    "ACCESS_WIDTH",
    "AccessEvent",
    "AlignmentFault",
    "ArithmeticTrap",
    "Assembler",
    "AssemblyError",
    "CPUException",
    "DEFAULT_RAM_SIZE",
    "HaltedMachine",
    "IllegalInstruction",
    "IllegalPC",
    "Instruction",
    "IsaError",
    "LINK_REG",
    "LOAD_OPS",
    "Machine",
    "MachineState",
    "MemoryFault",
    "MemoryTrace",
    "NUM_REGS",
    "Op",
    "Program",
    "READ",
    "STACK_REG",
    "STORE_OPS",
    "WRITE",
    "assemble",
    "signed16",
    "signed32",
    "signed8",
]
