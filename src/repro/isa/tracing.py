"""Memory-access tracing for golden runs.

The def/use fault-space pruning of Section III-C needs, for every RAM
byte, the ordered list of read/write accesses with their cycle stamps.
:class:`MemoryTrace` records exactly that while a golden run executes.

Time is measured in *injection slots*: slot ``t`` (1-based) denotes the
point in time immediately before the ``t``-th executed instruction.  An
access performed by the ``t``-th instruction is stamped with slot ``t``;
a fault injected at slot ``t`` is visible to that access.  Machine reset
(loading the data image and zero-filling RAM) counts as a *def at slot 0*
of every byte, mirroring the paper's treatment of program load.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Event kinds recorded per byte.
READ = 0
WRITE = 1


@dataclass
class AccessEvent:
    """One access to one byte: ``slot`` when it happened, and its kind."""

    slot: int
    kind: int  # READ or WRITE

    @property
    def is_read(self) -> bool:
        return self.kind == READ

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE


@dataclass
class MemoryTrace:
    """Per-byte access log of one deterministic benchmark run.

    ``events[addr]`` is the chronologically ordered list of accesses to
    byte ``addr``.  ``total_slots`` is set when the run finishes and
    equals the benchmark's runtime Δt in cycles.
    """

    events: dict[int, list[AccessEvent]] = field(default_factory=dict)
    total_slots: int = 0

    def record(self, slot: int, addr: int, width: int, kind: int) -> None:
        """Record an access of ``width`` bytes starting at ``addr``."""
        for offset in range(width):
            byte_events = self.events.setdefault(addr + offset, [])
            byte_events.append(AccessEvent(slot, kind))

    def finish(self, total_slots: int) -> None:
        self.total_slots = total_slots

    def accesses(self, addr: int) -> list[AccessEvent]:
        """All accesses to byte ``addr`` (empty list if never touched)."""
        return self.events.get(addr, [])

    @property
    def touched_bytes(self) -> int:
        """Number of distinct RAM bytes the run accessed."""
        return len(self.events)

    @property
    def access_count(self) -> int:
        """Total number of byte-level access events."""
        return sum(len(ev) for ev in self.events.values())
