"""Instruction-set definition for the simple RISC machine.

The machine follows the paper's model (Section II-C): a classic in-order
RISC CPU, one cycle per instruction, executing from fault-immune ROM, with
a single flat byte-addressable RAM as the only fault-susceptible state.

The instruction set is a small RV32I-flavoured load/store ISA:

* 16 general-purpose 32-bit registers ``r0``–``r15``; ``r0`` is hardwired
  to zero (writes to it are discarded).  By software convention ``r14`` is
  the link register (``ra``) and ``r15`` the stack pointer (``sp``); the
  assembler accepts the aliases ``ra``/``sp``/``zero``.
* Register-register ALU ops, register-immediate ALU ops, word/half/byte
  loads and stores, conditional branches, ``jal``/``jalr``, and a few
  system instructions (``out``, ``detect``, ``halt``, ``nop``).

``out`` writes the low byte of a register to the serial port — the
observable benchmark output compared against the golden run.  ``detect``
signals that a software fault-tolerance mechanism detected (and possibly
corrected) an error; it feeds the "Detected & Corrected" outcome type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Op(enum.IntEnum):
    """Opcodes. The integer values index the CPU's dispatch table."""

    # R-type: rd <- rs1 op rs2
    ADD = 0
    SUB = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    SRA = enum.auto()
    SLT = enum.auto()
    SLTU = enum.auto()
    MUL = enum.auto()
    DIVU = enum.auto()
    REMU = enum.auto()
    # I-type: rd <- rs1 op imm
    ADDI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    SRAI = enum.auto()
    SLTI = enum.auto()
    SLTIU = enum.auto()
    LUI = enum.auto()
    # Memory: loads rd <- mem[rs1+imm], stores mem[rs1+imm] <- rs2
    LW = enum.auto()
    LH = enum.auto()
    LHU = enum.auto()
    LB = enum.auto()
    LBU = enum.auto()
    SW = enum.auto()
    SH = enum.auto()
    SB = enum.auto()
    # Control: branches compare rs1,rs2 and jump to imm (absolute ROM index)
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    BLTU = enum.auto()
    BGEU = enum.auto()
    JAL = enum.auto()   # rd <- pc+1 ; pc <- imm
    JALR = enum.auto()  # rd <- pc+1 ; pc <- rs1 + imm
    # System
    OUT = enum.auto()     # serial output: low byte of rs1
    DETECT = enum.auto()  # fault-tolerance detection event, code in imm
    HALT = enum.auto()
    NOP = enum.auto()


#: Opcodes that read from data memory.
LOAD_OPS = frozenset({Op.LW, Op.LH, Op.LHU, Op.LB, Op.LBU})
#: Opcodes that write to data memory.
STORE_OPS = frozenset({Op.SW, Op.SH, Op.SB})
#: Bytes touched by each memory opcode.
ACCESS_WIDTH = {
    Op.LW: 4, Op.SW: 4,
    Op.LH: 2, Op.LHU: 2, Op.SH: 2,
    Op.LB: 1, Op.LBU: 1, Op.SB: 1,
}

#: Number of general-purpose registers.
NUM_REGS = 16
#: Register aliases accepted by the assembler.
REG_ALIASES = {"zero": 0, "ra": 14, "sp": 15}
#: Link register used by the ``call`` pseudo-instruction.
LINK_REG = 14
#: Stack pointer by software convention.
STACK_REG = 15

WORD_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction stored in ROM.

    ``imm`` holds, depending on the opcode, an ALU immediate, a load/store
    offset, an absolute branch/jump target (ROM index), or a detection
    code.  ``text`` preserves the source line for diagnostics and
    disassembly.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    text: str = field(default="", compare=False)

    def __str__(self) -> str:
        return self.text or self.op.name.lower()


def signed32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a two's-complement int."""
    value &= WORD_MASK
    return value - (1 << 32) if value & 0x80000000 else value


def signed16(value: int) -> int:
    """Interpret the low 16 bits of ``value`` as a two's-complement int."""
    value &= 0xFFFF
    return value - (1 << 16) if value & 0x8000 else value


def signed8(value: int) -> int:
    """Interpret the low 8 bits of ``value`` as a two's-complement int."""
    value &= 0xFF
    return value - (1 << 8) if value & 0x80 else value
