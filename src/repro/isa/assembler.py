"""Two-pass assembler for the simple RISC machine.

Source syntax (whitespace-insensitive, ``;`` or ``#`` start a comment)::

            .equ   N, 8            ; symbolic constant
            .data                  ; data segment (loaded into RAM at 0)
    msg:    .byte  0, 0
    table:  .word  1, 2, 3
            .space 16              ; 16 zero bytes
            .asciiz "hello"
            .align 4
            .text                  ; code segment (ROM)
    start:  li     r1, 'H'
            sb     r1, msg(zero)   ; label or offset(reg) addressing
            lw     r2, 0(sp)
            beq    r1, r2, done
            call   subroutine      ; jal ra, subroutine
    done:   halt

Branch and jump targets are *absolute ROM indices*; the assembler resolves
labels.  ``li``/``la`` expand to one or two real instructions depending on
the immediate value, so runtime cycle counts always reflect the actual
instruction stream.

The assembler is deliberately strict: unknown mnemonics, out-of-range
immediates and duplicate labels raise :class:`AssemblyError` with the
offending line number instead of producing a silently wrong program.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field

from .errors import AssemblyError
from .isa import (
    Instruction,
    NUM_REGS,
    Op,
    REG_ALIASES,
    LINK_REG,
)

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_CHAR_RE = re.compile(r"^'(\\.|[^\\'])'$")

#: Default RAM size for assembled programs (bytes).
DEFAULT_RAM_SIZE = 4096

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0",
    "\\": "\\", "'": "'", '"': '"',
}

# Mnemonic tables -----------------------------------------------------------

_R_TYPE = {
    "add": Op.ADD, "sub": Op.SUB, "and": Op.AND, "or": Op.OR,
    "xor": Op.XOR, "sll": Op.SLL, "srl": Op.SRL, "sra": Op.SRA,
    "slt": Op.SLT, "sltu": Op.SLTU, "mul": Op.MUL,
    "divu": Op.DIVU, "remu": Op.REMU,
}
_I_TYPE = {
    "addi": Op.ADDI, "andi": Op.ANDI, "ori": Op.ORI, "xori": Op.XORI,
    "slli": Op.SLLI, "srli": Op.SRLI, "srai": Op.SRAI,
    "slti": Op.SLTI, "sltiu": Op.SLTIU,
}
_LOADS = {"lw": Op.LW, "lh": Op.LH, "lhu": Op.LHU, "lb": Op.LB,
          "lbu": Op.LBU}
_STORES = {"sw": Op.SW, "sh": Op.SH, "sb": Op.SB}
_BRANCHES = {"beq": Op.BEQ, "bne": Op.BNE, "blt": Op.BLT, "bge": Op.BGE,
             "bltu": Op.BLTU, "bgeu": Op.BGEU}
#: Branches synthesized by swapping operands of a real branch.
_SWAPPED_BRANCHES = {"bgt": Op.BLT, "ble": Op.BGE, "bgtu": Op.BLTU,
                     "bleu": Op.BGEU}


@dataclass
class Program:
    """An assembled program: ROM image, initial RAM image and symbols.

    The ROM (``rom``) is immune to faults per the paper's machine model.
    ``data`` is copied to RAM address 0 on machine reset; the rest of RAM
    is zero-filled.  ``ram_size`` defines the benchmark's memory usage
    Δm (in bytes) and thereby the spatial extent of the fault space.
    """

    rom: list[Instruction]
    data: bytes
    ram_size: int
    entry: int = 0
    labels: dict[str, int] = field(default_factory=dict)
    data_labels: dict[str, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    source: str = ""
    name: str = "program"

    def __post_init__(self) -> None:
        if len(self.data) > self.ram_size:
            raise AssemblyError(
                f"data segment ({len(self.data)} bytes) exceeds RAM size "
                f"({self.ram_size} bytes)")

    @property
    def rom_size(self) -> int:
        return len(self.rom)

    def symbol(self, name: str) -> int:
        """Look up a data label or ``.equ`` constant by name."""
        if name in self.data_labels:
            return self.data_labels[name]
        if name in self.symbols:
            return self.symbols[name]
        raise KeyError(name)

    def disassemble(self) -> str:
        """Return a human-readable listing of the ROM."""
        lines = []
        targets = {i.imm for i in self.rom
                   if i.op in (Op.JAL, Op.BEQ, Op.BNE, Op.BLT, Op.BGE,
                               Op.BLTU, Op.BGEU)}
        rev_labels = {v: k for k, v in self.labels.items()}
        for idx, instr in enumerate(self.rom):
            label = rev_labels.get(idx)
            prefix = f"{label}:" if label else ""
            marker = "*" if idx in targets and not label else " "
            lines.append(f"{idx:5d} {marker} {prefix:<12s} {instr}")
        return "\n".join(lines)


class _Segment:
    TEXT = "text"
    DATA = "data"


@dataclass
class _PendingInstruction:
    """An instruction parsed in pass one, possibly with unresolved labels.

    ``fixup`` names the field (``imm``) that still needs a text-label
    resolution in pass two.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    fixup: str | None = None
    text: str = ""
    lineno: int = 0


class Assembler:
    """Two-pass assembler producing :class:`Program` objects."""

    def __init__(self, ram_size: int = DEFAULT_RAM_SIZE):
        self.ram_size = ram_size

    # -- public API ---------------------------------------------------------

    def assemble(self, source: str, *, name: str = "program",
                 ram_size: int | None = None) -> Program:
        """Assemble ``source`` into a :class:`Program`.

        Raises :class:`AssemblyError` on any syntactic or semantic problem.
        """
        ram_size = self.ram_size if ram_size is None else ram_size
        self._reset()
        self._scan(source)
        rom = self._resolve()
        entry = self.text_labels.get("start", 0)
        return Program(
            rom=rom,
            data=bytes(self.data),
            ram_size=ram_size,
            entry=entry,
            labels=dict(self.text_labels),
            data_labels=dict(self.data_labels),
            symbols=dict(self.equs),
            source=source,
            name=name,
        )

    # -- pass machinery -----------------------------------------------------

    def _reset(self) -> None:
        self.segment = _Segment.TEXT
        self.pending: list[_PendingInstruction] = []
        self.data = bytearray()
        self.text_labels: dict[str, int] = {}
        self.data_labels: dict[str, int] = {}
        self.equs: dict[str, int] = {}
        self._deferred_words: list[tuple[int, str, int]] = []

    def _scan(self, source: str) -> None:
        """Pass one: parse lines, lay out data, expand pseudos."""
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw)
            if not line.strip():
                continue
            line = self._take_labels(line, lineno)
            if not line.strip():
                continue
            self._parse_statement(line.strip(), lineno)
        # Patch .word entries that referenced forward data labels.
        for offset, label, lineno in self._deferred_words:
            value = self._lookup_data_symbol(label, lineno)
            struct.pack_into("<I", self.data, offset, value & 0xFFFFFFFF)

    def _resolve(self) -> list[Instruction]:
        """Pass two: resolve text labels into absolute ROM indices."""
        rom = []
        for p in self.pending:
            imm = p.imm
            if p.fixup is not None:
                if p.fixup in self.text_labels:
                    imm = self.text_labels[p.fixup]
                else:
                    raise AssemblyError(
                        f"undefined label '{p.fixup}'", p.lineno)
            rom.append(Instruction(op=p.op, rd=p.rd, rs1=p.rs1, rs2=p.rs2,
                                   imm=imm, text=p.text))
        return rom

    # -- line-level parsing --------------------------------------------------

    @staticmethod
    def _strip_comment(line: str) -> str:
        out = []
        in_string = False
        for ch in line:
            if ch == '"':
                in_string = not in_string
            if ch in ";#" and not in_string:
                break
            out.append(ch)
        return "".join(out)

    def _take_labels(self, line: str, lineno: int) -> str:
        while True:
            stripped = line.lstrip()
            colon = stripped.find(":")
            if colon <= 0:
                return stripped
            candidate = stripped[:colon].strip()
            if not _LABEL_RE.match(candidate):
                return stripped
            self._define_label(candidate, lineno)
            line = stripped[colon + 1:]

    def _define_label(self, name: str, lineno: int) -> None:
        table = (self.text_labels if self.segment == _Segment.TEXT
                 else self.data_labels)
        if (name in self.text_labels or name in self.data_labels
                or name in self.equs):
            raise AssemblyError(f"duplicate label '{name}'", lineno)
        position = (len(self.pending) if self.segment == _Segment.TEXT
                    else len(self.data))
        table[name] = position

    def _parse_statement(self, stmt: str, lineno: int) -> None:
        mnemonic, _, rest = stmt.partition(" ")
        mnemonic = mnemonic.lower()
        if mnemonic.startswith("."):
            self._directive(mnemonic, rest.strip(), lineno)
            return
        if self.segment != _Segment.TEXT:
            raise AssemblyError(
                f"instruction '{mnemonic}' in data segment", lineno)
        self._instruction(mnemonic, rest.strip(), stmt, lineno)

    # -- directives ----------------------------------------------------------

    def _directive(self, name: str, rest: str, lineno: int) -> None:
        if name == ".text":
            self.segment = _Segment.TEXT
        elif name == ".data":
            self.segment = _Segment.DATA
        elif name == ".equ":
            parts = [p.strip() for p in rest.split(",")]
            if len(parts) != 2:
                raise AssemblyError(".equ needs 'name, value'", lineno)
            sym, value = parts
            if not _LABEL_RE.match(sym):
                raise AssemblyError(f"bad .equ name '{sym}'", lineno)
            if sym in self.equs:
                raise AssemblyError(f"duplicate .equ '{sym}'", lineno)
            self.equs[sym] = self._constant(value, lineno)
        elif name == ".byte":
            for value in self._value_list(rest, lineno):
                self.data.append(value & 0xFF)
        elif name == ".half":
            self._align_data(2)
            for value in self._value_list(rest, lineno):
                self.data += struct.pack("<H", value & 0xFFFF)
        elif name == ".word":
            self._align_data(4)
            for item in self._split_operands(rest, lineno):
                try:
                    value = self._constant(item, lineno)
                except AssemblyError:
                    # Forward reference to a data label: patch later.
                    if _LABEL_RE.match(item):
                        self._deferred_words.append(
                            (len(self.data), item, lineno))
                        value = 0
                    else:
                        raise
                self.data += struct.pack("<I", value & 0xFFFFFFFF)
        elif name == ".space":
            count = self._constant(rest, lineno)
            if count < 0:
                raise AssemblyError(".space needs a non-negative count",
                                    lineno)
            self.data += bytes(count)
        elif name == ".align":
            boundary = self._constant(rest, lineno)
            if boundary <= 0 or boundary & (boundary - 1):
                raise AssemblyError(".align needs a power of two", lineno)
            self._align_data(boundary)
        elif name in (".ascii", ".asciiz"):
            text = self._string_literal(rest, lineno)
            self.data += text.encode("latin-1")
            if name == ".asciiz":
                self.data.append(0)
        else:
            raise AssemblyError(f"unknown directive '{name}'", lineno)

    def _value_list(self, rest: str, lineno: int) -> list[int]:
        return [self._constant(item, lineno)
                for item in self._split_operands(rest, lineno)]

    def _align_data(self, boundary: int) -> None:
        old_end = len(self.data)
        while len(self.data) % boundary:
            self.data.append(0)
        if len(self.data) != old_end:
            # Labels defined at the (unaligned) segment end mean the datum
            # about to be emitted; carry them across the padding.
            for name, value in self.data_labels.items():
                if value == old_end:
                    self.data_labels[name] = len(self.data)

    @staticmethod
    def _string_literal(rest: str, lineno: int) -> str:
        rest = rest.strip()
        if len(rest) < 2 or rest[0] != '"' or rest[-1] != '"':
            raise AssemblyError("expected a double-quoted string", lineno)
        body = rest[1:-1]
        out = []
        i = 0
        while i < len(body):
            ch = body[i]
            if ch == "\\":
                i += 1
                if i >= len(body) or body[i] not in _ESCAPES:
                    raise AssemblyError("bad escape in string", lineno)
                out.append(_ESCAPES[body[i]])
            else:
                out.append(ch)
            i += 1
        return "".join(out)

    # -- instructions --------------------------------------------------------

    def _instruction(self, mnemonic: str, rest: str, stmt: str,
                     lineno: int) -> None:
        ops = self._split_operands(rest, lineno) if rest else []
        emit = lambda **kw: self._emit(text=stmt, lineno=lineno, **kw)

        if mnemonic in _R_TYPE:
            rd, rs1, rs2 = self._expect(ops, 3, lineno, "rd, rs1, rs2")
            emit(op=_R_TYPE[mnemonic], rd=self._reg(rd, lineno),
                 rs1=self._reg(rs1, lineno), rs2=self._reg(rs2, lineno))
        elif mnemonic in _I_TYPE:
            rd, rs1, imm = self._expect(ops, 3, lineno, "rd, rs1, imm")
            value = self._constant(imm, lineno)
            self._check_imm(mnemonic, value, lineno)
            emit(op=_I_TYPE[mnemonic], rd=self._reg(rd, lineno),
                 rs1=self._reg(rs1, lineno), imm=value)
        elif mnemonic == "lui":
            rd, imm = self._expect(ops, 2, lineno, "rd, imm")
            value = self._constant(imm, lineno)
            if not 0 <= value <= 0xFFFF:
                raise AssemblyError("lui immediate out of range", lineno)
            emit(op=Op.LUI, rd=self._reg(rd, lineno), imm=value)
        elif mnemonic in _LOADS:
            rd, addr = self._expect(ops, 2, lineno, "rd, offset(rs)")
            base, offset = self._address(addr, lineno)
            emit(op=_LOADS[mnemonic], rd=self._reg(rd, lineno),
                 rs1=base, imm=offset)
        elif mnemonic in _STORES:
            rs2, addr = self._expect(ops, 2, lineno, "rs, offset(rs)")
            base, offset = self._address(addr, lineno)
            emit(op=_STORES[mnemonic], rs2=self._reg(rs2, lineno),
                 rs1=base, imm=offset)
        elif mnemonic in _BRANCHES:
            rs1, rs2, target = self._expect(ops, 3, lineno,
                                            "rs1, rs2, label")
            emit(op=_BRANCHES[mnemonic], rs1=self._reg(rs1, lineno),
                 rs2=self._reg(rs2, lineno),
                 **self._target(target, lineno))
        elif mnemonic in _SWAPPED_BRANCHES:
            rs1, rs2, target = self._expect(ops, 3, lineno,
                                            "rs1, rs2, label")
            emit(op=_SWAPPED_BRANCHES[mnemonic],
                 rs1=self._reg(rs2, lineno), rs2=self._reg(rs1, lineno),
                 **self._target(target, lineno))
        elif mnemonic in ("beqz", "bnez"):
            rs1, target = self._expect(ops, 2, lineno, "rs, label")
            op = Op.BEQ if mnemonic == "beqz" else Op.BNE
            emit(op=op, rs1=self._reg(rs1, lineno), rs2=0,
                 **self._target(target, lineno))
        elif mnemonic == "jal":
            rd, target = self._expect(ops, 2, lineno, "rd, label")
            emit(op=Op.JAL, rd=self._reg(rd, lineno),
                 **self._target(target, lineno))
        elif mnemonic == "jalr":
            rd, addr = self._expect(ops, 2, lineno, "rd, offset(rs)")
            base, offset = self._address(addr, lineno)
            emit(op=Op.JALR, rd=self._reg(rd, lineno), rs1=base,
                 imm=offset)
        elif mnemonic == "j":
            (target,) = self._expect(ops, 1, lineno, "label")
            emit(op=Op.JAL, rd=0, **self._target(target, lineno))
        elif mnemonic == "call":
            (target,) = self._expect(ops, 1, lineno, "label")
            emit(op=Op.JAL, rd=LINK_REG, **self._target(target, lineno))
        elif mnemonic == "ret":
            self._expect(ops, 0, lineno, "")
            emit(op=Op.JALR, rd=0, rs1=LINK_REG, imm=0)
        elif mnemonic == "jr":
            (rs,) = self._expect(ops, 1, lineno, "rs")
            emit(op=Op.JALR, rd=0, rs1=self._reg(rs, lineno), imm=0)
        elif mnemonic == "mv":
            rd, rs = self._expect(ops, 2, lineno, "rd, rs")
            emit(op=Op.ADDI, rd=self._reg(rd, lineno),
                 rs1=self._reg(rs, lineno), imm=0)
        elif mnemonic == "lpc":
            # Load the ROM index of a text label (for computed jumps and
            # thread entry points). Always one instruction; resolved in
            # pass two like branch targets.
            rd, target = self._expect(ops, 2, lineno, "rd, text_label")
            emit(op=Op.ADDI, rd=self._reg(rd, lineno), rs1=0,
                 **self._target(target, lineno))
        elif mnemonic in ("li", "la"):
            rd, imm = self._expect(ops, 2, lineno, "rd, value")
            self._emit_li(self._reg(rd, lineno),
                          self._constant(imm, lineno), stmt, lineno)
        elif mnemonic == "not":
            rd, rs = self._expect(ops, 2, lineno, "rd, rs")
            emit(op=Op.XORI, rd=self._reg(rd, lineno),
                 rs1=self._reg(rs, lineno), imm=0xFFFF)
        elif mnemonic == "neg":
            rd, rs = self._expect(ops, 2, lineno, "rd, rs")
            emit(op=Op.SUB, rd=self._reg(rd, lineno), rs1=0,
                 rs2=self._reg(rs, lineno))
        elif mnemonic == "out":
            (rs,) = self._expect(ops, 1, lineno, "rs")
            emit(op=Op.OUT, rs1=self._reg(rs, lineno))
        elif mnemonic == "detect":
            (code,) = self._expect(ops, 1, lineno, "code")
            emit(op=Op.DETECT, imm=self._constant(code, lineno))
        elif mnemonic == "halt":
            self._expect(ops, 0, lineno, "")
            emit(op=Op.HALT)
        elif mnemonic == "nop":
            self._expect(ops, 0, lineno, "")
            emit(op=Op.NOP)
        else:
            raise AssemblyError(f"unknown mnemonic '{mnemonic}'", lineno)

    def _emit(self, *, op: Op, text: str, lineno: int, rd: int = 0,
              rs1: int = 0, rs2: int = 0, imm: int = 0,
              fixup: str | None = None) -> None:
        self.pending.append(_PendingInstruction(
            op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm, fixup=fixup,
            text=" ".join(text.split()), lineno=lineno))

    def _emit_li(self, rd: int, value: int, stmt: str, lineno: int) -> None:
        if -32768 <= value <= 32767:
            self._emit(op=Op.ADDI, rd=rd, rs1=0, imm=value, text=stmt,
                       lineno=lineno)
            return
        unsigned = value & 0xFFFFFFFF
        self._emit(op=Op.LUI, rd=rd, imm=unsigned >> 16, text=stmt,
                   lineno=lineno)
        self._emit(op=Op.ORI, rd=rd, rs1=rd, imm=unsigned & 0xFFFF,
                   text=f"{stmt} [lo]", lineno=lineno)

    # -- operand parsing -----------------------------------------------------

    @staticmethod
    def _split_operands(rest: str, lineno: int) -> list[str]:
        # Split on commas that are not inside quotes or parentheses.
        items, depth, current, quote = [], 0, [], False
        for ch in rest:
            if ch == "'":
                quote = not quote
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            if ch == "," and depth == 0 and not quote:
                items.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
        tail = "".join(current).strip()
        if tail:
            items.append(tail)
        if any(not item for item in items):
            raise AssemblyError("empty operand", lineno)
        return items

    @staticmethod
    def _expect(ops: list[str], count: int, lineno: int,
                shape: str) -> list[str]:
        if len(ops) != count:
            raise AssemblyError(
                f"expected operands '{shape}', got {len(ops)}", lineno)
        return ops

    def _reg(self, token: str, lineno: int) -> int:
        token = token.strip().lower()
        if token in REG_ALIASES:
            return REG_ALIASES[token]
        if token.startswith("r") and token[1:].isdigit():
            index = int(token[1:])
            if 0 <= index < NUM_REGS:
                return index
        raise AssemblyError(f"bad register '{token}'", lineno)

    def _address(self, token: str, lineno: int) -> tuple[int, int]:
        """Parse ``offset(rs)`` or a bare symbol/number (base ``zero``)."""
        token = token.strip()
        if token.endswith(")") and "(" in token:
            offset_text, _, reg_text = token[:-1].rpartition("(")
            base = self._reg(reg_text, lineno)
            offset = (self._constant(offset_text.strip(), lineno)
                      if offset_text.strip() else 0)
            return base, offset
        return 0, self._constant(token, lineno)

    def _target(self, token: str, lineno: int) -> dict:
        """Parse a branch/jump target: a text label or an absolute index."""
        token = token.strip()
        if _LABEL_RE.match(token) and not self._is_numeric(token):
            return {"fixup": token}
        return {"imm": self._constant(token, lineno)}

    @staticmethod
    def _is_numeric(token: str) -> bool:
        try:
            int(token, 0)
            return True
        except ValueError:
            return False

    def _constant(self, token: str, lineno: int) -> int:
        """Evaluate an immediate: int, char, symbol, or ``a+b``/``a-b``."""
        token = token.strip()
        match = _CHAR_RE.match(token)
        if match:
            body = match.group(1)
            if body.startswith("\\"):
                if body[1] not in _ESCAPES:
                    raise AssemblyError(f"bad escape '{body}'", lineno)
                return ord(_ESCAPES[body[1]])
            return ord(body)
        # Simple additive expressions: sym+4, sym-4, 3+5.
        for op_char in "+-":
            split = self._split_additive(token, op_char)
            if split:
                left, right = split
                lhs = self._constant(left, lineno)
                rhs = self._constant(right, lineno)
                return lhs + rhs if op_char == "+" else lhs - rhs
        try:
            return int(token, 0)
        except ValueError:
            pass
        value = self._lookup_symbol(token)
        if value is None:
            raise AssemblyError(f"cannot evaluate constant '{token}'",
                                lineno)
        return value

    @staticmethod
    def _split_additive(token: str, op_char: str) -> tuple[str, str] | None:
        # Find a top-level operator not at position 0 (to allow -5).
        index = token.rfind(op_char)
        if index <= 0:
            return None
        left, right = token[:index].strip(), token[index + 1:].strip()
        if not left or not right:
            return None
        return left, right

    def _lookup_symbol(self, name: str) -> int | None:
        if name in self.equs:
            return self.equs[name]
        if name in self.data_labels:
            return self.data_labels[name]
        return None

    def _lookup_data_symbol(self, name: str, lineno: int) -> int:
        value = self._lookup_symbol(name)
        if value is None:
            raise AssemblyError(f"undefined data symbol '{name}'", lineno)
        return value

    @staticmethod
    def _check_imm(mnemonic: str, value: int, lineno: int) -> None:
        if mnemonic in ("slli", "srli", "srai"):
            if not 0 <= value <= 31:
                raise AssemblyError("shift amount out of range", lineno)
        elif not -32768 <= value <= 0xFFFF:
            raise AssemblyError(
                f"immediate {value} out of 16-bit range", lineno)


def assemble(source: str, *, name: str = "program",
             ram_size: int = DEFAULT_RAM_SIZE) -> Program:
    """Convenience wrapper: assemble ``source`` with default settings."""
    return Assembler(ram_size=ram_size).assemble(source, name=name)
