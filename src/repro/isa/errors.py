"""Exception hierarchy for the ISA emulator.

Two families of errors exist:

* :class:`AssemblyError` — raised while assembling source text; these are
  programming errors in benchmark code and never occur at run time.
* :class:`CPUException` — raised by the CPU while executing a program.
  During fault-injection campaigns these are *expected* outcomes (a bit
  flip may corrupt a pointer or a divisor) and are mapped to the
  ``CPU_EXCEPTION`` failure mode by the campaign layer.
"""

from __future__ import annotations


class IsaError(Exception):
    """Base class for all errors raised by :mod:`repro.isa`."""


class AssemblyError(IsaError):
    """An error in assembly source text (bad mnemonic, label, operand...).

    Carries the source line number when available so benchmark authors can
    locate the offending line.
    """

    def __init__(self, message: str, lineno: int | None = None):
        self.lineno = lineno
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)


class CPUException(IsaError):
    """Base class for run-time traps raised by the CPU.

    Every trap records the cycle at which it occurred and the program
    counter of the faulting instruction, which campaign code uses for
    failure-mode diagnostics.
    """

    #: Short machine-readable trap name, overridden by subclasses.
    trap_name = "trap"

    def __init__(self, message: str, *, pc: int | None = None,
                 cycle: int | None = None):
        self.pc = pc
        self.cycle = cycle
        super().__init__(message)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        where = []
        if self.pc is not None:
            where.append(f"pc={self.pc}")
        if self.cycle is not None:
            where.append(f"cycle={self.cycle}")
        if where:
            return f"{base} ({', '.join(where)})"
        return base


class MemoryFault(CPUException):
    """A data-memory access outside the machine's RAM."""

    trap_name = "memory-fault"


class AlignmentFault(CPUException):
    """A word or halfword access to an unaligned address."""

    trap_name = "alignment-fault"


class IllegalPC(CPUException):
    """The program counter left the ROM (e.g. a corrupted return address)."""

    trap_name = "illegal-pc"


class IllegalInstruction(CPUException):
    """An instruction that cannot be executed (should not happen from ROM,

    but kept for completeness and for hand-constructed programs).
    """

    trap_name = "illegal-instruction"


class ArithmeticTrap(CPUException):
    """Division or remainder by zero."""

    trap_name = "arithmetic-trap"


class HaltedMachine(IsaError):
    """An attempt to step a machine that has already halted."""
