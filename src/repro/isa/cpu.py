"""The deterministic machine: CPU interpreter, RAM, and devices.

This implements the paper's machine model (Section II-C):

* a simple in-order RISC CPU, one cycle per instruction;
* no caches — a flat, wait-free RAM is the only fault-susceptible state;
* the program executes from ROM, which is immune to faults;
* runs are fully deterministic, can be paused at any instruction boundary
  (to flip a memory bit) and resumed.

Timing convention used throughout the project: after ``n`` calls to
:meth:`Machine.step`, ``machine.cycle == n``.  *Injection slot* ``t``
(1-based) denotes the instant right before the ``t``-th instruction
executes; injecting at slot ``t`` therefore means running to
``cycle == t - 1``, flipping a bit, and resuming.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2b
from struct import Struct

from .assembler import Program
from .errors import (
    AlignmentFault,
    ArithmeticTrap,
    HaltedMachine,
    IllegalPC,
    MemoryFault,
)
from .isa import Instruction, NUM_REGS, Op, WORD_MASK, signed32
from .tracing import MemoryTrace, READ, WRITE

#: Register file + pc + serial length, packed for hashing.
_DIGEST_TAIL = Struct(f"<{NUM_REGS}III")
#: Armed stuck-at latch (addr, bit, value), packed for hashing.
_STUCK_TAIL = Struct("<IBB")
#: Digest width in bytes.  128 bits: collisions are negligible even
#: across the billions of checkpoint comparisons a campaign performs,
#: which matters because a colliding digest would silently misclassify
#: an experiment.
DIGEST_SIZE = 16


def state_digest(ram, regs, pc: int, serial_len: int,
                 stuck: tuple | None = None) -> bytes:
    """Deterministic digest of the machine state that drives execution.

    Covers exactly the mutable state a deterministic continuation
    depends on: RAM, the register file, the program counter and the
    *length* of the serial output.  Serial content is deliberately
    excluded — output never feeds back into execution — and so are the
    cycle counter, the halt flag and past ``detect`` events, which the
    convergence machinery accounts for separately.

    An armed stuck-at latch (``stuck = (addr, bit, value)``) *is*
    mixed in: a machine carrying a latch can behave differently from a
    latch-free machine with identical RAM once the latched byte is
    rewritten, so its digest must never collide with a golden
    checkpoint (golden runs are always latch-free).  The latch-free
    digest is unchanged from the pre-stuck-at format.

    blake2b (not ``hash()``) because the digest must agree across
    processes: the golden ladder is computed in the campaign driver and
    compared against digests computed inside pool workers, and Python's
    built-in hashing is salted per process.
    """
    h = blake2b(bytes(ram) if not isinstance(ram, (bytes, bytearray))
                else ram, digest_size=DIGEST_SIZE)
    h.update(_DIGEST_TAIL.pack(*regs, pc & WORD_MASK,
                               serial_len & WORD_MASK))
    if stuck is not None:
        h.update(_STUCK_TAIL.pack(*stuck))
    return h.digest()


@dataclass(frozen=True)
class MachineState:
    """A snapshot of all mutable machine state.

    Snapshots are cheap (one bytearray copy) and power the campaign
    runner's fork-at-injection-slot fast-forward optimization.
    """

    ram: bytes
    regs: tuple
    pc: int
    cycle: int
    halted: bool
    serial: bytes
    detections: tuple
    diverged: bool = False
    #: Armed stuck-at latch ``(addr, bit, value)``, or ``None``.
    stuck: tuple | None = None

    def state_digest(self) -> bytes:
        """Digest of the snapshot's execution-relevant state."""
        return state_digest(self.ram, self.regs, self.pc,
                            len(self.serial), self.stuck)


class Machine:
    """A machine instance executing one :class:`Program`.

    Public attributes (all deterministic functions of the program and the
    faults injected so far):

    ``ram``
        The byte-addressable main memory — the fault space.
    ``regs``
        16 general-purpose registers; ``regs[0]`` reads as zero.
    ``pc`` / ``cycle``
        Current ROM index and number of instructions executed.
    ``serial``
        Bytes written by ``out`` so far — the observable output.
    ``detections``
        ``(cycle, code)`` pairs recorded by ``detect`` — the hook used by
        hardened programs to report corrected errors.
    """

    def __init__(self, program: Program, *,
                 tracer: MemoryTrace | None = None,
                 oracle: bytes | None = None):
        self.program = program
        self.rom: list[Instruction] = program.rom
        self.tracer = tracer
        #: Expected serial output.  When set, the machine halts with
        #: ``diverged = True`` on the first output byte that deviates —
        #: a diverged run can never be benign again, so campaign
        #: executors use this to cut post-injection tails short.
        self.oracle = oracle
        self._dispatch = self._build_dispatch()
        # Pre-bind (handler, instruction) per ROM slot: saves the enum
        # indexing on the hot path (campaigns execute hundreds of
        # millions of instructions).
        self._exec = [(self._dispatch[i.op], i) for i in self.rom]
        self.reset()

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Reset to the initial state: RAM holds the data image."""
        program = self.program
        self.ram = bytearray(program.ram_size)
        self.ram[: len(program.data)] = program.data
        self.regs = [0] * NUM_REGS
        self.pc = program.entry
        self.cycle = 0
        self.halted = False
        self.diverged = False
        self.serial = bytearray()
        self.detections: list[tuple[int, int]] = []
        #: Armed stuck-at latch ``(addr, bit, value)``, cleared by the
        #: first store covering ``addr`` (write wins).
        self._stuck: tuple | None = None
        # Bind the memory accessors for this machine's tracing mode once,
        # instead of testing ``self.tracer is not None`` on every load and
        # store of the campaign hot loop (tracing is only ever on during
        # golden recording — one run per campaign).
        if self.tracer is None:
            self._load = self._load_raw
            self._store = self._store_raw
        else:
            self._load = self._load_traced
            self._store = self._store_traced

    def snapshot(self) -> MachineState:
        """Capture all mutable state for later :meth:`restore`."""
        return MachineState(
            ram=bytes(self.ram),
            regs=tuple(self.regs),
            pc=self.pc,
            cycle=self.cycle,
            halted=self.halted,
            serial=bytes(self.serial),
            detections=tuple(self.detections),
            diverged=self.diverged,
            stuck=self._stuck,
        )

    def restore(self, state: MachineState) -> None:
        """Restore a snapshot previously taken from this program."""
        self.ram = bytearray(state.ram)
        self.regs = list(state.regs)
        self.pc = state.pc
        self.cycle = state.cycle
        self.halted = state.halted
        self.diverged = state.diverged
        self.serial = bytearray(state.serial)
        self.detections = list(state.detections)
        self._stuck = state.stuck

    def state_digest(self) -> bytes:
        """Digest of the current execution-relevant state.

        Two machines of the same program with equal digests at equal
        cycle counts (and neither halted) execute identical instruction
        suffixes — the foundation of the campaign layer's convergence
        early-exit.  See :func:`state_digest` for what is covered.
        """
        return state_digest(self.ram, self.regs, self.pc,
                            len(self.serial), self._stuck)

    # -- fault injection -----------------------------------------------------

    def flip_bit(self, addr: int, bit: int) -> None:
        """Flip one RAM bit — the transient single-bit fault of the model."""
        if not 0 <= addr < len(self.ram):
            raise ValueError(f"flip address {addr:#x} outside RAM")
        if not 0 <= bit < 8:
            raise ValueError(f"bit index {bit} out of range")
        self.ram[addr] ^= 1 << bit

    def flip_register_bit(self, reg: int, bit: int) -> None:
        """Flip one register-file bit (Section VI-B fault model).

        r0 is hardwired to zero and cannot hold a fault.
        """
        if not 1 <= reg < NUM_REGS:
            raise ValueError(f"register r{reg} cannot hold a fault")
        if not 0 <= bit < 32:
            raise ValueError(f"bit index {bit} out of range")
        self.regs[reg] ^= 1 << bit

    def flip_pc_bit(self, bit: int) -> None:
        """Flip one bit of the program counter (PC fault model)."""
        if not 0 <= bit < 32:
            raise ValueError(f"bit index {bit} out of range")
        self.pc ^= 1 << bit

    def stuck_at(self, addr: int, bit: int, value: int) -> None:
        """Arm a stuck-at-until-write fault and force the bit now.

        From this instant the latch holds RAM bit ``(addr, bit)`` at
        ``value``.  Between stores nothing else can change the bit, so
        forcing it once here and releasing on the next covering store
        (see :meth:`_store_raw`) implements the model exactly.  Only
        one latch can be armed at a time — the paper's single-fault
        assumption.
        """
        if not 0 <= addr < len(self.ram):
            raise ValueError(f"stuck-at address {addr:#x} outside RAM")
        if not 0 <= bit < 8:
            raise ValueError(f"bit index {bit} out of range")
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {value}")
        if self._stuck is not None:
            raise ValueError("a stuck-at fault is already armed")
        self._stuck = (addr, bit, value)
        if value:
            self.ram[addr] |= 1 << bit
        else:
            self.ram[addr] &= ~(1 << bit) & 0xFF

    # -- execution -----------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction (one cycle).

        Raises a :class:`~repro.isa.errors.CPUException` subclass if the
        instruction traps; the machine is halted in that case.
        """
        if self.halted:
            raise HaltedMachine("machine is halted")
        pc = self.pc
        exec_rom = self._exec
        if not 0 <= pc < len(exec_rom):
            if pc == len(exec_rom):
                # Falling off the end of ROM is a clean halt (an implicit
                # exit stub); it consumes no cycle, so a program without
                # an explicit ``halt`` runs for exactly len(rom)
                # straight-line cycles.
                self.halted = True
                return
            self.halted = True
            raise IllegalPC(f"pc {pc} outside ROM", pc=pc, cycle=self.cycle)
        handler, instr = exec_rom[pc]
        self.pc = pc + 1
        try:
            handler(instr)
        except HaltedMachine:
            raise
        except Exception:
            self.halted = True
            raise
        self.cycle += 1

    def _run_until(self, limit: int) -> None:
        """Shared loop of :meth:`run` and :meth:`run_to_cycle`.

        Runs until ``halt``, a trap, or ``cycle >= limit``.  Semantics
        are identical to calling :meth:`step` in a loop; the dispatch is
        kept deliberately simple — this class is the differential-testing
        *oracle* for the compiled engines in :mod:`repro.engine`, so it
        optimizes for obviousness, not speed.
        """
        exec_rom = self._exec
        rom_len = len(exec_rom)
        while not self.halted:
            cycle = self.cycle
            if cycle >= limit:
                break
            pc = self.pc
            if 0 <= pc < rom_len:
                handler, instr = exec_rom[pc]
                self.pc = pc + 1
                try:
                    handler(instr)
                except HaltedMachine:
                    raise
                except Exception:
                    self.halted = True
                    raise
                self.cycle = cycle + 1
            elif pc == rom_len:
                # Implicit exit stub: clean halt, no cycle consumed.
                self.halted = True
            else:
                self.halted = True
                raise IllegalPC(f"pc {pc} outside ROM", pc=pc, cycle=cycle)

    def run(self, max_cycles: int) -> None:
        """Run until ``halt``, a trap, or the cycle budget is exhausted.

        Traps propagate to the caller; reaching ``max_cycles`` without
        halting simply returns (the campaign layer treats it as timeout).
        """
        self._run_until(max_cycles)

    def run_to_cycle(self, target_cycle: int) -> None:
        """Run until exactly ``target_cycle`` instructions have executed.

        Used to position the machine at an injection slot: to inject at
        slot ``t``, run to cycle ``t - 1``.  Raises ``ValueError`` when
        asked to run backwards.
        """
        if target_cycle < self.cycle:
            raise ValueError(
                f"cannot run backwards: at cycle {self.cycle}, "
                f"target {target_cycle}")
        self._run_until(target_cycle)

    # -- memory --------------------------------------------------------------

    # ``self._load`` / ``self._store`` are bound per instance in
    # :meth:`reset` to the raw or traced variant, so untraced campaign
    # runs never pay the tracer test.

    def _load_raw(self, addr: int, width: int) -> int:
        if addr % width:
            raise AlignmentFault(
                f"unaligned {width}-byte load at {addr:#x}",
                pc=self.pc - 1, cycle=self.cycle)
        if not 0 <= addr <= len(self.ram) - width:
            raise MemoryFault(
                f"load of {width} bytes at {addr:#x} outside RAM",
                pc=self.pc - 1, cycle=self.cycle)
        return int.from_bytes(self.ram[addr: addr + width], "little")

    def _load_traced(self, addr: int, width: int) -> int:
        value = self._load_raw(addr, width)
        self.tracer.record(self.cycle + 1, addr, width, READ)
        return value

    def _store_raw(self, addr: int, width: int, value: int) -> None:
        if addr % width:
            raise AlignmentFault(
                f"unaligned {width}-byte store at {addr:#x}",
                pc=self.pc - 1, cycle=self.cycle)
        if not 0 <= addr <= len(self.ram) - width:
            raise MemoryFault(
                f"store of {width} bytes at {addr:#x} outside RAM",
                pc=self.pc - 1, cycle=self.cycle)
        self.ram[addr: addr + width] = value.to_bytes(width, "little")
        stuck = self._stuck
        if stuck is not None and addr <= stuck[0] < addr + width:
            # Write wins: the first store covering the latched byte
            # releases the latch; the stored value stands unmodified.
            self._stuck = None

    def _store_traced(self, addr: int, width: int, value: int) -> None:
        self._store_raw(addr, width, value)
        self.tracer.record(self.cycle + 1, addr, width, WRITE)

    # -- instruction semantics ------------------------------------------------

    def _build_dispatch(self):
        table = [None] * len(Op)
        for op in Op:
            table[op] = getattr(self, f"_op_{op.name.lower()}")
        return table

    def _set(self, rd: int, value: int) -> None:
        if rd:
            self.regs[rd] = value & WORD_MASK

    # R-type

    def _op_add(self, i):
        self._set(i.rd, self.regs[i.rs1] + self.regs[i.rs2])

    def _op_sub(self, i):
        self._set(i.rd, self.regs[i.rs1] - self.regs[i.rs2])

    def _op_and(self, i):
        self._set(i.rd, self.regs[i.rs1] & self.regs[i.rs2])

    def _op_or(self, i):
        self._set(i.rd, self.regs[i.rs1] | self.regs[i.rs2])

    def _op_xor(self, i):
        self._set(i.rd, self.regs[i.rs1] ^ self.regs[i.rs2])

    def _op_sll(self, i):
        self._set(i.rd, self.regs[i.rs1] << (self.regs[i.rs2] & 31))

    def _op_srl(self, i):
        self._set(i.rd, self.regs[i.rs1] >> (self.regs[i.rs2] & 31))

    def _op_sra(self, i):
        self._set(i.rd, signed32(self.regs[i.rs1]) >> (self.regs[i.rs2] & 31))

    def _op_slt(self, i):
        self._set(i.rd,
                  int(signed32(self.regs[i.rs1]) < signed32(self.regs[i.rs2])))

    def _op_sltu(self, i):
        self._set(i.rd, int(self.regs[i.rs1] < self.regs[i.rs2]))

    def _op_mul(self, i):
        self._set(i.rd, self.regs[i.rs1] * self.regs[i.rs2])

    def _op_divu(self, i):
        divisor = self.regs[i.rs2]
        if divisor == 0:
            raise ArithmeticTrap("division by zero", pc=self.pc - 1,
                                 cycle=self.cycle)
        self._set(i.rd, self.regs[i.rs1] // divisor)

    def _op_remu(self, i):
        divisor = self.regs[i.rs2]
        if divisor == 0:
            raise ArithmeticTrap("remainder by zero", pc=self.pc - 1,
                                 cycle=self.cycle)
        self._set(i.rd, self.regs[i.rs1] % divisor)

    # I-type

    def _op_addi(self, i):
        self._set(i.rd, self.regs[i.rs1] + i.imm)

    def _op_andi(self, i):
        self._set(i.rd, self.regs[i.rs1] & (i.imm & WORD_MASK))

    def _op_ori(self, i):
        self._set(i.rd, self.regs[i.rs1] | (i.imm & WORD_MASK))

    def _op_xori(self, i):
        self._set(i.rd, self.regs[i.rs1] ^ (i.imm & WORD_MASK))

    def _op_slli(self, i):
        self._set(i.rd, self.regs[i.rs1] << i.imm)

    def _op_srli(self, i):
        self._set(i.rd, self.regs[i.rs1] >> i.imm)

    def _op_srai(self, i):
        self._set(i.rd, signed32(self.regs[i.rs1]) >> i.imm)

    def _op_slti(self, i):
        self._set(i.rd, int(signed32(self.regs[i.rs1]) < i.imm))

    def _op_sltiu(self, i):
        self._set(i.rd, int(self.regs[i.rs1] < (i.imm & WORD_MASK)))

    def _op_lui(self, i):
        self._set(i.rd, i.imm << 16)

    # Loads/stores

    def _op_lw(self, i):
        self._set(i.rd, self._load(self.regs[i.rs1] + i.imm, 4))

    def _op_lh(self, i):
        value = self._load(self.regs[i.rs1] + i.imm, 2)
        if value & 0x8000:
            value -= 1 << 16
        self._set(i.rd, value)

    def _op_lhu(self, i):
        self._set(i.rd, self._load(self.regs[i.rs1] + i.imm, 2))

    def _op_lb(self, i):
        value = self._load(self.regs[i.rs1] + i.imm, 1)
        if value & 0x80:
            value -= 1 << 8
        self._set(i.rd, value)

    def _op_lbu(self, i):
        self._set(i.rd, self._load(self.regs[i.rs1] + i.imm, 1))

    def _op_sw(self, i):
        self._store(self.regs[i.rs1] + i.imm, 4, self.regs[i.rs2])

    def _op_sh(self, i):
        self._store(self.regs[i.rs1] + i.imm, 2, self.regs[i.rs2] & 0xFFFF)

    def _op_sb(self, i):
        self._store(self.regs[i.rs1] + i.imm, 1, self.regs[i.rs2] & 0xFF)

    # Control

    def _op_beq(self, i):
        if self.regs[i.rs1] == self.regs[i.rs2]:
            self.pc = i.imm

    def _op_bne(self, i):
        if self.regs[i.rs1] != self.regs[i.rs2]:
            self.pc = i.imm

    def _op_blt(self, i):
        if signed32(self.regs[i.rs1]) < signed32(self.regs[i.rs2]):
            self.pc = i.imm

    def _op_bge(self, i):
        if signed32(self.regs[i.rs1]) >= signed32(self.regs[i.rs2]):
            self.pc = i.imm

    def _op_bltu(self, i):
        if self.regs[i.rs1] < self.regs[i.rs2]:
            self.pc = i.imm

    def _op_bgeu(self, i):
        if self.regs[i.rs1] >= self.regs[i.rs2]:
            self.pc = i.imm

    def _op_jal(self, i):
        self._set(i.rd, self.pc)  # pc already advanced to return index
        self.pc = i.imm

    def _op_jalr(self, i):
        target = (self.regs[i.rs1] + i.imm) & WORD_MASK
        self._set(i.rd, self.pc)
        self.pc = target

    # System

    def _op_out(self, i):
        byte = self.regs[i.rs1] & 0xFF
        self.serial.append(byte)
        oracle = self.oracle
        if oracle is not None:
            n = len(self.serial)
            if n > len(oracle) or oracle[n - 1] != byte:
                self.diverged = True
                self.halted = True

    def _op_detect(self, i):
        self.detections.append((self.cycle + 1, i.imm))

    def _op_halt(self, i):
        self.halted = True

    def _op_nop(self, i):
        pass
