""""Dilution Fault Tolerance" — the paper's benchmarking cheat (Section IV).

DFT is deliberately *not* a fault-tolerance mechanism: it performs no
useful work whatsoever, yet improves the fault-coverage metric of any
benchmark it is applied to, which is exactly the point of the paper's
Gedankenexperiment.  Three flavours are implemented:

* :func:`nop_dilution` (DFT) — prepend ``n`` NOPs, growing the time axis
  of the fault space; every added coordinate is "No Effect".
* :func:`load_dilution` (DFT′) — prepend ``n`` dummy loads instead, so
  the added faults count as "activated" and the Barbosa-style
  "exclude never-activated faults" restriction is defeated too.
* :func:`memory_dilution` — reserve extra never-used RAM, growing the
  memory axis instead of the time axis (Section IV-C notes this works
  just as well).

All three leave the absolute failure count F exactly unchanged — the
paper's proposed metric is immune to dilution.
"""

from __future__ import annotations

from .passes import (
    HardeningPass,
    TransformError,
    insert_after_label,
)

#: Scratch register clobbered by DFT′ dummy loads.  By this project's
#: convention r13 is a caller-saved scratch register; a dummy load into
#: it before the program proper starts is harmless.
DFT_SCRATCH_REG = "r13"


def nop_dilution(count: int, *, label: str = "start") -> HardeningPass:
    """DFT: prepend ``count`` NOPs at the program entry label.

    Increases the benchmark runtime Δt by ``count`` cycles; the new
    fault-space columns are all dead (no live data in them), so coverage
    rises while F stays constant.
    """
    if count < 0:
        raise TransformError("NOP count must be non-negative")
    return HardeningPass(
        name=f"dft{count}",
        description=f"dilution fault tolerance: {count} prepended NOPs",
        transform=lambda source: insert_after_label(
            source, label, ["        nop"] * count),
    )


def load_dilution(count: int, addresses: list[int] | list[str], *,
                  label: str = "start") -> HardeningPass:
    """DFT′: prepend ``count`` dummy loads cycling over ``addresses``.

    Each dummy load reads a RAM byte into a scratch register and
    discards it.  The read *activates* faults in the corresponding
    def/use interval, so restrictions that only count activated faults
    (Section IV-B) are fooled as well.  Addresses may be integers or
    data-label names.
    """
    if count < 0:
        raise TransformError("load count must be non-negative")
    if count > 0 and not addresses:
        raise TransformError("DFT' needs at least one address to re-read")
    lines = [
        f"        lbu  {DFT_SCRATCH_REG}, {addresses[i % len(addresses)]}"
        f"(zero)"
        for i in range(count)
    ]
    return HardeningPass(
        name=f"dftprime{count}",
        description=(f"dilution fault tolerance with activation: "
                     f"{count} prepended dummy loads"),
        transform=lambda source: insert_after_label(source, label, lines),
    )


def memory_dilution(extra_bytes: int) -> HardeningPass:
    """Spatial dilution: grow the RAM footprint by never-used bytes.

    Applied via :meth:`HardeningPass.apply_to_program` with a larger
    ``ram_size``; as a source pass it is the identity.  Provided as a
    pass so it composes and documents itself like the others.
    """
    if extra_bytes < 0:
        raise TransformError("extra_bytes must be non-negative")
    return HardeningPass(
        name=f"memdilute{extra_bytes}",
        description=(f"dilution via {extra_bytes} bytes of unused RAM "
                     "(apply with ram_size += extra_bytes)"),
        transform=lambda source: source,
    )


def dilute_program(program, *, nops: int = 0, loads: int = 0,
                   load_addresses=None, extra_bytes: int = 0):
    """Convenience: apply any combination of dilutions to a program."""
    source = program.source
    suffix_parts = []
    if nops:
        source = nop_dilution(nops).apply(source)
        suffix_parts.append(f"dft{nops}")
    if loads:
        source = load_dilution(loads, load_addresses or [0]).apply(source)
        suffix_parts.append(f"dftprime{loads}")
    if extra_bytes:
        suffix_parts.append(f"mem{extra_bytes}")
    from ..isa.assembler import assemble

    suffix = "+".join(suffix_parts) if suffix_parts else "diluted0"
    return assemble(source, name=f"{program.name}-{suffix}",
                    ram_size=program.ram_size + extra_bytes)
