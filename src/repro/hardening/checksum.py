"""Python-side mirror of the SUM+DMR object layout.

The assembly emitted by :mod:`repro.hardening.sumdmr` maintains, for
each protected object of ``n`` words::

    [ primary: n words | replica: n words | checksum: 1 word ]

with ``checksum = sum(primary words) mod 2^32``.  This module implements
the same arithmetic in Python so tests and analysis code can construct
initial images and verify RAM states without re-implementing the layout
ad hoc.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

WORD = 4
MASK32 = 0xFFFFFFFF


def additive_checksum(words: list[int]) -> int:
    """Sum of 32-bit words modulo 2^32 — detects any single-bit flip."""
    return sum(w & MASK32 for w in words) & MASK32


def protected_size_bytes(n_words: int) -> int:
    """Total RAM footprint of a protected object: 2n + 1 words."""
    if n_words <= 0:
        raise ValueError("object needs at least one word")
    return (2 * n_words + 1) * WORD


def initial_image(init_words: list[int]) -> bytes:
    """The consistent initial byte image: primary, replica, checksum."""
    if not init_words:
        raise ValueError("object needs at least one word")
    words = [w & MASK32 for w in init_words]
    image = words + words + [additive_checksum(words)]
    return struct.pack(f"<{len(image)}I", *image)


@dataclass(frozen=True)
class ObjectView:
    """A decoded view of a protected object in a RAM image."""

    primary: tuple[int, ...]
    replica: tuple[int, ...]
    checksum: int

    @property
    def primary_sum(self) -> int:
        return additive_checksum(list(self.primary))

    @property
    def replica_sum(self) -> int:
        return additive_checksum(list(self.replica))

    @property
    def is_consistent(self) -> bool:
        """Primary matches replica and both match the checksum."""
        return (self.primary == self.replica
                and self.primary_sum == self.checksum)

    @property
    def is_recoverable(self) -> bool:
        """A single corruption the check-and-repair logic can fix.

        Either the primary is intact, or the replica agrees with the
        checksum (restore), or primary and replica agree (checksum was
        hit — recompute).
        """
        return (self.primary_sum == self.checksum
                or self.replica_sum == self.checksum
                or self.primary == self.replica)


def read_object(ram: bytes | bytearray, addr: int,
                n_words: int) -> ObjectView:
    """Decode a protected object from a RAM image."""
    if addr % WORD:
        raise ValueError("protected objects must be word-aligned")
    total = protected_size_bytes(n_words)
    blob = bytes(ram[addr: addr + total])
    if len(blob) != total:
        raise ValueError("object extends beyond RAM image")
    values = struct.unpack(f"<{2 * n_words + 1}I", blob)
    return ObjectView(primary=values[:n_words],
                      replica=values[n_words: 2 * n_words],
                      checksum=values[2 * n_words])
