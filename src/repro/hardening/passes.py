"""Source-level transformation framework for hardening passes.

Hardening mechanisms in this project operate on assembly source text
(our benchmarks are assembly programs): a pass rewrites the source and
the result is re-assembled.  This mirrors the paper's setting, where
software-based hardware fault-tolerance is applied to a benchmark as a
program transformation, and keeps every variant inspectable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from ..isa.assembler import Program, assemble

#: A pass maps assembly source text to assembly source text.
SourcePass = Callable[[str], str]


class TransformError(ValueError):
    """A hardening pass could not be applied to the given source."""


def split_label(line: str) -> tuple[str, str]:
    """Split ``label:  instr`` into ``("label:", "instr")``.

    Either part may be empty.  Comments are preserved with the
    instruction part.
    """
    stripped = line.lstrip()
    match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*:)\s*(.*)$", stripped)
    if match:
        return match.group(1), match.group(2)
    return "", stripped


def insert_after_label(source: str, label: str,
                       new_lines: list[str]) -> str:
    """Insert instructions immediately after ``label:`` in the source.

    Handles both ``label:`` on its own line and ``label: instr`` on one
    line (the label is detached so the insertion lands between them).
    Raises :class:`TransformError` if the label does not occur exactly
    once.
    """
    target = f"{label}:"
    out: list[str] = []
    hits = 0
    for line in source.splitlines():
        head, rest = split_label(line)
        if head == target:
            hits += 1
            out.append(f"{target}")
            out.extend(new_lines)
            if rest.strip():
                out.append(f"        {rest}")
        else:
            out.append(line)
    if hits != 1:
        raise TransformError(
            f"label {label!r} occurs {hits} times, expected exactly once")
    return "\n".join(out) + "\n"


def append_to_data_segment(source: str, new_lines: list[str]) -> str:
    """Append directives to the end of the (single) ``.data`` segment.

    If the source has no data segment, one is created before ``.text``.
    """
    lines = source.splitlines()
    data_starts = [i for i, line in enumerate(lines)
                   if line.strip().startswith(".data")]
    if len(data_starts) > 1:
        raise TransformError("source has multiple .data segments")
    if not data_starts:
        text_starts = [i for i, line in enumerate(lines)
                       if line.strip().startswith(".text")]
        if not text_starts:
            raise TransformError("source has neither .data nor .text")
        insert_at = text_starts[0]
        block = ["        .data"] + new_lines
        return "\n".join(lines[:insert_at] + block + lines[insert_at:]) + "\n"
    # Find where the data segment ends (next .text or EOF).
    start = data_starts[0]
    end = len(lines)
    for i in range(start + 1, len(lines)):
        if lines[i].strip().startswith(".text"):
            end = i
            break
    return "\n".join(lines[:end] + new_lines + lines[end:]) + "\n"


@dataclass(frozen=True)
class HardeningPass:
    """A named, documented hardening transformation."""

    name: str
    description: str
    transform: SourcePass

    def apply(self, source: str) -> str:
        return self.transform(source)

    def apply_to_program(self, program: Program, *,
                         suffix: str | None = None,
                         ram_size: int | None = None) -> Program:
        """Re-assemble ``program`` with this pass applied.

        The variant is named ``<original>-<suffix>`` (suffix defaults to
        the pass name) so campaign results stay distinguishable.
        """
        new_source = self.apply(program.source)
        return assemble(
            new_source,
            name=f"{program.name}-{suffix or self.name}",
            ram_size=program.ram_size if ram_size is None else ram_size,
        )


def compose(*passes: HardeningPass) -> HardeningPass:
    """Compose passes left to right into a single pass."""
    if not passes:
        raise ValueError("compose needs at least one pass")

    def run_all(source: str) -> str:
        for p in passes:
            source = p.apply(source)
        return source

    return HardeningPass(
        name="+".join(p.name for p in passes),
        description="; then ".join(p.description for p in passes),
        transform=run_all,
    )
