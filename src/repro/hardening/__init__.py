"""Software-implemented hardware fault-tolerance mechanisms and cheats."""

from .checksum import (
    ObjectView,
    additive_checksum,
    initial_image,
    protected_size_bytes,
    read_object,
)
from .dft import (
    DFT_SCRATCH_REG,
    dilute_program,
    load_dilution,
    memory_dilution,
    nop_dilution,
)
from .passes import (
    HardeningPass,
    SourcePass,
    TransformError,
    append_to_data_segment,
    compose,
    insert_after_label,
    split_label,
)
from .sumdmr import ProtectedObject, SumDmrEmitter
from .tmr import TmrEmitter, TmrWord

__all__ = [
    "DFT_SCRATCH_REG",
    "HardeningPass",
    "ObjectView",
    "ProtectedObject",
    "SourcePass",
    "SumDmrEmitter",
    "TmrEmitter",
    "TmrWord",
    "TransformError",
    "additive_checksum",
    "append_to_data_segment",
    "compose",
    "dilute_program",
    "initial_image",
    "insert_after_label",
    "load_dilution",
    "memory_dilution",
    "nop_dilution",
    "protected_size_bytes",
    "read_object",
    "split_label",
]
