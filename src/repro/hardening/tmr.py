"""Triple modular redundancy for static words — an extension mechanism.

Not part of the paper's data set, but a second, structurally different
software fault-tolerance mechanism: every protected word is stored three
times; reads vote out a corrupted copy, writes refresh all three.  Used
by the ablation benchmarks to show that the paper's comparison metric
ranks *any* mechanism by its true failure-count effect, regardless of
how the mechanism works.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..campaign.outcomes import CORRECTED_CODE
from .checksum import WORD


@dataclass(frozen=True)
class TmrWord:
    """A statically allocated triplicated 32-bit word."""

    name: str

    @property
    def size_bytes(self) -> int:
        return 3 * WORD

    def copy(self, index: int) -> str:
        if not 0 <= index < 3:
            raise IndexError("TMR has exactly three copies")
        return self.name if index == 0 else f"{self.name}+{index * WORD}"


class TmrEmitter:
    """Emits data layout and inline voting code for TMR words.

    Emitted code clobbers r10–r12 (within the project's r10–r13 scratch
    convention) and leaves the voted value in ``dest``.
    """

    def __init__(self, *, corrected_code: int = CORRECTED_CODE):
        self.corrected_code = corrected_code
        self._label_counter = 0

    def data_lines(self, word: TmrWord, init: int) -> list[str]:
        value = init & 0xFFFFFFFF
        return [f"{word.name}: .word {value}, {value}, {value}"]

    def emit_store(self, word: TmrWord, src: str = "r10") -> list[str]:
        """Write ``src`` to all three copies."""
        return [f"        sw   {src}, {word.copy(i)}(zero)"
                for i in range(3)]

    def emit_load(self, word: TmrWord, dest: str = "r10") -> list[str]:
        """Majority-vote read into ``dest`` with in-place repair.

        Copy A and B agree on the fast path (3 cycles); otherwise the
        third copy breaks the tie, the odd copy is rewritten and a
        corrected-error detection is signalled.
        """
        if dest in ("r11", "r12"):
            raise ValueError("dest collides with voting scratch registers")
        k = self._label_counter
        self._label_counter += 1
        ok = f"__tmr{k}_ok"
        fix_b = f"__tmr{k}_fixb"
        return [
            f"        lw   {dest}, {word.copy(0)}(zero)",
            f"        lw   r11, {word.copy(1)}(zero)",
            f"        beq  {dest}, r11, {ok}",
            f"        lw   r12, {word.copy(2)}(zero)",
            f"        beq  {dest}, r12, {fix_b}",
            # A is the odd one out (B == C under the single-fault model).
            f"        addi {dest}, r11, 0",
            f"        sw   {dest}, {word.copy(0)}(zero)",
            f"        detect {self.corrected_code}",
            f"        j    {ok}",
            f"{fix_b}:",
            f"        sw   {dest}, {word.copy(1)}(zero)",
            f"        detect {self.corrected_code}",
            f"{ok}:",
        ]
