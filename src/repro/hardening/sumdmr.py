"""SUM+DMR protection: checksum plus data duplication (Section II-D).

This is the reproduction's analog of the "SUM+DMR" mechanism from the
paper's data set (Borchert et al.'s generic object protection): critical
data structures with long lifetimes are guarded by an additive checksum
and a full duplicate.

Every protected object of ``n`` words occupies ``2n + 1`` words of RAM::

    name:          .word d0 .. d{n-1}      ; primary (the working copy)
    name+4n:       .word d0 .. d{n-1}      ; replica
    name+8n:       .word sum(d)            ; additive checksum

* **check-and-repair** runs before the object is used: it sums the
  primary and compares against the stored checksum.  On mismatch it
  tries the replica (restore + ``detect CORRECTED``), then a corrupted
  checksum (recompute + ``detect CORRECTED``), and otherwise announces
  an unrecoverable error (``detect PANIC``; fail-stop ``halt``).
* **update** runs after the object is modified: it refreshes the replica
  and the checksum.

The emitters produce *inline* assembly (no subroutine calls) so they
can be used inside other subroutines without link-register juggling;
they clobber only the scratch registers r10–r13 reserved by this
project's calling convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..campaign.outcomes import CORRECTED_CODE, PANIC_CODE
from .checksum import WORD, additive_checksum


@dataclass(frozen=True)
class ProtectedObject:
    """A statically allocated SUM+DMR-protected object."""

    name: str
    n_words: int

    def __post_init__(self) -> None:
        if self.n_words <= 0:
            raise ValueError("object needs at least one word")

    @property
    def replica_offset(self) -> int:
        return self.n_words * WORD

    @property
    def checksum_offset(self) -> int:
        return 2 * self.n_words * WORD

    @property
    def size_bytes(self) -> int:
        return (2 * self.n_words + 1) * WORD

    def word(self, index: int) -> str:
        """Operand text for primary word ``index``: ``name+off``."""
        if not 0 <= index < self.n_words:
            raise IndexError(f"word {index} out of range")
        return _off(self.name, index * WORD)

    def replica_word(self, index: int) -> str:
        if not 0 <= index < self.n_words:
            raise IndexError(f"word {index} out of range")
        return _off(self.name, self.replica_offset + index * WORD)

    @property
    def checksum_word(self) -> str:
        return _off(self.name, self.checksum_offset)


def _off(name: str, offset: int) -> str:
    return name if offset == 0 else f"{name}+{offset}"


class SumDmrEmitter:
    """Emits data layout and inline guard code for protected objects.

    One emitter per generated program; it uniquifies branch labels
    across all emitted check sequences.
    """

    #: Scratch registers clobbered by emitted code.
    SCRATCH = ("r10", "r11", "r12", "r13")

    def __init__(self, *, corrected_code: int = CORRECTED_CODE,
                 panic_code: int = PANIC_CODE):
        if not panic_code >= PANIC_CODE:
            raise ValueError(
                f"panic code must be >= {PANIC_CODE:#x} to classify as "
                "fail-stop")
        self.corrected_code = corrected_code
        self.panic_code = panic_code
        self._label_counter = 0

    # -- data segment ---------------------------------------------------------

    def data_lines(self, obj: ProtectedObject,
                   init_words: list[int]) -> list[str]:
        """Directives for a consistent initial object image."""
        if len(init_words) != obj.n_words:
            raise ValueError(
                f"{obj.name}: {len(init_words)} initializers for "
                f"{obj.n_words} words")
        words = ", ".join(str(w & 0xFFFFFFFF) for w in init_words)
        checksum = additive_checksum(init_words)
        return [
            f"{obj.name}: .word {words}          ; primary",
            f"        .word {words}          ; replica",
            f"        .word {checksum}       ; checksum",
        ]

    # -- inline guards ----------------------------------------------------------

    @staticmethod
    def _operand(obj: ProtectedObject, offset: int,
                 base: str | None) -> str:
        """Memory operand for byte ``offset`` into the object.

        ``base=None`` addresses the object statically via its data label
        (``name+off(zero)``); otherwise ``base`` is a register holding
        the object's address (``off(base)``) — used for dynamically
        indexed objects such as the TCB of the current thread.
        """
        if base is None:
            return f"{_off(obj.name, offset)}(zero)"
        return f"{offset}({base})"

    def emit_update(self, obj: ProtectedObject, *,
                    base: str | None = None) -> list[str]:
        """Refresh replica and checksum after the primary was modified.

        Cost: ``3n + 2`` cycles for an ``n``-word object.  Clobbers
        r10–r11; ``base`` (if any) must not be one of the scratch
        registers.
        """
        self._check_base(base)
        mem = lambda off: self._operand(obj, off, base)
        lines = ["        addi r10, zero, 0"]
        for i in range(obj.n_words):
            lines += [
                f"        lw   r11, {mem(i * WORD)}",
                "        add  r10, r10, r11",
                f"        sw   r11, {mem(obj.replica_offset + i * WORD)}",
            ]
        lines.append(f"        sw   r10, {mem(obj.checksum_offset)}")
        return lines

    def emit_check(self, obj: ProtectedObject, *,
                   base: str | None = None) -> list[str]:
        """Check-and-repair before the primary is used.

        Fast path (no corruption): ``2n + 3`` cycles.  Clobbers r10–r13;
        ``base`` (if any) must not be one of the scratch registers.
        """
        self._check_base(base)
        mem = lambda off: self._operand(obj, off, base)
        k = self._label_counter
        self._label_counter += 1
        ok = f"__sd{k}_ok"
        restore = f"__sd{k}_restore"
        fixsum = f"__sd{k}_fixsum"

        lines = ["        addi r10, zero, 0"]
        for i in range(obj.n_words):
            lines += [
                f"        lw   r13, {mem(i * WORD)}",
                "        add  r10, r10, r13",
            ]
        lines += [
            f"        lw   r12, {mem(obj.checksum_offset)}",
            f"        beq  r10, r12, {ok}",
            # Mismatch: sum the replica.
            "        addi r11, zero, 0",
        ]
        for i in range(obj.n_words):
            lines += [
                f"        lw   r13, {mem(obj.replica_offset + i * WORD)}",
                "        add  r11, r11, r13",
            ]
        lines += [
            f"        beq  r11, r12, {restore}",
            f"        beq  r10, r11, {fixsum}",
            f"        detect {self.panic_code:#x}",
            "        halt",
            f"{restore}:",
        ]
        for i in range(obj.n_words):
            lines += [
                f"        lw   r13, {mem(obj.replica_offset + i * WORD)}",
                f"        sw   r13, {mem(i * WORD)}",
            ]
        lines += [
            f"        detect {self.corrected_code}",
            f"        j    {ok}",
            f"{fixsum}:",
            f"        sw   r10, {mem(obj.checksum_offset)}",
            f"        detect {self.corrected_code}",
            f"{ok}:",
        ]
        return lines

    @classmethod
    def _check_base(cls, base: str | None) -> None:
        if base is not None and base in cls.SCRATCH:
            raise ValueError(
                f"base register {base} collides with guard scratch "
                f"registers {cls.SCRATCH}")
