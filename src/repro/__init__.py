"""repro — reproduction of "Avoiding Pitfalls in Fault-Injection Based
Comparison of Program Susceptibility to Soft Errors" (DSN 2015).

The package builds, from scratch, everything the paper's methodology
needs:

* :mod:`repro.isa` — a deterministic RISC machine (the paper's machine
  model) with an assembler, tracing and snapshots;
* :mod:`repro.faultspace` — the cycles × bits fault-space model, def/use
  pruning and samplers;
* :mod:`repro.campaign` — the FAIL*-style fault-injection campaign
  engine (full scans, brute force, sampling, outcome taxonomy);
* :mod:`repro.engine` — pluggable execution engines: the interpreter
  oracle, a template JIT, and lockstep vectorized batch replay;
* :mod:`repro.metrics` — fault coverage (and why it is unsound),
  extrapolated absolute failure counts, the comparison ratio r, the
  Poisson fault model, confidence intervals, MWTF;
* :mod:`repro.hardening` — SUM+DMR, TMR and the "Dilution Fault
  Tolerance" cheat of Section IV;
* :mod:`repro.kernel` / :mod:`repro.programs` — a cooperative threading
  kernel and the bin_sem2/sync2 eCos-test analogs, plus the "Hi"
  benchmark of Figure 3;
* :mod:`repro.analysis` — data and text reports for every table/figure.

Quickstart::

    from repro.programs import hi
    from repro.campaign import record_golden, run_full_scan
    from repro.metrics import compare, weighted_coverage

    base = run_full_scan(record_golden(hi.baseline()))
    dft = run_full_scan(record_golden(hi.dft_variant(4)))
    print(weighted_coverage(base), weighted_coverage(dft))  # 0.625 0.75
    print(compare(base, dft).ratio)                         # 1.0
"""

__version__ = "1.0.0"

from . import analysis, campaign, engine, faultspace, hardening, isa, \
    kernel, metrics, programs

__all__ = [
    "__version__",
    "analysis",
    "campaign",
    "engine",
    "faultspace",
    "hardening",
    "isa",
    "kernel",
    "metrics",
    "programs",
]
