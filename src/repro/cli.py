"""Command-line interface: ``python -m repro <command>``.

Commands:

``table1``
    Print the Poisson fault-count table (Table I).
``scan <program> [--domain D] [--jobs N] [--samples N]``
    Run a def/use-pruned full fault-space scan of a registered program
    and print its outcome histogram, coverage and failure count; with
    ``--samples`` run a sampled campaign instead.  ``--domain`` picks
    the fault model (memory bits by default, ``register`` for the
    Section VI-B register file).  ``--jobs`` shards the campaign over
    worker processes (0 = one per CPU) and a live progress/ETA line is
    printed to stderr.
``fig3``
    Run the Section IV dilution experiment and print the table.
``fig2 [--rounds N] [--items N]``
    Run the four Figure 2 campaigns (reduced sizes by default) and
    print the panels and verdicts.
``list [--sizes]``
    List the registered benchmark programs; ``--sizes`` records each
    golden run and prints both domains' fault-space sizes.
``render <program>``
    Print the ASCII fault-space diagram of a (small) program.
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis import (
    fig2_data,
    fig2_report,
    fig3_report,
    outcome_histogram,
    render_fault_space,
    table1_report,
    verdict_report,
)
from .campaign import (
    CampaignSummary,
    record_golden,
    run_full_scan,
    run_sampling,
)
from .campaign.runner import SAMPLERS
from .faultspace import DOMAINS, REGISTER, get_domain
from .metrics import weighted_coverage, weighted_failure_count
from .programs import all_programs, bin_sem2, hi, sync2


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    return jobs


def _eta_progress(label: str):
    """Progress callback printing a live ``done/total`` + ETA line."""
    start = time.monotonic()

    def callback(done: int, total: int) -> None:
        elapsed = time.monotonic() - start
        remaining = elapsed / done * (total - done) if done else 0.0
        end = "\n" if done >= total else ""
        print(f"\r{label}: {done}/{total} ({100.0 * done / total:3.0f}%)"
              f"  elapsed {elapsed:5.1f}s  ETA {remaining:5.1f}s",
              end=end, file=sys.stderr, flush=True)

    return callback


def _resolve(name: str):
    programs = all_programs()
    if name not in programs:
        available = ", ".join(sorted(programs))
        raise SystemExit(f"unknown program {name!r}; available: "
                         f"{available}")
    return programs[name]()


def cmd_table1(_args) -> None:
    print(table1_report())


def cmd_list(args) -> None:
    for name, thunk in sorted(all_programs().items()):
        program = thunk()
        line = (f"{name:20s} rom={program.rom_size:4d} "
                f"ram={program.ram_size:5d}B")
        if args.sizes:
            golden = record_golden(program)
            line += (f" Δt={golden.cycles:6d}"
                     f" w_mem={golden.fault_space.size:10d}"
                     f" w_reg={REGISTER.fault_space(golden).size:10d}")
        print(line)


def cmd_render(args) -> None:
    golden = record_golden(_resolve(args.program))
    print(f"{golden.program.name}: Δt={golden.cycles} cycles, "
          f"memory w={golden.fault_space.size}, "
          f"register w={REGISTER.fault_space(golden).size}")
    print(render_fault_space(golden, max_cycles=args.max_cycles,
                             max_bytes=args.max_bytes))


def cmd_scan(args) -> None:
    program = _resolve(args.program)
    domain = get_domain(args.domain)
    golden = record_golden(program)
    space = domain.fault_space(golden)
    print(f"{program.name} [{domain.name} domain]: "
          f"Δt={golden.cycles} cycles, w={space.size}")
    if args.samples:
        result = run_sampling(golden, args.samples, seed=args.seed,
                              sampler=args.sampler, jobs=args.jobs,
                              domain=domain,
                              progress=_eta_progress("experiments"))
        scale = result.population / result.n_samples
        print(f"sampled {result.n_samples} faults "
              f"({result.experiments_conducted} experiments conducted, "
              f"sampler={result.sampler})")
        for outcome, count in sorted(result.counts().items(),
                                     key=lambda kv: -kv[1]):
            print(f"  {outcome.value:24s} {count:8d}  "
                  f"(extrapolated {count * scale:14.0f})")
        print(f"estimated failure count F̂: "
              f"{result.failure_count() * scale:.0f}")
        return
    scan = run_full_scan(golden, jobs=args.jobs, domain=domain,
                         progress=_eta_progress("classes"))
    print(outcome_histogram(scan))
    print(f"\nweighted coverage: {100 * weighted_coverage(scan):.2f}%")
    print(f"absolute failure count F: "
          f"{weighted_failure_count(scan).total:.0f}")


def cmd_fig3(_args) -> None:
    summaries = {}
    for name, thunk in (("hi", hi.baseline),
                        ("hi-dft4", lambda: hi.dft_variant(4)),
                        ("hi-dftprime4", lambda: hi.dft_prime_variant(4)),
                        ("hi-mem2", lambda: hi.memory_diluted_variant(2))):
        summaries[name] = CampaignSummary.from_result(
            run_full_scan(record_golden(thunk())))
    print(fig3_report(summaries))


def cmd_fig2(args) -> None:
    variants = {
        "bin_sem2": bin_sem2.baseline(args.rounds),
        "bin_sem2-sumdmr": bin_sem2.hardened(args.rounds),
        "sync2": sync2.baseline(args.items),
        "sync2-sumdmr": sync2.hardened(args.items),
    }
    summaries = {}
    for name, program in variants.items():
        print(f"scanning {name}...", file=sys.stderr, flush=True)
        summaries[name] = CampaignSummary.from_result(
            run_full_scan(record_golden(program), jobs=args.jobs))
    print(fig2_report(fig2_data(summaries)))
    print()
    print(verdict_report(summaries["bin_sem2"],
                         summaries["bin_sem2-sumdmr"], "bin_sem2"))
    print()
    print(verdict_report(summaries["sync2"], summaries["sync2-sumdmr"],
                         "sync2"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DSN'15 fault-injection pitfalls reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(
        func=cmd_table1)
    listing = sub.add_parser("list", help="list registered programs")
    listing.add_argument("--sizes", action="store_true",
                         help="record golden runs and print the memory "
                              "and register fault-space sizes")
    listing.set_defaults(func=cmd_list)

    render = sub.add_parser("render", help="ASCII fault-space diagram")
    render.add_argument("program")
    render.add_argument("--max-cycles", type=int, default=64)
    render.add_argument("--max-bytes", type=int, default=8)
    render.set_defaults(func=cmd_render)

    scan = sub.add_parser("scan", help="full fault-space scan")
    scan.add_argument("program")
    scan.add_argument("--domain", choices=sorted(DOMAINS),
                      default="memory",
                      help="fault model to scan (default: memory)")
    scan.add_argument("--jobs", "-j", type=_jobs_arg, default=None,
                      help="worker processes (0 = one per CPU; "
                           "default: serial)")
    scan.add_argument("--samples", type=int, default=0,
                      help="run a sampled campaign of N faults instead "
                           "of the full scan")
    scan.add_argument("--seed", type=int, default=0,
                      help="sampling RNG seed")
    scan.add_argument("--sampler", choices=SAMPLERS, default="uniform",
                      help="sampling strategy (with --samples)")
    scan.set_defaults(func=cmd_scan)

    sub.add_parser("fig3", help="Section IV dilution table").set_defaults(
        func=cmd_fig3)

    fig2 = sub.add_parser("fig2", help="Figure 2 campaigns")
    fig2.add_argument("--rounds", type=int, default=2,
                      help="bin_sem2 rounds (paper scale: 4)")
    fig2.add_argument("--items", type=int, default=4,
                      help="sync2 items (paper scale: 10)")
    fig2.add_argument("--jobs", "-j", type=_jobs_arg, default=None,
                      help="worker processes (0 = one per CPU; "
                           "default: serial)")
    fig2.set_defaults(func=cmd_fig2)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
