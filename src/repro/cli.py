"""Command-line interface: ``python -m repro <command>``.

Commands:

``table1``
    Print the Poisson fault-count table (Table I).
``scan <program> [--domain D] [--jobs N] [--samples N] [--journal P]``
    Run a def/use-pruned full fault-space scan of a registered program
    and print its outcome histogram, coverage and failure count; with
    ``--samples`` run a sampled campaign instead.  ``--domain`` picks
    the fault model (memory bits by default, ``register`` for the
    Section VI-B register file).  ``--jobs`` shards the campaign over
    worker processes (0 = one per CPU) and a live progress/ETA line is
    printed to stderr.  ``--journal PATH`` journals every completed
    work unit to a SQLite file: an interrupted scan rerun against the
    same journal resumes where it left off (``--fresh`` discards the
    journaled campaign first).  ``--shard-timeout`` / ``--max-retries``
    tune the parallel engine's robustness policy.
    ``--no-convergence`` / ``--checkpoint-stride`` control the
    convergence early-exit (a pure optimization; outcomes are identical
    either way).
``resume --journal PATH [<program>]``
    Without a program: list the campaigns the journal holds and their
    progress.  With a program: continue its journaled campaign — the
    same as rerunning ``scan`` with the same arguments and journal.
``compare <baseline> <variant>... [--journal P] [--csv P]``
    Run baseline + N hardened variants as one comparison sweep and
    print the side-by-side table of the sound failure-count ratio and
    the pitfall metrics.  With ``--journal`` the sweep is incremental:
    sections shared with earlier campaigns (a previous sweep, or other
    variants) compose from the section store instead of re-executing,
    and each variant's summary is cached in the journal.
``journal --journal PATH [--gc] [--salvage]``
    List a journal's campaigns and its section store (stored results
    and referencing campaigns per section) plus a size report;
    ``--gc`` drops section results no campaign references.
    ``--salvage`` rebuilds a corrupt journal from its readable rows
    first (the original is kept at ``PATH.corrupt``).
``fabric --journal PATH``
    Show the distributed fabric's state per campaign: shard leases and
    their retry budgets, plus the supervision/integrity event log
    (quarantines, CRC rejections, cross-check disputes, poison-shard
    bisections).  Exits ``3`` when any campaign is incomplete.
``coordinator <program> [--port P] [--shards N] [--journal P]``
    Serve a distributed full scan: workers connect over TCP, pull work
    leases, and stream results back; the coordinator owns the journal
    and survives worker loss (see ``repro worker``).  ``scan --dist N``
    does the same in one command, spawning N local worker processes.
``worker --connect HOST:PORT [--name N]``
    Join a distributed campaign as a worker.  The worker re-assembles
    the program from shipped source and re-verifies the golden run
    before executing, reconnects with backoff after a coordinator
    restart, and exits when the campaign completes.

Exit codes: ``0`` success; ``3`` when a scan finished *incomplete*
(shards abandoned after their retry budget — the printed report lists
the missing units), so scripted campaigns can detect degraded results.
``fig3``
    Run the Section IV dilution experiment and print the table.
``fig2 [--rounds N] [--items N]``
    Run the four Figure 2 campaigns (reduced sizes by default) and
    print the panels and verdicts.
``list [--sizes]``
    List the registered benchmark programs; ``--sizes`` records each
    golden run and prints every registered domain's fault-space size.
``render <program>``
    Print the ASCII fault-space diagram of a (small) program.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .analysis import (
    completeness_report,
    fig2_data,
    fig2_report,
    fig3_report,
    outcome_histogram,
    render_fault_space,
    table1_report,
    verdict_report,
)
from .campaign import (
    CampaignSummary,
    ExecutorConfig,
    ExperimentJournal,
    RetryPolicy,
    record_golden,
    run_full_scan,
    run_sampling,
)
from .campaign.runner import SAMPLERS
from .engine import ENGINES
from .faultspace import DOMAINS, REGISTER, get_domain
from .metrics import weighted_coverage, weighted_failure_count
from .programs import all_programs, bin_sem2, hi, sync2


#: Exit status of a scan whose result is incomplete (missing units).
EXIT_INCOMPLETE = 3


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    return jobs


def _eta_progress(label: str):
    """Progress callback printing a live ``done/total`` + ETA line."""
    start = time.monotonic()

    def callback(done: int, total: int) -> None:
        elapsed = time.monotonic() - start
        remaining = elapsed / done * (total - done) if done else 0.0
        end = "\n" if done >= total else ""
        print(f"\r{label}: {done}/{total} ({100.0 * done / total:3.0f}%)"
              f"  elapsed {elapsed:5.1f}s  ETA {remaining:5.1f}s",
              end=end, file=sys.stderr, flush=True)

    return callback


def _resolve(name: str):
    programs = all_programs()
    if name not in programs:
        available = ", ".join(sorted(programs))
        raise SystemExit(f"unknown program {name!r}; available: "
                         f"{available}")
    return programs[name]()


def cmd_table1(_args) -> None:
    print(table1_report())


def cmd_list(args) -> None:
    for name, thunk in sorted(all_programs().items()):
        program = thunk()
        line = (f"{name:20s} rom={program.rom_size:4d} "
                f"ram={program.ram_size:5d}B")
        if args.sizes:
            golden = record_golden(program)
            line += f" Δt={golden.cycles:6d}"
            # Every registered fault model, not just memory/register:
            # a new domain must show up here without a CLI change.
            for domain_name in sorted(DOMAINS):
                domain = DOMAINS[domain_name]
                size = domain.fault_space(golden).size
                line += f" w_{domain_name}={size}"
        print(line)


def cmd_render(args) -> None:
    golden = record_golden(_resolve(args.program))
    print(f"{golden.program.name}: Δt={golden.cycles} cycles, "
          f"memory w={golden.fault_space.size}, "
          f"register w={REGISTER.fault_space(golden).size}")
    print(render_fault_space(golden, max_cycles=args.max_cycles,
                             max_bytes=args.max_bytes))


def _scan_policy(args) -> RetryPolicy | None:
    """A parallel-engine policy when any robustness flag was given."""
    overrides = {}
    if getattr(args, "shard_timeout", None) is not None:
        overrides["shard_timeout"] = args.shard_timeout
    if getattr(args, "max_retries", None) is not None:
        overrides["max_retries"] = args.max_retries
    return RetryPolicy(**overrides) if overrides else None


def _chaos_plan(args):
    """A :class:`ChaosPlan` from ``--chaos``/``--chaos-seed``, or None."""
    spec = getattr(args, "chaos", None)
    seed = getattr(args, "chaos_seed", None)
    if spec is None and seed is None:
        return None
    from .campaign.dist.chaos import ChaosPlan

    try:
        data = json.loads(spec) if spec else {}
    except json.JSONDecodeError as exc:
        raise SystemExit(f"--chaos expects a JSON chaos plan: {exc}")
    if seed is not None:
        data["seed"] = seed
    try:
        return ChaosPlan.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"invalid --chaos plan: {exc}")


def _print_execution(execution) -> None:
    """Print the completeness report when there is anything to say."""
    if execution is None:
        return
    if (execution.resumed or execution.timed_out_shards
            or execution.shard_retries or execution.convergence_hits
            or execution.slice_hits or execution.scalar_tail_experiments
            or execution.composed_hits or execution.integrity_rejected
            or execution.crosschecked or execution.discarded_results
            or execution.poison_splits or execution.quarantined_workers
            or execution.workers or not execution.complete):
        print(completeness_report(execution))


def _exit_status(execution) -> int:
    """0 for a complete campaign, :data:`EXIT_INCOMPLETE` otherwise."""
    if execution is not None and not execution.complete:
        return EXIT_INCOMPLETE
    return 0


def _print_scan(scan) -> int:
    """Print a full-scan result; return the process exit status."""
    _print_execution(scan.execution)
    print(outcome_histogram(scan))
    print(f"\nweighted coverage: {100 * weighted_coverage(scan):.2f}%")
    print(f"absolute failure count F: "
          f"{weighted_failure_count(scan).total:.0f}")
    return _exit_status(scan.execution)


def cmd_scan(args) -> int:
    program = _resolve(args.program)
    domain = get_domain(args.domain)
    golden = record_golden(
        program, checkpoint_stride=getattr(args, "checkpoint_stride", None))
    space = domain.fault_space(golden)
    resume = not getattr(args, "fresh", False)
    policy = _scan_policy(args)
    config = ExecutorConfig(
        use_convergence=not getattr(args, "no_convergence", False),
        engine=getattr(args, "engine", "auto"),
        heartbeat_interval=getattr(args, "heartbeat_interval", None),
        lease_timeout=getattr(args, "lease_timeout", None))
    print(f"{program.name} [{domain.name} domain]: "
          f"Δt={golden.cycles} cycles, w={space.size}")
    if args.samples:
        result = run_sampling(golden, args.samples, seed=args.seed,
                              sampler=args.sampler, jobs=args.jobs,
                              domain=domain, journal=args.journal,
                              resume=resume, policy=policy, config=config,
                              progress=_eta_progress("experiments"))
        _print_execution(result.execution)
        scale = result.population / result.n_samples
        print(f"sampled {result.n_samples} faults "
              f"({result.experiments_conducted} experiments conducted, "
              f"sampler={result.sampler})")
        for outcome, count in sorted(result.counts().items(),
                                     key=lambda kv: -kv[1]):
            print(f"  {outcome.value:24s} {count:8d}  "
                  f"(extrapolated {count * scale:14.0f})")
        print(f"estimated failure count F̂: "
              f"{result.failure_count() * scale:.0f}")
        return _exit_status(result.execution)
    if getattr(args, "dist", None):
        if args.jobs is not None:
            raise SystemExit("--dist spawns its own workers; drop --jobs")
        from .campaign.dist import run_distributed_scan

        scan = run_distributed_scan(
            golden, workers=args.dist, domain=domain,
            executor_config=config, policy=policy, shards=args.shards,
            journal=args.journal, resume=resume,
            chaos=_chaos_plan(args),
            crosscheck=getattr(args, "crosscheck", 0.0),
            progress=_eta_progress("classes"))
        if scan is None:
            print("coordinator stopped by its chaos schedule; results "
                  "so far are journaled", file=sys.stderr)
            return EXIT_INCOMPLETE
        return _print_scan(scan)
    scan = run_full_scan(golden, jobs=args.jobs, domain=domain,
                         journal=args.journal, resume=resume,
                         policy=policy, config=config,
                         progress=_eta_progress("classes"))
    return _print_scan(scan)


def cmd_resume(args) -> int:
    if args.program is None:
        with ExperimentJournal(args.journal) as journal:
            campaigns = journal.campaigns()
        if not campaigns:
            print(f"journal {args.journal}: no campaigns")
            return 0
        print(f"journal {args.journal}: {len(campaigns)} campaign(s)")
        for entry in campaigns:
            print(f"  #{entry['id']} {entry['kind']:11s} "
                  f"[{entry['domain']} domain] {entry['status']:8s} "
                  f"{entry['journaled_experiments']:8d} experiments "
                  f"journaled  fingerprint={entry['fingerprint'][:12]}")
        incomplete = [entry for entry in campaigns
                      if entry["status"] != "complete"]
        if incomplete:
            print(f"{len(incomplete)} campaign(s) incomplete — rerun "
                  f"with the same journal to finish")
            return EXIT_INCOMPLETE
        return 0
    # With a program the command is a journaled scan that must resume.
    args.fresh = False
    return cmd_scan(args)


def cmd_compare(args) -> int:
    """Sweep baseline + N variants as one incremental comparison."""
    from .campaign.database import JournalCache
    from .metrics import (
        comparison_report,
        comparison_table,
        export_comparison_csv,
    )

    if args.samples:
        raise SystemExit("compare needs full scans (the pitfall metrics "
                         "require complete data); drop --samples")
    domain = get_domain(args.domain)
    names = [args.baseline] + args.variants
    duplicates = {n for n in names if names.count(n) > 1}
    if duplicates:
        raise SystemExit(f"duplicate variant(s): "
                         f"{', '.join(sorted(duplicates))}")
    policy = _scan_policy(args)
    config = ExecutorConfig(
        use_convergence=not getattr(args, "no_convergence", False),
        engine=getattr(args, "engine", "auto"))
    status = 0
    results = {}
    for name in names:
        program = _resolve(name)
        golden = record_golden(
            program,
            checkpoint_stride=getattr(args, "checkpoint_stride", None))
        print(f"{name} [{domain.name} domain]: Δt={golden.cycles} "
              f"cycles, w={domain.fault_space(golden).size}")
        scan = run_full_scan(golden, jobs=args.jobs, domain=domain,
                             journal=args.journal, policy=policy,
                             config=config,
                             progress=_eta_progress("classes"))
        _print_execution(scan.execution)
        status = status or _exit_status(scan.execution)
        results[name] = (program, scan)
    if status:
        print("comparison skipped: at least one campaign is incomplete; "
              "rerun with the same journal to finish")
        return status
    reports = [comparison_report(name, results[args.baseline][1],
                                 results[name][1])
               for name in args.variants]
    print()
    print(comparison_table(reports))
    if args.journal:
        # Summaries land in the journal's summaries table next to the
        # section store that composed them (JournalCache, schema v2).
        with ExperimentJournal(args.journal) as journal:
            cache = JournalCache(journal)
            for program, scan in results.values():
                cache.store(program, CampaignSummary.from_result(scan))
    if args.csv:
        export_comparison_csv(reports, args.csv)
        print(f"\ncomparison CSV written to {args.csv}")
    return status


def cmd_journal(args) -> int:
    """Inspect and maintain a journal's campaigns and section store."""
    with ExperimentJournal(args.journal,
                           salvage=getattr(args, "salvage",
                                           False)) as journal:
        salvaged = journal.salvage_report
        if salvaged is not None:
            print(f"salvage: journal failed its integrity check; "
                  f"rebuilt from {salvaged.total_rows} readable row(s) "
                  f"(original kept at {salvaged.source})")
            if salvaged.truncated:
                print(f"salvage: table(s) truncated by page damage: "
                      f"{', '.join(salvaged.truncated)}")
        if args.gc:
            freed = journal.gc_sections()
            print(f"gc: dropped {freed} orphaned section(s)")
        campaigns = journal.campaigns()
        print(f"journal {args.journal}: {len(campaigns)} campaign(s)")
        for entry in campaigns:
            print(f"  #{entry['id']} {entry['kind']:11s} "
                  f"[{entry['domain']} domain] {entry['status']:8s} "
                  f"{entry['journaled_experiments']:8d} experiments "
                  f"journaled  fingerprint={entry['fingerprint'][:12]}")
        sections = journal.sections()
        print(f"section store: {len(sections)} section(s)")
        for entry in sections:
            print(f"  #{entry['id']} {entry['program']:20s} "
                  f"[{entry['domain']} domain] slots "
                  f"{entry['first_slot']}-{entry['last_slot']}: "
                  f"{entry['stored_results']:6d} stored result(s), "
                  f"{entry['campaigns']} campaign(s)  "
                  f"fingerprint={entry['fingerprint'][:12]}")
        sizes = journal.size_report()
        file_bytes = sizes.pop("file_bytes")
        rows = ", ".join(f"{table}={count}"
                         for table, count in sorted(sizes.items())
                         if count)
        print(f"size: {file_bytes} bytes on disk ({rows or 'empty'})")
    return 0


def cmd_fabric(args) -> int:
    """Show the distributed fabric's journaled state per campaign."""
    with ExperimentJournal(args.journal) as journal:
        campaigns = journal.fabric_report()
    if not campaigns:
        print(f"journal {args.journal}: no campaigns")
        return 0
    print(f"journal {args.journal}: {len(campaigns)} campaign(s)")
    incomplete = 0
    for entry in campaigns:
        print(f"#{entry['id']} {entry['kind']} [{entry['domain']} "
              f"domain] {entry['status']} — "
              f"{entry['journaled_experiments']} experiments journaled  "
              f"fingerprint={entry['fingerprint'][:12]}")
        if entry["status"] != "complete":
            incomplete += 1
        if entry["leases"]:
            counts = {}
            for lease in entry["leases"]:
                counts[lease["status"]] = \
                    counts.get(lease["status"], 0) + 1
            summary = ", ".join(f"{n} {status}"
                                for status, n in sorted(counts.items()))
            print(f"  leases: {len(entry['leases'])} shard(s) — "
                  f"{summary}")
            for lease in entry["leases"]:
                if lease["status"] not in ("done", "pending") \
                        or lease["attempts"]:
                    worker = f" worker={lease['worker']}" \
                        if lease["worker"] else ""
                    print(f"    shard {lease['shard']}: "
                          f"{lease['status']}, "
                          f"{lease['attempts']} attempt(s){worker}")
        if entry["events"]:
            print(f"  events: {len(entry['events'])}")
            for event in entry["events"]:
                worker = f" [{event['worker']}]" if event["worker"] else ""
                print(f"    {event['kind']:20s}{worker} "
                      f"{event['detail']}")
    if incomplete:
        print(f"{incomplete} campaign(s) incomplete")
        return EXIT_INCOMPLETE
    return 0


def cmd_coordinator(args) -> int:
    import socket

    from .campaign.dist import DistCoordinator

    program = _resolve(args.program)
    domain = get_domain(args.domain)
    golden = record_golden(
        program, checkpoint_stride=getattr(args, "checkpoint_stride", None))
    policy = _scan_policy(args)
    config = ExecutorConfig(
        use_convergence=not getattr(args, "no_convergence", False),
        engine=getattr(args, "engine", "auto"),
        heartbeat_interval=getattr(args, "heartbeat_interval", None),
        lease_timeout=getattr(args, "lease_timeout", None))
    # Bind before announcing, so `--port 0` (OS-assigned) prints the
    # port workers can actually connect to.
    sock = socket.create_server((args.host, args.port))
    host, port = sock.getsockname()[:2]
    coordinator = DistCoordinator(
        golden, domain=domain, executor_config=config, policy=policy,
        shards=args.shards, journal=args.journal,
        resume=not getattr(args, "fresh", False), sock=sock,
        chaos=_chaos_plan(args),
        crosscheck=getattr(args, "crosscheck", 0.0),
        progress=_eta_progress("classes"))
    print(f"{program.name} [{domain.name} domain]: serving distributed "
          f"scan on {host}:{port} "
          f"({args.shards} shards); start workers with\n"
          f"  repro worker --connect {host}:{port}",
          file=sys.stderr)
    scan = coordinator.run()
    if scan is None:
        print("coordinator stopped by its chaos schedule; results so "
              "far are journaled", file=sys.stderr)
        return EXIT_INCOMPLETE
    return _print_scan(scan)


def cmd_worker(args) -> int:
    from .campaign.dist import DistWorker, WorkerRejected

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--connect expects HOST:PORT, got "
                         f"{args.connect!r}")
    worker = DistWorker(host, int(port), name=args.name,
                        max_reconnects=args.max_reconnects)
    try:
        executed = worker.run()
    except WorkerRejected as exc:
        raise SystemExit(f"worker rejected: {exc}")
    print(f"campaign complete; this worker executed {executed} "
          f"class(es)", file=sys.stderr)
    return 0


def cmd_fig3(_args) -> None:
    summaries = {}
    for name, thunk in (("hi", hi.baseline),
                        ("hi-dft4", lambda: hi.dft_variant(4)),
                        ("hi-dftprime4", lambda: hi.dft_prime_variant(4)),
                        ("hi-mem2", lambda: hi.memory_diluted_variant(2))):
        summaries[name] = CampaignSummary.from_result(
            run_full_scan(record_golden(thunk())))
    print(fig3_report(summaries))


def cmd_fig2(args) -> None:
    variants = {
        "bin_sem2": bin_sem2.baseline(args.rounds),
        "bin_sem2-sumdmr": bin_sem2.hardened(args.rounds),
        "sync2": sync2.baseline(args.items),
        "sync2-sumdmr": sync2.hardened(args.items),
    }
    summaries = {}
    for name, program in variants.items():
        print(f"scanning {name}...", file=sys.stderr, flush=True)
        summaries[name] = CampaignSummary.from_result(
            run_full_scan(record_golden(program), jobs=args.jobs))
    print(fig2_report(fig2_data(summaries)))
    print()
    print(verdict_report(summaries["bin_sem2"],
                         summaries["bin_sem2-sumdmr"], "bin_sem2"))
    print()
    print(verdict_report(summaries["sync2"], summaries["sync2-sumdmr"],
                         "sync2"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DSN'15 fault-injection pitfalls reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(
        func=cmd_table1)
    listing = sub.add_parser("list", help="list registered programs")
    listing.add_argument("--sizes", action="store_true",
                         help="record golden runs and print every "
                              "registered domain's fault-space size")
    listing.set_defaults(func=cmd_list)

    render = sub.add_parser("render", help="ASCII fault-space diagram")
    render.add_argument("program")
    render.add_argument("--max-cycles", type=int, default=64)
    render.add_argument("--max-bytes", type=int, default=8)
    render.set_defaults(func=cmd_render)

    def add_campaign_args(cmd, *, journal_required: bool) -> None:
        cmd.add_argument("--domain", choices=sorted(DOMAINS),
                         default="memory",
                         help="fault model to scan (default: memory)")
        cmd.add_argument("--jobs", "-j", type=_jobs_arg, default=None,
                         help="worker processes (0 = one per CPU; "
                              "default: serial)")
        cmd.add_argument("--samples", type=int, default=0,
                         help="run a sampled campaign of N faults instead "
                              "of the full scan")
        cmd.add_argument("--seed", type=int, default=0,
                         help="sampling RNG seed")
        cmd.add_argument("--sampler", choices=SAMPLERS, default="uniform",
                         help="sampling strategy (with --samples)")
        cmd.add_argument("--journal", metavar="PATH",
                         required=journal_required, default=None,
                         help="SQLite experiment journal: completed work "
                              "units are recorded durably and a rerun "
                              "resumes instead of restarting")
        cmd.add_argument("--shard-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock deadline per parallel shard "
                              "(default: derived from the golden run's "
                              "cycle count)")
        cmd.add_argument("--max-retries", type=int, default=None,
                         metavar="N",
                         help="resubmissions per shard after a worker "
                              "death before degrading to a partial "
                              "result (default: 2)")
        cmd.add_argument("--no-convergence", action="store_true",
                         help="disable the convergence early-exit "
                              "(classify every post-injection tail by "
                              "running it to completion; outcomes are "
                              "identical either way)")
        cmd.add_argument("--engine", choices=sorted(ENGINES),
                         default="auto",
                         help="execution engine: 'auto' (default) plans "
                              "per campaign between the template-JIT "
                              "'compiled' core, lockstep 'batch' replay "
                              "of same-slot experiments, and the "
                              "reference 'interp' interpreter; results "
                              "are bit-identical for every choice")
        cmd.add_argument("--checkpoint-stride", type=int, default=None,
                         metavar="K",
                         help="golden checkpoint-digest stride in cycles "
                              "(default: auto-tuned from the runtime; "
                              "0 disables the ladder)")
        cmd.add_argument("--heartbeat-interval", type=float,
                         default=None, metavar="SECONDS",
                         help="distributed workers' heartbeat cadence "
                              "(shipped with the campaign spec; "
                              "default: each worker's own 2s)")
        cmd.add_argument("--lease-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="fixed wall-clock budget per work lease "
                              "(default: derived from the shard's "
                              "estimated cycle cost)")

    def add_chaos_args(cmd) -> None:
        cmd.add_argument("--chaos-seed", type=int, default=None,
                         metavar="SEED",
                         help="seed the deterministic fabric chaos "
                              "schedule (with --chaos; alone it names "
                              "an all-zero-rate plan)")
        cmd.add_argument("--chaos", metavar="JSON", default=None,
                         help="chaos plan as JSON, e.g. "
                              "'{\"drop_rate\": 0.1, \"kill_rate\": "
                              "0.02}' — every worker runs this seeded "
                              "schedule (see campaign.dist.chaos)")
        cmd.add_argument("--crosscheck", type=float, default=0.0,
                         metavar="FRACTION",
                         help="re-execute this fraction of classes on "
                              "a second worker and byte-compare "
                              "(byzantine worker detection; default: 0)")

    scan = sub.add_parser("scan", help="full fault-space scan")
    scan.add_argument("program")
    add_campaign_args(scan, journal_required=False)
    scan.add_argument("--fresh", action="store_true",
                      help="discard the journaled campaign and restart "
                           "(with --journal)")
    scan.add_argument("--dist", type=int, default=None, metavar="N",
                      help="distribute the scan over N local worker "
                           "processes via the TCP campaign fabric "
                           "(excludes --jobs)")
    scan.add_argument("--shards", type=int, default=8, metavar="N",
                      help="work-lease granularity for --dist "
                           "(default: 8)")
    add_chaos_args(scan)
    scan.set_defaults(func=cmd_scan)

    resume = sub.add_parser(
        "resume", help="list or continue journaled campaigns")
    resume.add_argument("program", nargs="?", default=None)
    add_campaign_args(resume, journal_required=True)
    resume.set_defaults(func=cmd_resume)

    compare = sub.add_parser(
        "compare",
        help="incremental baseline-vs-variants comparison sweep")
    compare.add_argument("baseline",
                         help="baseline program the ratios divide by")
    compare.add_argument("variants", nargs="+",
                         help="hardened variant program(s) to compare")
    add_campaign_args(compare, journal_required=False)
    compare.add_argument("--csv", metavar="PATH", default=None,
                         help="also export the comparison table as CSV")
    compare.set_defaults(func=cmd_compare)

    journal = sub.add_parser(
        "journal",
        help="inspect a journal's campaigns and section store")
    journal.add_argument("--journal", metavar="PATH", required=True,
                         help="SQLite experiment journal to inspect")
    journal.add_argument("--gc", action="store_true",
                         help="drop section results no campaign "
                              "references before reporting")
    journal.add_argument("--salvage", action="store_true",
                         help="rebuild a corrupt journal from its "
                              "readable rows first (original kept at "
                              "PATH.corrupt)")
    journal.set_defaults(func=cmd_journal)

    fabric = sub.add_parser(
        "fabric",
        help="show the distributed fabric's leases and event log")
    fabric.add_argument("--journal", metavar="PATH", required=True,
                        help="SQLite experiment journal to inspect")
    fabric.set_defaults(func=cmd_fabric)

    coordinator = sub.add_parser(
        "coordinator",
        help="serve a distributed scan to TCP workers")
    coordinator.add_argument("program")
    add_campaign_args(coordinator, journal_required=False)
    coordinator.add_argument("--fresh", action="store_true",
                             help="discard the journaled campaign and "
                                  "restart (with --journal)")
    coordinator.add_argument("--host", default="127.0.0.1",
                             help="interface to listen on (default: "
                                  "127.0.0.1; 0.0.0.0 for multi-host)")
    coordinator.add_argument("--port", type=int, default=7716,
                             help="TCP port to listen on (default: 7716)")
    coordinator.add_argument("--shards", type=int, default=8, metavar="N",
                             help="work-lease granularity (default: 8)")
    add_chaos_args(coordinator)
    coordinator.set_defaults(func=cmd_coordinator)

    worker = sub.add_parser(
        "worker", help="join a distributed scan as a worker")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator endpoint to pull work from")
    worker.add_argument("--name", default=None,
                        help="worker identity in reports (default: "
                             "hostname-pid)")
    worker.add_argument("--max-reconnects", type=int, default=None,
                        metavar="N",
                        help="consecutive failed connection attempts "
                             "before giving up (default: retry forever)")
    worker.set_defaults(func=cmd_worker)

    sub.add_parser("fig3", help="Section IV dilution table").set_defaults(
        func=cmd_fig3)

    fig2 = sub.add_parser("fig2", help="Figure 2 campaigns")
    fig2.add_argument("--rounds", type=int, default=2,
                      help="bin_sem2 rounds (paper scale: 4)")
    fig2.add_argument("--items", type=int, default=4,
                      help="sync2 items (paper scale: 10)")
    fig2.add_argument("--jobs", "-j", type=_jobs_arg, default=None,
                      help="worker processes (0 = one per CPU; "
                           "default: serial)")
    fig2.set_defaults(func=cmd_fig2)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Commands return their exit status; informational ones return None.
    return args.func(args) or 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
