"""Command-line interface: ``python -m repro <command>``.

Commands:

``table1``
    Print the Poisson fault-count table (Table I).
``scan <program>``
    Run a def/use-pruned full fault-space scan of a registered program
    and print its outcome histogram, coverage and failure count.
``fig3``
    Run the Section IV dilution experiment and print the table.
``fig2 [--rounds N] [--items N]``
    Run the four Figure 2 campaigns (reduced sizes by default) and
    print the panels and verdicts.
``list``
    List the registered benchmark programs.
``render <program>``
    Print the ASCII fault-space diagram of a (small) program.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    fig2_data,
    fig2_report,
    fig3_report,
    outcome_histogram,
    render_fault_space,
    table1_report,
    verdict_report,
)
from .campaign import CampaignSummary, record_golden, run_full_scan
from .metrics import weighted_coverage, weighted_failure_count
from .programs import all_programs, bin_sem2, hi, sync2


def _resolve(name: str):
    programs = all_programs()
    if name not in programs:
        available = ", ".join(sorted(programs))
        raise SystemExit(f"unknown program {name!r}; available: "
                         f"{available}")
    return programs[name]()


def cmd_table1(_args) -> None:
    print(table1_report())


def cmd_list(_args) -> None:
    for name, thunk in sorted(all_programs().items()):
        program = thunk()
        print(f"{name:20s} rom={program.rom_size:4d} "
              f"ram={program.ram_size:5d}B")


def cmd_render(args) -> None:
    golden = record_golden(_resolve(args.program))
    print(render_fault_space(golden, max_cycles=args.max_cycles,
                             max_bytes=args.max_bytes))


def cmd_scan(args) -> None:
    program = _resolve(args.program)
    golden = record_golden(program)
    print(f"{program.name}: Δt={golden.cycles} cycles, "
          f"Δm={program.ram_size} bytes, w={golden.fault_space.size}")
    scan = run_full_scan(golden)
    print(outcome_histogram(scan))
    print(f"\nweighted coverage: {100 * weighted_coverage(scan):.2f}%")
    print(f"absolute failure count F: "
          f"{weighted_failure_count(scan).total:.0f}")


def cmd_fig3(_args) -> None:
    summaries = {}
    for name, thunk in (("hi", hi.baseline),
                        ("hi-dft4", lambda: hi.dft_variant(4)),
                        ("hi-dftprime4", lambda: hi.dft_prime_variant(4)),
                        ("hi-mem2", lambda: hi.memory_diluted_variant(2))):
        summaries[name] = CampaignSummary.from_result(
            run_full_scan(record_golden(thunk())))
    print(fig3_report(summaries))


def cmd_fig2(args) -> None:
    variants = {
        "bin_sem2": bin_sem2.baseline(args.rounds),
        "bin_sem2-sumdmr": bin_sem2.hardened(args.rounds),
        "sync2": sync2.baseline(args.items),
        "sync2-sumdmr": sync2.hardened(args.items),
    }
    summaries = {}
    for name, program in variants.items():
        print(f"scanning {name}...", file=sys.stderr, flush=True)
        summaries[name] = CampaignSummary.from_result(
            run_full_scan(record_golden(program)))
    print(fig2_report(fig2_data(summaries)))
    print()
    print(verdict_report(summaries["bin_sem2"],
                         summaries["bin_sem2-sumdmr"], "bin_sem2"))
    print()
    print(verdict_report(summaries["sync2"], summaries["sync2-sumdmr"],
                         "sync2"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DSN'15 fault-injection pitfalls reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(
        func=cmd_table1)
    sub.add_parser("list", help="list registered programs").set_defaults(
        func=cmd_list)

    render = sub.add_parser("render", help="ASCII fault-space diagram")
    render.add_argument("program")
    render.add_argument("--max-cycles", type=int, default=64)
    render.add_argument("--max-bytes", type=int, default=8)
    render.set_defaults(func=cmd_render)

    scan = sub.add_parser("scan", help="full fault-space scan")
    scan.add_argument("program")
    scan.set_defaults(func=cmd_scan)

    sub.add_parser("fig3", help="Section IV dilution table").set_defaults(
        func=cmd_fig3)

    fig2 = sub.add_parser("fig2", help="Figure 2 campaigns")
    fig2.add_argument("--rounds", type=int, default=2,
                      help="bin_sem2 rounds (paper scale: 4)")
    fig2.add_argument("--items", type=int, default=4,
                      help="sync2 items (paper scale: 10)")
    fig2.set_defaults(func=cmd_fig2)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
