"""Poisson fault-occurrence model (Section III-A, Table I, Section V-A).

Soft errors per bit are extremely rare; the number of independent faults
hitting one benchmark run is modeled as a Poisson process with parameter
``λ = g · w`` where ``g`` is the per-bit-per-cycle soft-error rate and
``w = Δt · Δm`` the fault-space size.

The module also carries the published DRAM soft-error rates the paper
uses to instantiate ``g`` and the derivation chain of Section V-A:

    P(Failure) ≈ P(Failure | 1 Fault) · P(1 Fault)
              = (F / w) · λ e^{-λ}
              = F · g · e^{-gw}  ∝  F
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Published DRAM soft-error rates in FIT/Mbit (Section III-A):
#: Sridharan & Liberty 2012, Hwang et al. 2012, Sridharan et al. 2013.
PUBLISHED_FIT_PER_MBIT = (0.061, 0.066, 0.044)

#: Nanoseconds per 10^9 hours (the FIT time base).
_NS_PER_GIGAHOUR = 1e9 * 3600.0 * 1e9
#: Bits per Mbit in the FIT studies' rate normalization.
_BITS_PER_MBIT = 1e6


def fit_to_rate_per_bit_cycle(fit_per_mbit: float,
                              clock_hz: float = 1e9) -> float:
    """Convert a FIT/Mbit soft-error rate to faults per bit per CPU cycle.

    With the paper's simplistic 1 GHz CPU, one cycle is one nanosecond,
    so the default ``clock_hz`` reproduces the paper's
    ``g ≈ 1.6e-29 / (ns · bit)``.
    """
    if fit_per_mbit < 0:
        raise ValueError("FIT rate must be non-negative")
    if clock_hz <= 0:
        raise ValueError("clock rate must be positive")
    per_ns_per_bit = fit_per_mbit / (_NS_PER_GIGAHOUR * _BITS_PER_MBIT)
    ns_per_cycle = 1e9 / clock_hz
    return per_ns_per_bit * ns_per_cycle


def mean_published_rate(clock_hz: float = 1e9) -> float:
    """The paper's ``g``: mean of the three published FIT rates."""
    mean_fit = sum(PUBLISHED_FIT_PER_MBIT) / len(PUBLISHED_FIT_PER_MBIT)
    return fit_to_rate_per_bit_cycle(mean_fit, clock_hz)


#: The paper's headline value g ≈ 1.6e-29 faults per bit per nanosecond.
PAPER_RATE_PER_BIT_CYCLE = mean_published_rate()


@dataclass(frozen=True)
class PoissonFaultModel:
    """Poisson model of independent fault arrivals in one benchmark run.

    ``rate``
        Soft-error rate ``g`` in faults per bit per cycle.
    ``fault_space_size``
        ``w = Δt · Δm`` in cycle·bits.
    """

    rate: float
    fault_space_size: int

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.fault_space_size <= 0:
            raise ValueError("fault_space_size must be positive")

    @property
    def lam(self) -> float:
        """The Poisson parameter λ = g · w."""
        return self.rate * self.fault_space_size

    def p_faults(self, k: int) -> float:
        """P(exactly k independent faults hit the run) — Equation 1."""
        if k < 0:
            raise ValueError("k must be non-negative")
        lam = self.lam
        if lam == 0.0:
            return 1.0 if k == 0 else 0.0
        # Work in log space: λ^k/k! underflows for tiny λ and large k.
        log_p = k * math.log(lam) - math.lgamma(k + 1) - lam
        return math.exp(log_p)

    def p_at_least(self, k: int) -> float:
        """P(k or more faults)."""
        if k <= 0:
            return 1.0
        return max(0.0, 1.0 - math.fsum(self.p_faults(i) for i in range(k)))

    def single_fault_dominance(self) -> float:
        """Ratio P(1 fault) / P(2 faults) = 2/λ.

        The justification for single-fault injection (Section III-A): for
        realistic rates this is astronomically large; the paper's
        footnote checks it stays > 1e4 even at a hypothetical g = 1e-20.
        """
        lam = self.lam
        if lam == 0.0:
            return math.inf
        return 2.0 / lam

    def table_rows(self, max_k: int = 5) -> list[tuple[int, float]]:
        """(k, P(k faults)) rows — the reproduction of Table I."""
        return [(k, self.p_faults(k)) for k in range(max_k + 1)]

    # -- Section V-A: from failure counts to failure probability -----------

    def failure_probability(self, weighted_failures: int) -> float:
        """P(Failure) ≈ (F/w) · P(1 fault) = F · g · e^{-gw} — Equation 5.

        ``weighted_failures`` is the absolute failure count F from a full
        fault-space scan (or extrapolated from samples).
        """
        if weighted_failures < 0:
            raise ValueError("failure count must be non-negative")
        if weighted_failures > self.fault_space_size:
            raise ValueError("failure count cannot exceed fault-space size")
        return weighted_failures * self.rate * math.exp(-self.lam)

    def proportionality_error(self) -> float:
        """The relative error of assuming e^{-gw} ≈ 1 (Equation 6).

        For realistic parameters this is far below 1e-12, which is what
        licenses ``P(Failure) ∝ F``.
        """
        return 1.0 - math.exp(-self.lam)


def paper_table1_model(delta_t_cycles: int = 10 ** 9,
                       delta_m_bits: int = 2 ** 20) -> PoissonFaultModel:
    """The exact parametrization of Table I.

    Δt = 1 s at 1 GHz (1e9 cycles) and Δm = 2^20 bits, with ``g`` the
    mean of the three published FIT rates.
    """
    return PoissonFaultModel(rate=PAPER_RATE_PER_BIT_CYCLE,
                             fault_space_size=delta_t_cycles * delta_m_bits)
