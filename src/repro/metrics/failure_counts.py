"""Extrapolated absolute failure counts — the paper's proposed metric.

Section V derives that the ground-truth failure probability of a
benchmark run is directly proportional to the absolute number of failed
experiments in a *complete fault-space scan*::

    P(Failure) ≈ F · g · e^{-gw}  ∝  F          (Equations 5–6)

so ``F`` (weighted, i.e. expanded to the raw fault space) is the valid
comparison metric.  For sampled campaigns, raw counts must first be
extrapolated to the population size (Pitfall 3, Corollary 2)::

    F_extrapolated = population · F_sampled / N_sampled

"No Effect" results are irrelevant and excluded (Corollary 1).

Every function here is generic over fault domains: memory and register
campaign results (full scans and sampled) flow through the same code,
with the population taken from the result's own domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..campaign.database import CampaignSummary
from ..campaign.outcomes import Outcome
from ..campaign.runner import CampaignResult, SamplingResult


@dataclass(frozen=True)
class FailureCount:
    """An absolute failure count, with its per-failure-mode breakdown.

    ``total`` is in fault-space coordinates (cycle·bits): for a full
    scan it is exact; for a sampled campaign it is the extrapolated
    estimate and may be fractional.
    """

    total: float
    by_mode: dict[Outcome, float]
    population: int
    exact: bool

    def mode(self, outcome: Outcome) -> float:
        if outcome.is_benign:
            raise ValueError(
                f"{outcome} is benign; benign counts are excluded from "
                "the comparison metric (Pitfall 3, Corollary 1)")
        return self.by_mode.get(outcome, 0.0)


def weighted_failure_count(result) -> FailureCount:
    """Exact absolute failure count F from a full fault-space scan.

    Uses weighted counts (Pitfall 1 avoided); benign outcomes excluded
    (Pitfall 3, Corollary 1).
    """
    summary = (result if isinstance(result, CampaignSummary)
               else CampaignSummary.from_result(result))
    by_mode = {outcome: float(count)
               for outcome, count in summary.weighted().items()
               if outcome.is_failure}
    return FailureCount(total=sum(by_mode.values()), by_mode=by_mode,
                        population=summary.fault_space_size, exact=True)


def unweighted_failure_count(result) -> FailureCount:
    """The Pitfall 1 anti-pattern: raw per-experiment failure counts.

    Exposed only to reproduce Figure 2(d) and to quantify how wrong the
    unweighted numbers are; never use this for comparison.
    """
    summary = (result if isinstance(result, CampaignSummary)
               else CampaignSummary.from_result(result))
    by_mode = {outcome: float(count)
               for outcome, count in summary.raw().items()
               if outcome.is_failure}
    return FailureCount(total=sum(by_mode.values()), by_mode=by_mode,
                        population=summary.experiments, exact=False)


def extrapolated_failure_count(result: SamplingResult) -> FailureCount:
    """F extrapolated from a sampled campaign (Pitfall 3, Corollary 2).

    ``F_extrapolated = population · F_sampled / N_sampled`` where the
    population is ``w`` for raw-uniform sampling or ``w′`` for live-only
    sampling; each failure mode is extrapolated separately
    (Section VI-B).
    """
    n = result.n_samples
    if n == 0:
        raise ValueError("cannot extrapolate from zero samples")
    scale = result.population / n
    by_mode: dict[Outcome, float] = {}
    for _, outcome in result.samples:
        if outcome.is_failure:
            by_mode[outcome] = by_mode.get(outcome, 0.0) + scale
    return FailureCount(total=sum(by_mode.values()), by_mode=by_mode,
                        population=result.population, exact=False)


def raw_sample_failure_count(result: SamplingResult) -> FailureCount:
    """The Pitfall 3 Corollary 2 anti-pattern: un-extrapolated counts.

    Raw sampled failure counts depend on the arbitrary choice of
    N_sampled and are meaningless across campaigns; exposed only for
    demonstrations.
    """
    by_mode: dict[Outcome, float] = {}
    for _, outcome in result.samples:
        if outcome.is_failure:
            by_mode[outcome] = by_mode.get(outcome, 0.0) + 1.0
    return FailureCount(total=sum(by_mode.values()), by_mode=by_mode,
                        population=result.population, exact=False)


def failure_count(result) -> FailureCount:
    """Dispatch to the correct (pitfall-free) counter for a result type."""
    if isinstance(result, SamplingResult):
        return extrapolated_failure_count(result)
    if isinstance(result, (CampaignResult, CampaignSummary)):
        return weighted_failure_count(result)
    raise TypeError(f"unsupported result type {type(result).__name__}")
