"""Metrics: the paper's sound comparison metric and the unsound ones.

The intended public workflow::

    from repro.campaign import record_golden, run_full_scan
    from repro.metrics import compare

    base = run_full_scan(record_golden(baseline_program))
    hard = run_full_scan(record_golden(hardened_program))
    print(compare(base, hard).describe())   # r = F_hardened / F_baseline
"""

from .comparison import (
    COMPARISON_COLUMNS,
    Comparison,
    ComparisonReport,
    compare,
    comparison_report,
    comparison_table,
    export_comparison_csv,
)
from .confidence import (
    Interval,
    clopper_pearson_interval,
    extrapolated_failure_interval,
    failure_proportion_interval,
    required_samples,
    wald_interval,
    wilson_interval,
)
from .coverage import (
    activated_only_coverage,
    coverage_from_counts,
    sampled_coverage,
    unweighted_coverage,
    weighted_coverage,
)
from .failure_counts import (
    FailureCount,
    extrapolated_failure_count,
    failure_count,
    raw_sample_failure_count,
    unweighted_failure_count,
    weighted_failure_count,
)
from .mwtf import mwtf, mwtf_ratio
from .poisson import (
    PAPER_RATE_PER_BIT_CYCLE,
    PUBLISHED_FIT_PER_MBIT,
    PoissonFaultModel,
    fit_to_rate_per_bit_cycle,
    mean_published_rate,
    paper_table1_model,
)

__all__ = [
    "COMPARISON_COLUMNS",
    "Comparison",
    "ComparisonReport",
    "FailureCount",
    "Interval",
    "PAPER_RATE_PER_BIT_CYCLE",
    "PUBLISHED_FIT_PER_MBIT",
    "PoissonFaultModel",
    "activated_only_coverage",
    "clopper_pearson_interval",
    "compare",
    "comparison_report",
    "comparison_table",
    "export_comparison_csv",
    "coverage_from_counts",
    "extrapolated_failure_count",
    "extrapolated_failure_interval",
    "failure_count",
    "failure_proportion_interval",
    "fit_to_rate_per_bit_cycle",
    "mean_published_rate",
    "mwtf",
    "mwtf_ratio",
    "paper_table1_model",
    "raw_sample_failure_count",
    "required_samples",
    "sampled_coverage",
    "unweighted_coverage",
    "unweighted_failure_count",
    "wald_interval",
    "weighted_coverage",
    "weighted_failure_count",
    "wilson_interval",
]
