"""Benchmark comparison — the paper's objective metric (Section V).

The comparison ratio between a hardened and a baseline variant is::

    r = P(Failure)_hardened / P(Failure)_baseline
      = F_hardened / F_baseline                      (full scans)
      = (w_h · F_h,sampled / N_h,sampled) /
        (w_b · F_b,sampled / N_b,sampled)            (sampling)

The hardened variant improves over the baseline iff ``r < 1``.

:func:`compare` computes the pitfall-free ratio from any mix of
full-scan and sampling results.  :class:`ComparisonReport` additionally
carries the misleading numbers (coverage deltas, unweighted counts) so
reproduction figures and cautionary reports can show them side by side.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path

from ..campaign.database import CampaignSummary
from ..campaign.runner import CampaignResult
from .coverage import (
    unweighted_coverage,
    weighted_coverage,
)
from .failure_counts import (
    FailureCount,
    failure_count,
    unweighted_failure_count,
)


@dataclass(frozen=True)
class Comparison:
    """The pitfall-free comparison of one hardened/baseline pair."""

    baseline: FailureCount
    hardened: FailureCount

    @property
    def ratio(self) -> float:
        """r = F_hardened / F_baseline; improvement iff r < 1."""
        if self.baseline.total == 0:
            return math.inf if self.hardened.total > 0 else 1.0
        return self.hardened.total / self.baseline.total

    @property
    def improves(self) -> bool:
        return self.ratio < 1.0

    @property
    def worsens(self) -> bool:
        return self.ratio > 1.0

    def describe(self) -> str:
        verdict = ("improves" if self.improves
                   else "worsens" if self.worsens else "is unchanged")
        return (f"hardened variant {verdict}: r = {self.ratio:.3g} "
                f"(F_baseline = {self.baseline.total:.4g}, "
                f"F_hardened = {self.hardened.total:.4g})")


def compare(baseline, hardened) -> Comparison:
    """Pitfall-free comparison from full-scan or sampling results.

    Accepts any mix of :class:`CampaignResult`, :class:`CampaignSummary`
    and :class:`SamplingResult`; sampled counts are extrapolated to
    their population automatically.
    """
    return Comparison(baseline=failure_count(baseline),
                      hardened=failure_count(hardened))


@dataclass(frozen=True)
class ComparisonReport:
    """Side-by-side view of sound and unsound comparison verdicts.

    Built from full-scan results only (the misleading metrics need the
    complete data).  Used to reproduce the Figure 2 narrative: which
    metric would have led to which design decision.
    """

    name: str
    baseline: CampaignSummary
    hardened: CampaignSummary

    # -- the sound metric ----------------------------------------------------

    @property
    def comparison(self) -> Comparison:
        return compare(self.baseline, self.hardened)

    @property
    def ratio(self) -> float:
        return self.comparison.ratio

    # -- the misleading metrics, for contrast --------------------------------

    @property
    def coverage_delta_weighted(self) -> float:
        """Weighted coverage gain (percentage points) — Pitfall 3 metric."""
        return 100.0 * (weighted_coverage(self.hardened)
                        - weighted_coverage(self.baseline))

    @property
    def coverage_delta_unweighted(self) -> float:
        """Unweighted coverage gain — Pitfalls 1 *and* 3 combined."""
        return 100.0 * (unweighted_coverage(self.hardened)
                        - unweighted_coverage(self.baseline))

    @property
    def unweighted_ratio(self) -> float:
        """Failure-count ratio without weighting — Pitfall 1 numbers."""
        base = unweighted_failure_count(self.baseline).total
        hard = unweighted_failure_count(self.hardened).total
        if base == 0:
            return math.inf if hard > 0 else 1.0
        return hard / base

    def verdicts(self) -> dict[str, bool]:
        """Would each metric call the hardened variant an improvement?"""
        return {
            "failure-count (sound)": self.ratio < 1.0,
            "failure-count unweighted (pitfall 1)": self.unweighted_ratio < 1.0,
            "coverage weighted (pitfall 3)": self.coverage_delta_weighted > 0,
            "coverage unweighted (pitfalls 1+3)":
                self.coverage_delta_unweighted > 0,
        }

    def misleading_metrics(self) -> list[str]:
        """Metric names whose verdict contradicts the sound one."""
        verdicts = self.verdicts()
        sound = verdicts.pop("failure-count (sound)")
        return [name for name, verdict in verdicts.items()
                if verdict != sound]

    def describe(self) -> str:
        lines = [f"benchmark {self.name}: {self.comparison.describe()}"]
        for metric, verdict in self.verdicts().items():
            word = "improvement" if verdict else "degradation"
            lines.append(f"  {metric}: {word}")
        wrong = self.misleading_metrics()
        if wrong:
            lines.append(f"  -> misleading metrics here: {', '.join(wrong)}")
        return "\n".join(lines)


def comparison_report(name: str, baseline, hardened) -> ComparisonReport:
    """Build a :class:`ComparisonReport` from full-scan results."""
    def as_summary(result):
        if isinstance(result, CampaignSummary):
            return result
        if isinstance(result, CampaignResult):
            return CampaignSummary.from_result(result)
        raise TypeError(
            "ComparisonReport needs full-scan results (sampling results "
            "cannot produce the unweighted pitfall numbers)")
    return ComparisonReport(name=name, baseline=as_summary(baseline),
                            hardened=as_summary(hardened))


def _table_rows(reports: list[ComparisonReport]) -> list[list[str]]:
    """The comparison table as strings — shared by text and CSV form.

    One row per variant, baseline first; every number is formatted here
    so the printed table and the exported CSV can never disagree.
    """
    if not reports:
        raise ValueError("no comparison reports")
    base = reports[0].baseline
    for report in reports:
        if report.baseline != base:
            raise ValueError(
                f"comparison reports mix baselines: "
                f"{report.baseline.program_name!r} vs "
                f"{base.program_name!r}")
    rows = [[base.program_name, base.domain,
             f"{failure_count(base).total:.10g}", "1", "1", "0", "0",
             "baseline"]]
    for report in reports:
        comp = report.comparison
        verdict = ("improves" if comp.improves
                   else "worsens" if comp.worsens else "unchanged")
        rows.append([
            report.hardened.program_name, report.hardened.domain,
            f"{comp.hardened.total:.10g}",
            f"{comp.ratio:.10g}",
            f"{report.unweighted_ratio:.10g}",
            f"{report.coverage_delta_weighted:.10g}",
            f"{report.coverage_delta_unweighted:.10g}",
            verdict,
        ])
    return rows


#: Column names of :func:`_table_rows` / :func:`export_comparison_csv`.
COMPARISON_COLUMNS = (
    "variant", "domain", "failures", "ratio", "unweighted_ratio",
    "coverage_delta_weighted_pp", "coverage_delta_unweighted_pp",
    "verdict")


def comparison_table(reports: list[ComparisonReport]) -> str:
    """Render baseline + N hardened variants as one text table.

    All reports must share a baseline.  Columns are the sound metric
    (F and the ratio r) next to the pitfall metrics, so a glance shows
    where the unsound numbers would have flipped the verdict; variants
    with misleading metrics are flagged on their row.
    """
    rows = _table_rows(reports)
    misleading = [""] + [", ".join(r.misleading_metrics())
                         for r in reports]
    header = list(COMPARISON_COLUMNS)
    widths = [max(len(header[i]), *(len(row[i]) for row in rows))
              for i in range(len(header))]
    def fmt(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    lines = [fmt(header)]
    for row, wrong in zip(rows, misleading):
        line = fmt(row)
        if wrong:
            line += f"  [misleading here: {wrong}]"
        lines.append(line)
    return "\n".join(lines)


def export_comparison_csv(reports: list[ComparisonReport],
                          path: str | Path) -> None:
    """Write the comparison table to CSV, one row per variant.

    The cells come from the same formatter as :func:`comparison_table`,
    so a warm (section-composed) sweep that reproduces a cold sweep's
    counts produces a byte-identical file — the property the
    incremental-sweep benchmark asserts.
    """
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(COMPARISON_COLUMNS)
        writer.writerows(_table_rows(reports))
