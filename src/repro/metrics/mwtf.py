"""Mean Work To Failure (Reis et al.) — a related-work metric.

Section VII discusses MWTF as a metric that *does* capture the
performance/reliability tradeoff: doubling a program's runtime without
reducing per-time vulnerability halves its MWTF.  We implement it on top
of our failure-probability machinery so the discussion section's
comparison can be demonstrated quantitatively::

    MWTF = work units / expected failures
         = 1 / (g · F)      for one benchmark run as the work unit,

using P(Failure) ≈ g · F from Section V-A.  Under this formulation the
MWTF *ranking* of two variants always agrees with the paper's
failure-count ratio r, because the work unit (one run) is the same for
baseline and hardened variants.
"""

from __future__ import annotations

import math

from .failure_counts import FailureCount, failure_count
from .poisson import PAPER_RATE_PER_BIT_CYCLE


def mwtf(result, *, rate: float = PAPER_RATE_PER_BIT_CYCLE,
         work_units: float = 1.0) -> float:
    """Mean Work To Failure of one benchmark variant.

    ``result`` is a full-scan or sampling campaign result; ``work_units``
    is the amount of application-defined work one run accomplishes.
    Returns ``inf`` for variants with zero observed failures.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if work_units <= 0:
        raise ValueError("work_units must be positive")
    count: FailureCount = failure_count(result)
    if count.total == 0:
        return math.inf
    expected_failures_per_run = rate * count.total
    return work_units / expected_failures_per_run


def mwtf_ratio(baseline, hardened, *,
               rate: float = PAPER_RATE_PER_BIT_CYCLE,
               work_units: float = 1.0) -> float:
    """MWTF_hardened / MWTF_baseline — improvement iff > 1.

    With equal work units this is exactly ``1 / r`` for the paper's
    comparison ratio r, demonstrating the consistency noted in
    Section VII.
    """
    base = mwtf(baseline, rate=rate, work_units=work_units)
    hard = mwtf(hardened, rate=rate, work_units=work_units)
    if math.isinf(base):
        return 0.0 if not math.isinf(hard) else 1.0
    if math.isinf(hard):
        return math.inf
    return hard / base
