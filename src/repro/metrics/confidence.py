"""Confidence intervals for sampled campaigns.

The paper defers sampling statistics to the literature but requires "a
sufficiently large number of samples ... for statistically authoritative
results" (Section III-B).  This module provides the standard estimators
used with FI sampling: Wald, Wilson and Clopper–Pearson intervals for
the failure proportion, plus their extrapolation to absolute failure
counts, and a sample-size planner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

from ..campaign.runner import SamplingResult


@dataclass(frozen=True)
class Interval:
    """A two-sided confidence interval ``[low, high]`` at ``confidence``."""

    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not 0 < self.confidence < 1:
            raise ValueError("confidence must be in (0, 1)")
        if self.low > self.high:
            raise ValueError("interval bounds out of order")

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def scaled(self, factor: float) -> "Interval":
        """Scale both bounds (e.g. proportion → absolute count)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Interval(low=self.low * factor, high=self.high * factor,
                        confidence=self.confidence)


def _check(failures: int, samples: int) -> None:
    if samples <= 0:
        raise ValueError("samples must be positive")
    if not 0 <= failures <= samples:
        raise ValueError("failures must be within [0, samples]")


def wald_interval(failures: int, samples: int,
                  confidence: float = 0.95) -> Interval:
    """The textbook normal-approximation interval.

    Known to behave badly for proportions near 0 or 1 — exactly the
    regime of FI failure probabilities — so prefer Wilson or
    Clopper–Pearson; kept for comparison.
    """
    _check(failures, samples)
    p = failures / samples
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    half = z * math.sqrt(p * (1.0 - p) / samples)
    return Interval(low=max(0.0, p - half), high=min(1.0, p + half),
                    confidence=confidence)


def wilson_interval(failures: int, samples: int,
                    confidence: float = 0.95) -> Interval:
    """Wilson score interval — good coverage even for rare failures."""
    _check(failures, samples)
    p = failures / samples
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    z2 = z * z
    denom = 1.0 + z2 / samples
    center = (p + z2 / (2.0 * samples)) / denom
    half = (z / denom) * math.sqrt(
        p * (1.0 - p) / samples + z2 / (4.0 * samples * samples))
    return Interval(low=max(0.0, center - half),
                    high=min(1.0, center + half), confidence=confidence)


def clopper_pearson_interval(failures: int, samples: int,
                             confidence: float = 0.95) -> Interval:
    """Exact (conservative) binomial interval via beta quantiles."""
    _check(failures, samples)
    alpha = 1.0 - confidence
    low = (0.0 if failures == 0
           else stats.beta.ppf(alpha / 2.0, failures,
                               samples - failures + 1))
    high = (1.0 if failures == samples
            else stats.beta.ppf(1.0 - alpha / 2.0, failures + 1,
                                samples - failures))
    return Interval(low=float(low), high=float(high), confidence=confidence)


def failure_proportion_interval(result: SamplingResult,
                                confidence: float = 0.95,
                                method: str = "wilson") -> Interval:
    """Interval for P(Failure | 1 fault in the sampled population)."""
    methods = {
        "wald": wald_interval,
        "wilson": wilson_interval,
        "clopper-pearson": clopper_pearson_interval,
    }
    if method not in methods:
        raise ValueError(f"unknown method {method!r}; pick from "
                         f"{sorted(methods)}")
    return methods[method](result.failure_count(), result.n_samples,
                           confidence)


def extrapolated_failure_interval(result: SamplingResult,
                                  confidence: float = 0.95,
                                  method: str = "wilson") -> Interval:
    """Interval for the extrapolated absolute failure count F.

    Scales the proportion interval by the sampled population size —
    the uncertainty companion to Pitfall 3, Corollary 2.
    """
    return failure_proportion_interval(result, confidence, method) \
        .scaled(result.population)


def required_samples(expected_proportion: float, *, half_width: float,
                     confidence: float = 0.95) -> int:
    """Samples needed for a Wald half-width at an expected proportion.

    A planning helper: how many samples until the failure-proportion
    estimate is within ``±half_width`` at the given confidence.
    """
    if not 0.0 <= expected_proportion <= 1.0:
        raise ValueError("expected_proportion must be in [0, 1]")
    if half_width <= 0:
        raise ValueError("half_width must be positive")
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    p = expected_proportion
    n = (z * z * p * (1.0 - p)) / (half_width * half_width)
    return max(1, math.ceil(n))
