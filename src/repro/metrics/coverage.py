"""The fault-coverage metric — implemented faithfully, flagged as unsound.

Fault coverage (Bouricius et al., Equation 2 of the paper) is::

    c = 1 - P(Failure | 1 Fault) = 1 - F / N

The paper's central result (Section IV/V) is that this metric is *unfit
for comparing different programs*: ``N`` depends on each variant's own
runtime and memory usage, so overheads dilute the denominator.  The
library still implements it — reproducing the paper requires computing
the misleading numbers — but the docstrings and the comparison API make
the unsoundness explicit.

Three variants are provided, matching the practices found in the wild:

* :func:`weighted_coverage` — the correct *instantiation* of the metric
  under def/use pruning (Pitfall 1 avoided): F and N are expanded to the
  raw fault space, N = w.
* :func:`unweighted_coverage` — the Pitfall 1 anti-pattern: conducted
  experiments are counted without class weights.
* :func:`activated_only_coverage` — the Barbosa-style restriction that
  excludes never-activated faults from N (discussed and rejected in
  Section IV-B: DFT′ shows it is no safeguard).
"""

from __future__ import annotations

from ..campaign.database import CampaignSummary
from ..campaign.runner import CampaignResult, SamplingResult


def _failures(counts) -> int:
    return sum(n for outcome, n in counts.items() if outcome.is_failure)


def _as_summary(result) -> CampaignSummary:
    if isinstance(result, CampaignSummary):
        return result
    if isinstance(result, CampaignResult):
        return CampaignSummary.from_result(result)
    raise TypeError(f"expected campaign result or summary, got {result!r}")


def coverage_from_counts(failures: int, population: int) -> float:
    """c = 1 - F/N for explicit counts."""
    if population <= 0:
        raise ValueError("population must be positive")
    if not 0 <= failures <= population:
        raise ValueError("failures must be within [0, population]")
    return 1.0 - failures / population


def weighted_coverage(result) -> float:
    """Fault coverage with def/use weighting (Pitfall 1 avoided).

    F is the weighted failure count; N is the full fault-space size w.
    Correct as a *single-program* figure under the uniform fault model —
    but still not comparable across programs (Pitfall 3).  Accepts
    results and summaries from any fault domain (memory, register);
    w is the domain's own fault-space size.
    """
    summary = _as_summary(result)
    return coverage_from_counts(_failures(summary.weighted()),
                                summary.fault_space_size)


def unweighted_coverage(result) -> float:
    """Fault coverage computed the Pitfall 1 way (for demonstration).

    Counts conducted experiments only: F and N ignore the def/use class
    sizes, silently re-weighting the fault model toward short-lived data.
    """
    summary = _as_summary(result)
    return coverage_from_counts(_failures(summary.raw()),
                                summary.experiments)


def activated_only_coverage(result) -> float:
    """Coverage over activated faults only (Section IV-B restriction).

    N excludes all a-priori-known "No Effect" coordinates (dead def/use
    classes), i.e. N = w′.  The paper shows this restriction does not
    rescue the metric: DFT′ re-inflates coverage with dummy loads.
    """
    summary = _as_summary(result)
    population = summary.fault_space_size - summary.known_no_effect_weight
    return coverage_from_counts(_failures(summary.weighted()), population)


def sampled_coverage(result: SamplingResult) -> float:
    """Coverage estimated from a sampled campaign: 1 - F_sampled/N_sampled.

    Statistically sound as an estimator of the same (per-program)
    quantity when the sampler is raw-uniform; a biased sampler (Pitfall
    2) or cross-program comparison (Pitfall 3) makes it misleading.
    """
    if result.n_samples == 0:
        raise ValueError("no samples")
    return 1.0 - result.failure_count() / result.n_samples
