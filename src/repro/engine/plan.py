"""Auto-tier planner: pick an execution engine from campaign geometry.

The three engine tiers trade fixed cost against per-lane amortization:

* ``interp`` has no build cost but the slowest cycle loop — it wins only
  when the whole campaign is smaller than the template JIT's one-time
  codegen cost.
* ``compiled`` pays milliseconds of codegen once per machine and then
  retires cycles an order of magnitude faster — the right default for
  almost every scalar campaign.
* ``batch`` retires one *shared* cycle across a whole pack of lanes per
  dispatch.  Even with fused basic-block kernels the dispatch constant
  is large (microseconds per shared cycle vs tens of nanoseconds per
  compiled scalar cycle), so batch only wins when packs stay wide —
  on the reference host the fused tier crosses the compiled tier at
  roughly :data:`PACK_BREAKEVEN_WIDTH` live lanes.

Which tier wins is therefore decided by the *pack-width distribution*,
and that is known before the campaign starts: the def/use partition
says how many experiments share each injection slot, and the batch
executor packs exactly those (same-slot groups chunked up to
``MAX_LANES``, thin adjacent-slot groups merged up to ``PACK_TARGET``).
:func:`plan_tiers` reads that geometry and returns a :class:`TierPlan`;
the ``auto`` engine (the default) applies it, so users never pay the
batch dispatch tax on branchy narrow workloads and never pay the JIT
tax on trivial ones.

Engine choice is outcome-invariant — the equivalence suites prove
bit-identical campaign results across all tiers — so the planner only
affects wall-clock, never results, and its decision is deterministic
for a given golden run and domain (parallel and dist workers re-plan
independently and agree).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Pack width where fused lockstep lane-throughput crosses the compiled
#: scalar tier, measured on the reference host with the tier's best-case
#: scalar workload (``bench_machine.py``: compiled ~29M cycles/s, fused
#: batch ~4 µs per shared cycle → ~120 lanes).  Deliberately taken from
#: compiled's *best* case: on branchier code the real crossover is
#: lower, so planning against this constant errs toward ``compiled``
#: and keeps ``--engine auto`` no slower than the old default.
PACK_BREAKEVEN_WIDTH = 128

#: Fraction of estimated post-injection work that must fall in
#: breakeven-width slots before the whole campaign tips to ``batch``.
BATCH_WORK_FRACTION = 0.5

#: Estimated total campaign cycles below which the template JIT's
#: one-time codegen cost dominates and the plain interpreter wins.
INTERP_WORK_CUTOFF = 25_000


@dataclass(frozen=True)
class SlotRange:
    """A contiguous run of injection slots planned for one tier."""

    #: First and last injection slot of the range (inclusive, 1-based).
    start: int
    stop: int
    #: Engine tier the range is planned for (``compiled`` or ``batch``).
    tier: str
    #: Widest same-slot experiment group inside the range.
    peak_width: int


@dataclass(frozen=True)
class TierPlan:
    """The planner's decision plus the geometry it was derived from."""

    #: Registry name of the engine the campaign should run under.
    engine: str
    #: Fraction of estimated post-injection work in breakeven-width
    #: slots (0.0 when the domain cannot batch at all).
    batched_fraction: float
    #: Widest same-slot experiment group in the campaign.
    peak_width: int
    #: Total experiments the def/use partition calls for.
    total_experiments: int
    #: Per-slot-range tier assignments (observability; the batch
    #: executor re-derives the same boundaries dynamically from its
    #: own ``MIN_LANES`` pack-width probe).
    ranges: tuple[SlotRange, ...]
    #: One-line human-readable justification for ``repro scan -v``.
    reason: str


def _slot_widths(golden, domain, partition) -> dict[int, int]:
    """Experiments per injection slot under the def/use partition."""
    widths: dict[int, int] = {}
    for interval in partition.live_classes():
        slot = interval.injection_slot
        widths[slot] = widths.get(slot, 0) + domain.experiment_count(interval)
    return widths


def _ranges(widths: dict[int, int], breakeven: int) -> tuple[SlotRange, ...]:
    """Collapse live slots into contiguous same-tier ranges."""
    ranges: list[SlotRange] = []
    for slot in sorted(widths):
        tier = "batch" if widths[slot] >= breakeven else "compiled"
        last = ranges[-1] if ranges else None
        if (last is not None and last.tier == tier
                and slot == last.stop + 1):
            ranges[-1] = SlotRange(last.start, slot, tier,
                                   max(last.peak_width, widths[slot]))
        else:
            ranges.append(SlotRange(slot, slot, tier, widths[slot]))
    return tuple(ranges)


def plan_tiers(golden, domain, *, partition=None,
               breakeven: int = PACK_BREAKEVEN_WIDTH) -> TierPlan:
    """Plan the execution tier for a campaign over ``golden``.

    ``domain`` is a :class:`~repro.faultspace.domain.FaultDomain` or
    registry name; ``partition`` reuses a caller-built def/use partition
    (the planner builds one otherwise — cached per domain on the golden
    run, so resolving ``auto`` per executor costs one partition build
    per campaign, not one per shard).  The decision is conservative by
    construction: ``batch`` is chosen only when the slot-width geometry
    says packs stay wide enough to clear the measured dispatch
    constant, so ``auto`` never regresses below ``compiled``.
    """
    from ..faultspace import get_domain

    domain = get_domain(domain)
    if not domain.batchable:
        return TierPlan("compiled", 0.0, 0, 0, (),
                        f"domain '{domain.name}' runs scalar "
                        "(control-flow injection cannot share lockstep "
                        "packs)")
    if partition is None:
        # GoldenRun is a frozen dataclass; caches go through __dict__
        # (same pattern as its replayed-pc cache).
        cache = golden.__dict__.setdefault("_planner_partitions", {})
        partition = cache.get(domain.name)
        if partition is None:
            partition = domain.build_partition(golden)
            cache[domain.name] = partition
    widths = _slot_widths(golden, domain, partition)
    total = sum(widths.values())
    if not total:
        return TierPlan("compiled", 0.0, 0, 0, (),
                        "no live classes: nothing to batch")
    # Work model: each experiment may run its whole post-injection tail
    # (convergence usually exits earlier, but proportionally so per
    # tier, which is what the comparison needs).
    work = {slot: w * (golden.cycles - slot + 1)
            for slot, w in widths.items()}
    total_work = sum(work.values())
    peak = max(widths.values())
    if total_work + golden.cycles < INTERP_WORK_CUTOFF:
        return TierPlan("interp", 0.0, peak, total,
                        _ranges(widths, breakeven),
                        f"tiny campaign (~{total_work} post-injection "
                        "cycles): JIT codegen would dominate, "
                        "interpreting is faster")
    batched_work = sum(work[slot] for slot, w in widths.items()
                       if w >= breakeven)
    fraction = batched_work / total_work
    if fraction >= BATCH_WORK_FRACTION:
        from .fused import compile_fused

        if compile_fused(golden.program) is None:
            return TierPlan("compiled", fraction, peak, total,
                            _ranges(widths, breakeven),
                            "wide packs but fused kernels unavailable "
                            "on this host: batch would not clear its "
                            "dispatch constant")
        return TierPlan("batch", fraction, peak, total,
                        _ranges(widths, breakeven),
                        f"{fraction:.0%} of post-injection work sits in "
                        f"slots with >= {breakeven} experiments "
                        f"(peak {peak}): lockstep packs stay wide")
    return TierPlan("compiled", fraction, peak, total,
                    _ranges(widths, breakeven),
                    f"only {fraction:.0%} of post-injection work reaches "
                    f"{breakeven}-wide packs (peak width {peak}): "
                    "scalar JIT wins")
