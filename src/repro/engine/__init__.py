"""Execution engines: interchangeable cores that run the machine model.

The campaign layer executes hundreds of millions of instructions per
full scan, so *how* a :class:`~repro.isa.cpu.Machine` steps through ROM
dominates campaign wall-clock.  This package provides three engines
behind one interface, selected by name through
:class:`~repro.campaign.experiment.ExecutorConfig` (``engine=``) and the
CLI (``--engine``):

``interp``
    The reference interpreter — :class:`~repro.isa.cpu.Machine` itself,
    one dispatch-table call per instruction.  Deliberately simple; it is
    the differential-testing oracle the other engines are validated
    against.

``compiled``
    The template JIT (:mod:`repro.engine.compiled`): at machine
    construction the ROM is decomposed into basic blocks and stitched
    into one generated-Python function (operands constant-folded into
    the source, registers held in locals, word/halfword RAM access
    through ``memoryview`` casts, self-loops turned into native
    ``while`` loops).  Cycle accounting, trap semantics, serial/detect
    side effects and state digests are bit-identical to the
    interpreter, so checkpoint ladders, convergence rejoin and
    criticality slicing keep working unchanged.

``batch``
    Lockstep vectorized replay (:mod:`repro.engine.batch`): N faulty
    experiments that share an injection slot run as numpy ``(N, cells)``
    state arrays with one op dispatch per cycle across all live lanes.
    Lanes whose control flow diverges from the majority PC are evicted
    to a Tier-1 (compiled) scalar machine; scalar stretches and golden
    prefixes also use the compiled engine, so ``batch`` is a strict
    superset of ``compiled``.

``auto`` (the default)
    Not a fourth core but a chooser: the tier planner
    (:mod:`repro.engine.plan`) reads the campaign's def/use slot-width
    geometry and resolves to one of the three engines above — batch
    only where packs stay wide enough to beat the scalar JIT, interp
    only when the campaign is too small to amortize codegen.

Engines are stateless singletons (like fault domains); they resolve by
name so an :class:`ExecutorConfig` naming one pickles across process
boundaries and the dist-fabric wire protocol unchanged.
"""

from __future__ import annotations

from ..isa.cpu import Machine


class ExecutionEngine:
    """One way of executing programs on the machine model.

    ``name`` is the registry key (also the CLI spelling).  ``batch``
    marks engines whose campaign executor runs same-slot experiments as
    vectorized lockstep lanes; the campaign layer picks the executor
    class from this flag.  Engines must be stateless singletons.
    """

    #: Registry name, accepted by ``ExecutorConfig(engine=...)``.
    name: str = ""
    #: Whether the campaign layer should batch same-slot experiments.
    batch: bool = False

    def create_machine(self, program, *, tracer=None,
                       oracle=None) -> Machine:
        """Build a machine executing ``program`` under this engine.

        The returned object is always a :class:`~repro.isa.cpu.Machine`
        (or subclass): snapshots, digests, injection and tracing keep
        their exact interpreter semantics regardless of engine.
        """
        raise NotImplementedError

    def resolve(self, golden, domain, *, partition=None) -> "ExecutionEngine":
        """The concrete engine to run a campaign over ``golden`` with.

        Concrete engines return themselves; the ``auto`` engine
        overrides this to consult the tier planner
        (:mod:`repro.engine.plan`) once the golden run and fault domain
        are known — ``partition`` reuses a caller-built def/use
        partition so planning is free where one already exists.  Called
        by :meth:`~repro.campaign.experiment.ExecutorConfig.build`, so
        serial, parallel and dist workers all resolve identically.
        """
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExecutionEngine {self.name!r}>"


class InterpreterEngine(ExecutionEngine):
    """The reference interpreter — the differential-testing oracle."""

    name = "interp"

    def create_machine(self, program, *, tracer=None,
                       oracle=None) -> Machine:
        return Machine(program, tracer=tracer, oracle=oracle)


class CompiledEngine(ExecutionEngine):
    """Tier 1: template-JIT superblocks generated at machine build."""

    name = "compiled"

    def create_machine(self, program, *, tracer=None,
                       oracle=None) -> Machine:
        from .compiled import CompiledMachine

        return CompiledMachine(program, tracer=tracer, oracle=oracle)


class BatchEngine(CompiledEngine):
    """Tier 2: lockstep numpy lanes, evicting divergers to Tier 1.

    Scalar machines built by this engine are compiled machines — the
    batch executor uses them for golden prefixes, evicted lanes and
    groups too small to vectorize profitably.
    """

    name = "batch"
    batch = True


class AutoEngine(CompiledEngine):
    """Tier chooser: plans interp/compiled/batch from campaign geometry.

    Machines built directly under ``auto`` are compiled machines (the
    safe scalar default); campaign executors instead call
    :meth:`resolve` with the golden run and domain, which hands the
    decision to :func:`repro.engine.plan.plan_tiers` — batch only when
    the def/use slot-width distribution keeps packs above the measured
    dispatch break-even, the interpreter only when the campaign is too
    small to amortize JIT codegen, compiled otherwise.
    """

    name = "auto"

    def resolve(self, golden, domain, *, partition=None) -> ExecutionEngine:
        return ENGINES[self.plan(golden, domain,
                                 partition=partition).engine]

    def plan(self, golden, domain, *, partition=None):
        """The :class:`~repro.engine.plan.TierPlan` for a campaign."""
        from .plan import plan_tiers

        return plan_tiers(golden, domain, partition=partition)


#: The built-in engines, as shared stateless singletons.
INTERP = InterpreterEngine()
COMPILED = CompiledEngine()
BATCH = BatchEngine()
AUTO = AutoEngine()

#: Registry of available engines, keyed by name.
ENGINES: dict[str, ExecutionEngine] = {
    INTERP.name: INTERP,
    COMPILED.name: COMPILED,
    BATCH.name: BATCH,
    AUTO.name: AUTO,
}


def get_engine(engine: ExecutionEngine | str | None) -> ExecutionEngine:
    """Resolve an engine argument: an instance, a registry name, or None.

    ``None`` means the default (compiled) engine.
    """
    if engine is None:
        return COMPILED
    if isinstance(engine, ExecutionEngine):
        return engine
    try:
        return ENGINES[engine]
    except KeyError:
        available = ", ".join(sorted(ENGINES))
        raise ValueError(
            f"unknown execution engine {engine!r}; available: {available}"
        ) from None
