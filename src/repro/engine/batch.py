"""Tier-2 execution engine: lockstep vectorized replay of fault batches.

A full def/use-pruned scan runs thousands of experiments that differ in
exactly one bit of initial state: same program, same injection slot,
same pre-injection prefix — only the flipped cell varies.  Until the
corrupted values reach control flow, those runs execute the *same
instruction at the same pc on every cycle*.  This module exploits that:

* N faulty runs become **lanes** of a :class:`LockstepLanes` batch —
  RAM as an ``(N, ram_size)`` uint8 array, registers as ``(N, 16)``
  uint32 — sharing a single pc and cycle counter.
* Each cycle dispatches the one instruction at the shared pc as numpy
  array operations across all live lanes, so the per-cycle interpreter
  overhead is paid once per *batch*, not once per lane.
* Lanes stop being "live" by halting, trapping, diverging from the
  output oracle, or **evicting**: on a branch whose lanes disagree, the
  minority side (ties favour the taken side; ``jalr`` keeps the most
  common target, smallest target on ties) is handed back as a full
  :class:`~repro.isa.cpu.MachineState` for a Tier-1 scalar machine to
  finish.  Eviction is deterministic, so batch campaigns remain exactly
  reproducible.

Per-lane trap semantics mirror :class:`~repro.isa.cpu.Machine` bit for
bit: a trapping lane exits with the interpreter's trap name at the
un-incremented cycle, while the surviving lanes complete the same
instruction; serial bytes and detections are recorded at the same
cycle numbers; :func:`~repro.isa.cpu.state_digest` of a lane equals the
digest of the equivalent scalar machine, which is what lets the
campaign layer run its convergence checkpoint probes on live lanes.

The campaign-facing executor built on top of this —
``BatchExperimentExecutor`` — lives in :mod:`repro.campaign.experiment`;
this module knows nothing about fault coordinates or outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..isa.assembler import Program
from ..isa.cpu import MachineState, state_digest
from ..isa.isa import NUM_REGS, Op, WORD_MASK
from .fused import FusedProgram, pad_rows

_M = WORD_MASK

#: Lane-exit kinds, mirroring how a scalar run can end.
HALT = "halt"
TRAP = "trap"
DIVERGE = "diverge"
EVICT = "evict"

#: Access widths for the memory opcodes (local copy: hot loop).
_WIDTH = {Op.LW: 4, Op.SW: 4, Op.LH: 2, Op.LHU: 2, Op.SH: 2,
          Op.LB: 1, Op.LBU: 1, Op.SB: 1}

_BRANCHES = (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU)


@dataclass(frozen=True)
class LaneExit:
    """One lane leaving the batch, with everything needed to finish it.

    For ``halt``/``trap``/``diverge`` the run is over and the carried
    fields are the final observables a scalar machine would hold.  For
    ``evict`` the run is *not* over: ``state`` is the lane's complete
    machine state for a scalar engine to resume from.
    """

    lane: int
    kind: str
    cycle: int
    trap: str = ""
    serial: bytes = b""
    detections: tuple = ()
    state: MachineState | None = field(default=None, compare=False)

    @property
    def restorable(self) -> bool:
        """True when this exit carries a resumable machine state."""
        return self.state is not None

    def restore_into(self, machine) -> None:
        """Resume a scalar machine from this exit's carried state.

        The scalar continuation may later re-enter a pack through
        :meth:`LockstepLanes.admit` once it reaches the pack's shared
        pc at the same cycle — this is the re-admission handle.
        """
        if self.state is None:
            raise ValueError(f"{self.kind} exit is not restorable")
        machine.restore(self.state)


class _LaneView:
    """Injection adapter: one lane presented as a machine-like target.

    Fault domains inject through ``machine.flip_bit`` /
    ``machine.flip_register_bit``; this exposes those two methods (with
    the scalar machine's exact validation) against a single lane's row
    of the batch arrays, so ``FaultDomain.inject`` works unchanged for
    both the initial injection and the convergence masked probe.
    """

    __slots__ = ("_lanes", "_pos")

    def __init__(self, lanes: "LockstepLanes", pos: int):
        self._lanes = lanes
        self._pos = pos

    def flip_bit(self, addr: int, bit: int) -> None:
        lanes = self._lanes
        if not 0 <= addr < lanes.ram_size:
            raise ValueError(f"flip address {addr:#x} outside RAM")
        if not 0 <= bit < 8:
            raise ValueError(f"bit index {bit} out of range")
        lanes.ram[self._pos, addr] ^= np.uint8(1 << bit)

    def flip_register_bit(self, reg: int, bit: int) -> None:
        lanes = self._lanes
        if not 1 <= reg < NUM_REGS:
            raise ValueError(f"register r{reg} cannot hold a fault")
        if not 0 <= bit < 32:
            raise ValueError(f"bit index {bit} out of range")
        lanes.regs[self._pos, reg] ^= np.uint32(1 << bit)

    def stuck_at(self, addr: int, bit: int, value: int) -> None:
        lanes = self._lanes
        if not 0 <= addr < lanes.ram_size:
            raise ValueError(f"stuck-at address {addr:#x} outside RAM")
        if not 0 <= bit < 8:
            raise ValueError(f"bit index {bit} out of range")
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {value}")
        if lanes.stuck[self._pos] is not None:
            raise ValueError("a stuck-at fault is already armed")
        lanes.stuck[self._pos] = (addr, bit, value)
        lanes._stuck_live += 1
        if value:
            lanes.ram[self._pos, addr] |= np.uint8(1 << bit)
        else:
            lanes.ram[self._pos, addr] &= np.uint8(~(1 << bit) & 0xFF)


class LockstepLanes:
    """N same-program runs in lockstep over numpy state arrays.

    All lanes share one pc and one cycle counter; they are created from
    a single pre-injection snapshot and stay in the batch exactly as
    long as their control flow agrees.  ``lane`` indices in
    :class:`LaneExit` refer to the *original* construction order and
    stay valid across compressions.
    """

    def __init__(self, program: Program, state: MachineState, n: int, *,
                 oracle: bytes | None = None,
                 fused: FusedProgram | None = None):
        if state.halted:
            raise ValueError("cannot build lanes from a halted state")
        self.program = program
        self.rom = program.rom
        self.ram_size = program.ram_size
        self.oracle = oracle
        self._olen = len(oracle) if oracle is not None else 0
        # Lane RAM rows are padded to a word multiple so the fused
        # kernels can gather/scatter aligned words and halfwords
        # through uint32/uint16 views of the flat backing array.
        self._pad = pad_rows(self.ram_size)
        row = np.frombuffer(state.ram, dtype=np.uint8)
        self._store = np.zeros((n, self._pad), dtype=np.uint8)
        self._store[:, :self.ram_size] = row
        self.ram = self._store[:, :self.ram_size]
        regs = np.array(state.regs, dtype=np.uint32)
        self.regs = np.repeat(regs[np.newaxis, :], n, axis=0)
        self.pc = state.pc
        self.cycle = state.cycle
        self.ids = list(range(n))
        self.serial = [bytearray(state.serial) for _ in range(n)]
        self.detections = [list(state.detections) for _ in range(n)]
        #: Per-lane armed stuck-at latch ``(addr, bit, value)`` or None.
        self.stuck: list[tuple | None] = [state.stuck for _ in range(n)]
        self.exits: list[LaneExit] = []
        self._stuck_live = n if state.stuck is not None else 0
        self._next_id = n
        self._fused = fused
        self._scratch_n = -1
        self._scratch_cap = 0
        self._pools: dict | None = None
        self._rebuild_flat()

    def _rebuild_flat(self) -> None:
        """Refresh the flat views after any change to the lane count."""
        flat = self._store.reshape(-1)
        self._flat = flat
        if self._pad:
            self._flat32 = flat.view(np.uint32)
            self._flat16 = flat.view(np.uint16)
            self._flat16i = flat.view(np.int16)
            self._flat8i = flat.view(np.int8)
        self._offsets = np.arange(len(self._store),
                                  dtype=np.int64) * self._pad

    def _fused_scratch(self, n: int) -> dict:
        """Preallocated per-lane scratch for the fused kernels.

        Returns a name → array dict of length-``n`` slices; rebuilt
        (and, when lanes were admitted past capacity, reallocated) only
        when ``n`` changes, so kernels pay a single cached dict per
        call instead of per-op temporaries.
        """
        if n == self._scratch_n:
            return self._scratch
        if self._pools is None or n > self._scratch_cap:
            cap = max(n, self._scratch_cap * 2)
            stores = self._fused.max_stores if self._fused else 0
            pools = {
                "a": np.empty(cap, dtype=np.int64),
                "q": np.empty(cap, dtype=np.int64),
                "t": np.empty(cap, dtype=np.uint32),
                "bt": np.empty(cap, dtype=bool),
                "g16": np.empty(cap, dtype=np.int16),
                "h16": np.empty(cap, dtype=np.uint16),
                "g8": np.empty(cap, dtype=np.int8),
                "h8": np.empty(cap, dtype=np.uint8),
                "saved": np.empty((cap, NUM_REGS), dtype=np.uint32),
                "o8": np.arange(cap, dtype=np.int64) * self._pad,
                "o16": np.arange(cap, dtype=np.int64) * (self._pad // 2),
                "o32": np.arange(cap, dtype=np.int64) * (self._pad // 4),
            }
            for k in range(stores):
                pools[f"si{k}"] = np.empty(cap, dtype=np.int64)
                pools[f"sv{k}"] = np.empty(cap, dtype=np.uint32)
            self._pools = pools
            self._scratch_cap = cap
        sc = {name: pool[:n] for name, pool in self._pools.items()}
        sc["au"] = sc["a"].view(np.uint64)
        sc["ti"] = sc["t"].view(np.int32)
        self._scratch = sc
        self._scratch_n = n
        return sc

    # -- introspection -------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of live lanes."""
        return len(self.ids)

    def lane_view(self, pos: int) -> _LaneView:
        """Machine-like injection target for live lane at index ``pos``."""
        return _LaneView(self, pos)

    def digest(self, pos: int) -> bytes:
        """``state_digest`` of live lane ``pos`` — equals the digest the
        equivalent scalar machine would report at this cycle."""
        return state_digest(self.ram[pos].tobytes(), self.regs[pos].tolist(),
                            self.pc, len(self.serial[pos]),
                            self.stuck[pos])

    def lane_state(self, pos: int, pc: int, cycle: int) -> MachineState:
        """Full scalar machine state of live lane ``pos``."""
        return MachineState(
            ram=self.ram[pos].tobytes(),
            regs=tuple(int(v) for v in self.regs[pos]),
            pc=pc,
            cycle=cycle,
            halted=False,
            serial=bytes(self.serial[pos]),
            detections=tuple(self.detections[pos]),
            stuck=self.stuck[pos],
        )

    def pop_exits(self) -> list[LaneExit]:
        """Drain and return the exits accumulated so far."""
        exits, self.exits = self.exits, []
        return exits

    # -- lane retirement -----------------------------------------------------

    def _exit(self, pos: int, kind: str, cycle: int, *, trap: str = "",
              state: MachineState | None = None) -> LaneExit:
        return LaneExit(lane=self.ids[pos], kind=kind, cycle=cycle,
                        trap=trap, serial=bytes(self.serial[pos]),
                        detections=tuple(self.detections[pos]), state=state)

    def _exit_all(self, kind: str, cycle: int, trap: str = "") -> None:
        for pos in range(self.n):
            self.exits.append(self._exit(pos, kind, cycle, trap=trap))
        self._compress(np.zeros(self.n, dtype=bool))

    def remove(self, positions) -> None:
        """Retire lanes (already classified by the caller) by position."""
        keep = np.ones(self.n, dtype=bool)
        keep[list(positions)] = False
        self._compress(keep)

    def _compress(self, keep: np.ndarray) -> None:
        if keep.all():
            return
        self._store = self._store[keep]
        self.ram = self._store[:, :self.ram_size]
        self.regs = self.regs[keep]
        kept = np.nonzero(keep)[0]
        self.ids = [self.ids[i] for i in kept]
        self.serial = [self.serial[i] for i in kept]
        self.detections = [self.detections[i] for i in kept]
        self.stuck = [self.stuck[i] for i in kept]
        if self._stuck_live:
            self._stuck_live = sum(
                1 for latch in self.stuck if latch is not None)
        self._rebuild_flat()

    # -- lane admission ------------------------------------------------------

    def admit(self, state: MachineState) -> int:
        """Append a lane resuming from ``state``; returns its lane id.

        The state must sit exactly on the pack's shared trajectory
        point — same pc *and* same cycle — because all lanes advance
        under one clock.  Used for cross-slot pack extension (a fresh
        injection whose slot the pack just reached) and for
        re-admission of an evicted lane whose scalar continuation
        rejoined the pack's pc in phase.
        """
        if state.halted:
            raise ValueError("cannot admit a halted state")
        if state.pc != self.pc or state.cycle != self.cycle:
            raise ValueError(
                f"admitted state at pc={state.pc} cycle={state.cycle} "
                f"does not match the pack at pc={self.pc} "
                f"cycle={self.cycle}")
        row = np.zeros((1, self._pad), dtype=np.uint8)
        row[0, :self.ram_size] = np.frombuffer(state.ram, dtype=np.uint8)
        self._store = np.concatenate((self._store, row), axis=0)
        self.ram = self._store[:, :self.ram_size]
        self.regs = np.concatenate(
            (self.regs,
             np.array(state.regs, dtype=np.uint32)[np.newaxis, :]), axis=0)
        self.serial.append(bytearray(state.serial))
        self.detections.append(list(state.detections))
        self.stuck.append(state.stuck)
        if state.stuck is not None:
            self._stuck_live += 1
        lane = self._next_id
        self._next_id += 1
        self.ids.append(lane)
        self._rebuild_flat()
        self._scratch_n = -1
        return lane

    # -- execution -----------------------------------------------------------

    def run_to(self, target: int) -> None:
        """Run all live lanes in lockstep until ``cycle >= target``.

        Lanes that halt, trap, diverge or evict along the way are
        appended to :attr:`exits`; the call returns when the target is
        reached or no lanes remain.

        When a :class:`~repro.engine.fused.FusedProgram` was supplied
        at construction, whole basic blocks whose body fits the budget
        dispatch through one fused kernel each; the kernel aborts (and
        this loop falls back to :meth:`_step`) whenever any lane would
        trap, so per-lane exit semantics are bit-identical either way.
        """
        rom, rom_len = self.rom, len(self.rom)
        fused = self._fused
        blocks_get = fused.blocks.get if fused is not None else None
        ids = self.ids
        while ids and self.cycle < target:
            pc = self.pc
            if not 0 <= pc < rom_len:
                if pc == rom_len:
                    # Implicit exit stub: clean halt, no cycle consumed.
                    self._exit_all(HALT, self.cycle)
                else:
                    self._exit_all(TRAP, self.cycle, trap="illegal-pc")
                return
            if blocks_get is not None:
                blk = blocks_get(pc)
                if (blk is not None
                        and self.cycle + blk.body_len <= target
                        and not (blk.has_store and self._stuck_live)
                        and blk.fn(self, len(ids), target)):
                    continue
            self._step(rom[pc])
            ids = self.ids

    def _step(self, ins) -> None:
        op = ins.op
        c0 = self.cycle
        pc1 = self.pc + 1
        regs = self.regs
        if op in _WIDTH:
            if not self._memory(ins, c0):
                return  # every lane trapped on this access
        elif op in _BRANCHES:
            self._branch(ins, c0)
            return
        elif op is Op.JAL:
            if ins.rd:
                regs[:, ins.rd] = np.uint32(pc1)
            self.pc = ins.imm
            self.cycle = c0 + 1
            return
        elif op is Op.JALR:
            self._jalr(ins, c0)
            return
        elif op is Op.OUT:
            if not self._out(ins, c0):
                return  # every lane diverged
        elif op is Op.DETECT:
            for det in self.detections:
                det.append((c0 + 1, ins.imm))
        elif op is Op.HALT:
            self.pc = pc1
            self.cycle = c0 + 1
            self._exit_all(HALT, c0 + 1)
            return
        elif op is Op.NOP:
            pass
        else:
            if not self._alu(ins, c0):
                return  # every lane trapped (division by zero)
        self.pc = pc1
        self.cycle = c0 + 1

    # Each helper returns False when *all* lanes exited, so ``_step``
    # skips the shared pc/cycle advance (there is nobody left to
    # advance; ``run_to`` terminates on ``self.ids`` being empty).

    def _alu(self, ins, c0: int) -> bool:
        regs = self.regs
        op, rd = ins.op, ins.rd
        a = regs[:, ins.rs1]
        b = regs[:, ins.rs2]
        imm = ins.imm
        iu = np.uint32(imm & _M)
        if op is Op.ADD:
            v = a + b
        elif op is Op.SUB:
            v = a - b
        elif op is Op.AND:
            v = a & b
        elif op is Op.OR:
            v = a | b
        elif op is Op.XOR:
            v = a ^ b
        elif op is Op.SLL:
            v = a << (b & np.uint32(31))
        elif op is Op.SRL:
            v = a >> (b & np.uint32(31))
        elif op is Op.SRA:
            v = (a.astype(np.int32)
                 >> (b & np.uint32(31)).astype(np.int32)).astype(np.uint32)
        elif op is Op.SLT:
            v = (a.astype(np.int32) < b.astype(np.int32)).astype(np.uint32)
        elif op is Op.SLTU:
            v = (a < b).astype(np.uint32)
        elif op is Op.MUL:
            v = a * b
        elif op in (Op.DIVU, Op.REMU):
            zero = b == np.uint32(0)
            if zero.any():
                for pos in np.nonzero(zero)[0]:
                    self.exits.append(self._exit(int(pos), TRAP, c0,
                                                 trap="arithmetic-trap"))
                self._compress(~zero)
                if not self.ids:
                    return False
                regs = self.regs
                a = regs[:, ins.rs1]
                b = regs[:, ins.rs2]
            v = a % b if op is Op.REMU else a // b
        elif op is Op.ADDI:
            v = a + iu
        elif op is Op.ANDI:
            v = a & iu
        elif op is Op.ORI:
            v = a | iu
        elif op is Op.XORI:
            v = a ^ iu
        elif op is Op.SLLI:
            v = a << np.uint32(imm)
        elif op is Op.SRLI:
            v = a >> np.uint32(imm)
        elif op is Op.SRAI:
            v = (a.astype(np.int32) >> np.int32(imm)).astype(np.uint32)
        elif op is Op.SLTI:
            v = (a.astype(np.int32) < np.int32(imm)).astype(np.uint32)
        elif op is Op.SLTIU:
            v = (a < iu).astype(np.uint32)
        elif op is Op.LUI:
            v = np.uint32((imm << 16) & _M)
        else:  # pragma: no cover - exhaustive over the ISA
            raise AssertionError(f"unhandled op {op!r}")
        if rd:
            regs[:, rd] = v
        return True

    def _memory(self, ins, c0: int) -> bool:
        op = ins.op
        width = _WIDTH[op]
        addr = self.regs[:, ins.rs1].astype(np.int64) + ins.imm
        load = op not in (Op.SW, Op.SH, Op.SB)
        kind = "load" if load else "store"
        bad = (addr < 0) | (addr > self.ram_size - width)
        if width > 1:
            bad |= (addr % width) != 0
        if bad.any():
            for pos in np.nonzero(bad)[0]:
                a = int(addr[pos])
                name = "alignment-fault" if a % width else "memory-fault"
                self.exits.append(self._exit(int(pos), TRAP, c0, trap=name))
            keep = ~bad
            self._compress(keep)
            if not self.ids:
                return False
            addr = addr[keep]
        if not load and any(s is not None for s in self.stuck):
            # A store covering a lane's armed stuck-at latch must go
            # through the scalar release hook ("write wins") — evict
            # such lanes *before* the store so the Tier-1 machine
            # re-executes this instruction with exact semantics.
            hit = [pos for pos, s in enumerate(self.stuck)
                   if s is not None
                   and addr[pos] <= s[0] < int(addr[pos]) + width]
            if hit:
                for pos in hit:
                    self.exits.append(self._exit(
                        pos, EVICT, c0,
                        state=self.lane_state(pos, self.pc, c0)))
                keep = np.ones(self.n, dtype=bool)
                keep[hit] = False
                self._compress(keep)
                if not self.ids:
                    return False
                addr = addr[keep]
        flat = self._flat
        base = self._offsets + addr
        if load:
            if width == 4:
                v = (flat[base].astype(np.uint32)
                     | (flat[base + 1].astype(np.uint32) << np.uint32(8))
                     | (flat[base + 2].astype(np.uint32) << np.uint32(16))
                     | (flat[base + 3].astype(np.uint32) << np.uint32(24)))
            elif width == 2:
                v = (flat[base].astype(np.uint32)
                     | (flat[base + 1].astype(np.uint32) << np.uint32(8)))
                if op is Op.LH:
                    v = np.where(v & np.uint32(0x8000),
                                 v | np.uint32(0xFFFF0000), v)
            else:
                v = flat[base].astype(np.uint32)
                if op is Op.LB:
                    v = np.where(v & np.uint32(0x80),
                                 v | np.uint32(0xFFFFFF00), v)
            if ins.rd:
                self.regs[:, ins.rd] = v
        else:
            v = self.regs[:, ins.rs2]
            flat[base] = (v & np.uint32(0xFF)).astype(np.uint8)
            if width >= 2:
                flat[base + 1] = ((v >> np.uint32(8))
                                  & np.uint32(0xFF)).astype(np.uint8)
            if width == 4:
                flat[base + 2] = ((v >> np.uint32(16))
                                  & np.uint32(0xFF)).astype(np.uint8)
                flat[base + 3] = (v >> np.uint32(24)).astype(np.uint8)
        return True

    def _out(self, ins, c0: int) -> bool:
        vals = self.regs[:, ins.rs1] & np.uint32(0xFF)
        oracle, olen = self.oracle, self._olen
        diverged = []
        for pos, byte in enumerate(vals):
            serial = self.serial[pos]
            serial.append(int(byte))
            if oracle is not None:
                n = len(serial)
                if n > olen or oracle[n - 1] != byte:
                    diverged.append(pos)
        if diverged:
            for pos in diverged:
                self.exits.append(self._exit(pos, DIVERGE, c0 + 1))
            keep = np.ones(self.n, dtype=bool)
            keep[diverged] = False
            self._compress(keep)
        return bool(self.ids)

    def _branch(self, ins, c0: int) -> None:
        regs = self.regs
        a = regs[:, ins.rs1]
        b = regs[:, ins.rs2]
        op = ins.op
        if op is Op.BEQ:
            taken = a == b
        elif op is Op.BNE:
            taken = a != b
        elif op is Op.BLT:
            taken = a.astype(np.int32) < b.astype(np.int32)
        elif op is Op.BGE:
            taken = a.astype(np.int32) >= b.astype(np.int32)
        elif op is Op.BLTU:
            taken = a < b
        else:  # BGEU
            taken = a >= b
        target, fall = ins.imm, self.pc + 1
        if target == fall:
            self.pc = target
            self.cycle = c0 + 1
            return
        nt = int(np.count_nonzero(taken))
        n = self.n
        if nt == n:
            self.pc = target
        elif nt == 0:
            self.pc = fall
        else:
            # Disagreement: keep the majority side, evict the minority
            # to scalar continuation.  Ties keep the taken side, so
            # eviction is deterministic.
            keep_taken = 2 * nt >= n
            keep = taken if keep_taken else ~taken
            evict_pc = fall if keep_taken else target
            for pos in np.nonzero(~keep)[0]:
                pos = int(pos)
                self.exits.append(self._exit(
                    pos, EVICT, c0 + 1,
                    state=self.lane_state(pos, evict_pc, c0 + 1)))
            self._compress(keep)
            self.pc = target if keep_taken else fall
        self.cycle = c0 + 1

    def _jalr(self, ins, c0: int) -> None:
        regs = self.regs
        targets = regs[:, ins.rs1] + np.uint32(ins.imm & _M)
        if ins.rd:
            regs[:, ins.rd] = np.uint32(self.pc + 1)
        values, counts = np.unique(targets, return_counts=True)
        # ``values`` is sorted and argmax returns the first maximum, so
        # the smallest most-common target wins — deterministic.
        major = values[np.argmax(counts)]
        if len(values) > 1:
            keep = targets == major
            for pos in np.nonzero(~keep)[0]:
                pos = int(pos)
                self.exits.append(self._exit(
                    pos, EVICT, c0 + 1,
                    state=self.lane_state(pos, int(targets[pos]), c0 + 1)))
            self._compress(keep)
        self.pc = int(major)
        self.cycle = c0 + 1
