"""Fused basic-block kernels for the lockstep batch tier.

:class:`~repro.engine.batch.LockstepLanes` pays roughly seven numpy
dispatches per executed opcode (`_step` → `_alu`/`_memory` → masked
temporaries), so a pack needs ~5 live lanes just to break even with the
compiled scalar tier.  This module removes the per-instruction Python
re-decode the same way :mod:`repro.engine.compiled` does for scalar
machines: at compile time the ROM is decomposed into basic blocks
(reusing the compiled tier's `_find_blocks`) and each block's body is
emitted as **one** generated-Python function of straight-line numpy
calls — operands constant-folded into the source, results written with
in-place ``out=`` into preallocated scratch arrays and register-column
views, RAM words gathered/scattered through uint32/uint16 views of the
padded lane-RAM rows.

Exactness contract (the Hypothesis differential suite pins this):
running a block through its fused kernel leaves every lane bit-identical
to stepping the same block per-instruction.  Three mechanisms make that
cheap to guarantee:

* **Speculate, then commit.**  Register writes go straight into the
  lane register file, but a copy is saved on kernel entry whenever the
  block contains an op that can trap (memory access, ``divu``/``remu``).
  RAM stores and ``detect`` records are *buffered* and only applied in
  the commit epilogue, after every trap check has passed.
* **Abort to the per-instruction path.**  If any lane would trap — a
  lane-dependent property the compiler cannot know — the kernel rolls
  the registers back and returns ``False``; the caller re-executes the
  block through the existing `_step` path, which delivers the exact
  per-lane trap/continue semantics.  The same fallback covers blocks
  the compiler refuses outright: ``out`` (oracle divergence), a load
  that follows a store in the same block (it would read stale RAM
  under buffering), and stores while any lane's stuck-at latch is
  armed (the "write wins" release needs scalar semantics).
* **Terminals stay shared.**  A block-ending branch/``jalr`` is folded
  into the kernel only for the unanimous case; on disagreement the
  kernel leaves the pc at the terminal instruction and the caller's
  `_step` performs the usual deterministic majority-keep eviction.

Kernels assume little-endian flat views; :func:`compile_fused` returns
``None`` on big-endian hosts and the batch tier silently keeps its
per-instruction path (same gate as the compiled engine).
"""

from __future__ import annotations

import sys

import numpy as np

from ..isa.assembler import Program
from ..isa.isa import Op, WORD_MASK
from .compiled import _find_blocks

_M = WORD_MASK

_LOADS = {Op.LW: 4, Op.LH: 2, Op.LHU: 2, Op.LB: 1, Op.LBU: 1}
_STORES = {Op.SW: 4, Op.SH: 2, Op.SB: 1}
_BRANCHES = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU}
#: Branch condition → (ufunc, signed operands).
_BRANCH_COND = {
    Op.BEQ: ("np.equal", False),
    Op.BNE: ("np.not_equal", False),
    Op.BLT: ("np.less", True),
    Op.BGE: ("np.greater_equal", True),
    Op.BLTU: ("np.less", False),
    Op.BGEU: ("np.greater_equal", False),
}
#: Simple three-address ALU ops → ufunc name.
_ALU3 = {
    Op.ADD: "np.add", Op.SUB: "np.subtract", Op.AND: "np.bitwise_and",
    Op.OR: "np.bitwise_or", Op.XOR: "np.bitwise_xor", Op.MUL: "np.multiply",
}
#: Register-immediate ALU ops → ufunc name (imm masked to uint32).
_ALUI = {
    Op.ADDI: "np.add", Op.ANDI: "np.bitwise_and",
    Op.ORI: "np.bitwise_or", Op.XORI: "np.bitwise_xor",
}


def pad_rows(ram_size: int) -> int:
    """Lane-RAM row stride: ``ram_size`` rounded up to a word multiple.

    Row padding keeps every lane's RAM word-aligned inside the flat
    backing array, so aligned word/halfword accesses become single
    gathers/scatters through ``uint32``/``uint16`` views instead of
    per-byte shift-and-or assembly.
    """
    return (ram_size + 3) & ~3


class FusedBlock:
    """One compiled basic block: ``fn(lanes, n, target) -> bool``.

    ``fn`` returns ``True`` when the whole body (and possibly a
    unanimous terminal) was applied and pc/cycle advanced, ``False``
    when it aborted with all lane state rolled back — the caller then
    re-runs the block per-instruction.  ``body_len`` is the cycle cost
    of the fused body; ``has_store`` gates fusion off while a stuck-at
    latch is armed on any lane.
    """

    __slots__ = ("start", "body_len", "has_store", "fn")

    def __init__(self, start: int, body_len: int, has_store: bool, fn):
        self.start = start
        self.body_len = body_len
        self.has_store = has_store
        self.fn = fn


class FusedProgram:
    """The fused-kernel artifact for one program."""

    __slots__ = ("blocks", "max_stores", "source")

    def __init__(self, blocks: dict, max_stores: int, source: str):
        #: Kernels keyed by block-leader pc.
        self.blocks = blocks
        #: Widest per-block deferred-store buffer any kernel needs.
        self.max_stores = max_stores
        #: Generated source, kept for debugging and tests.
        self.source = source


class _BlockEmitter:
    """Emits one kernel function; records the scratch/columns it needs."""

    def __init__(self, consts: dict, const_names: dict, ram_size: int):
        self.body: list[str] = []
        self.consts = consts
        self._const_names = const_names
        self.ram_size = ram_size
        self.cols_u: set[int] = set()
        self.cols_i: set[int] = set()
        self.scratch: set[str] = set()
        self.flats: set[str] = set()
        self.can_abort = False
        self.stores = 0
        self.fusable = True

    # -- expression helpers --------------------------------------------------

    def const(self, kind: str, value: int) -> str:
        key = (kind, value)
        name = self._const_names.get(key)
        if name is None:
            name = f"K{len(self._const_names)}"
            self._const_names[key] = name
            if kind == "u32":
                self.consts[name] = np.uint32(value & _M)
            elif kind == "i32":
                self.consts[name] = np.int32(value)
            else:  # plain python int (int64 arithmetic via weak promotion)
                self.consts[name] = int(value)
        return name

    def ru(self, reg: int) -> str:
        self.cols_u.add(reg)
        return f"r{reg}"

    def ri(self, reg: int) -> str:
        self.cols_i.add(reg)
        return f"i{reg}"

    def scr(self, name: str) -> str:
        self.scratch.add(name)
        return name

    def flat(self, name: str) -> str:
        self.flats.add(name)
        return name

    def line(self, text: str) -> None:
        self.body.append("    " + text)

    def abort(self, condition: str) -> None:
        """Roll back registers and bail to the per-instruction path."""
        self.can_abort = True
        self.line(f"if {condition}:")
        self.line("    np.copyto(regs, saved)")
        self.line("    return False")

    # -- per-instruction emitters -------------------------------------------

    def emit_alu(self, ins) -> None:
        op, rd = ins.op, ins.rd
        if op in _ALU3:
            if rd:
                self.line(f"{_ALU3[op]}({self.ru(ins.rs1)}, "
                          f"{self.ru(ins.rs2)}, out={self.ru(rd)})")
        elif op in _ALUI:
            if rd:
                self.line(f"{_ALUI[op]}({self.ru(ins.rs1)}, "
                          f"{self.const('u32', ins.imm)}, out={self.ru(rd)})")
        elif op in (Op.SLL, Op.SRL):
            if rd:
                t = self.scr("t")
                self.line(f"np.bitwise_and({self.ru(ins.rs2)}, "
                          f"{self.const('u32', 31)}, out={t})")
                fn = "np.left_shift" if op is Op.SLL else "np.right_shift"
                self.line(f"{fn}({self.ru(ins.rs1)}, {t}, "
                          f"out={self.ru(rd)})")
        elif op is Op.SRA:
            if rd:
                self.scr("t")
                ti = self.scr("ti")
                self.line(f"np.bitwise_and({self.ru(ins.rs2)}, "
                          f"{self.const('u32', 31)}, out=t)")
                self.line(f"np.right_shift({self.ri(ins.rs1)}, {ti}, "
                          f"out={self.ri(rd)})")
        elif op in (Op.SLLI, Op.SRLI):
            if rd:
                fn = "np.left_shift" if op is Op.SLLI else "np.right_shift"
                self.line(f"{fn}({self.ru(ins.rs1)}, "
                          f"{self.const('u32', ins.imm)}, out={self.ru(rd)})")
        elif op is Op.SRAI:
            if rd:
                self.line(f"np.right_shift({self.ri(ins.rs1)}, "
                          f"{self.const('i32', ins.imm)}, "
                          f"out={self.ri(rd)})")
        elif op is Op.SLT:
            if rd:
                self.line(f"np.less({self.ri(ins.rs1)}, {self.ri(ins.rs2)}, "
                          f"out={self.ru(rd)})")
        elif op is Op.SLTU:
            if rd:
                self.line(f"np.less({self.ru(ins.rs1)}, {self.ru(ins.rs2)}, "
                          f"out={self.ru(rd)})")
        elif op is Op.SLTI:
            if rd:
                self.line(f"np.less({self.ri(ins.rs1)}, "
                          f"{self.const('i32', ins.imm)}, out={self.ru(rd)})")
        elif op is Op.SLTIU:
            if rd:
                self.line(f"np.less({self.ru(ins.rs1)}, "
                          f"{self.const('u32', ins.imm)}, out={self.ru(rd)})")
        elif op is Op.LUI:
            if rd:
                self.line(f"{self.ru(rd)}[...] = "
                          f"{self.const('u32', (ins.imm << 16) & _M)}")
        elif op in (Op.DIVU, Op.REMU):
            bt = self.scr("bt")
            self.line(f"np.equal({self.ru(ins.rs2)}, "
                      f"{self.const('u32', 0)}, out={bt})")
            self.abort(f"{bt}.any()")
            if rd:
                fn = ("np.floor_divide" if op is Op.DIVU
                      else "np.remainder")
                self.line(f"{fn}({self.ru(ins.rs1)}, {self.ru(ins.rs2)}, "
                          f"out={self.ru(rd)})")
        else:  # pragma: no cover - body ops are exhaustive
            raise AssertionError(f"unexpected ALU op {op!r}")

    def _emit_addr(self, ins, width: int) -> None:
        """Compute the access address in ``a`` and trap-check it."""
        a = self.scr("a")
        self.line(f"np.copyto({a}, {self.ru(ins.rs1)})")
        if ins.imm:
            self.line(f"np.add({a}, {self.const('int', ins.imm)}, out={a})")
        if width > 1:
            q = self.scr("q")
            self.line(f"np.bitwise_and({a}, "
                      f"{self.const('int', width - 1)}, out={q})")
            self.abort(f"{q}.any()")
        au = self.scr("au")
        bt = self.scr("bt")
        self.line(f"np.greater({au}, "
                  f"{self.const('int', self.ram_size - width)}, out={bt})")
        self.abort(f"{bt}.any()")

    def _emit_index(self, width: int) -> None:
        """Turn the byte address in ``a`` into a flat element index."""
        if width == 4:
            self.line("np.right_shift(a, 2, out=a)")
            off = self.scr("o32")
        elif width == 2:
            self.line("np.right_shift(a, 1, out=a)")
            off = self.scr("o16")
        else:
            off = self.scr("o8")
        self.line(f"np.add(a, {off}, out=a)")

    def emit_load(self, ins) -> None:
        op = ins.op
        width = _LOADS[op]
        if self.ram_size < width:
            self.fusable = False
            return
        self._emit_addr(ins, width)
        if not ins.rd:
            return  # trap checks only; the load itself has no effect
        self._emit_index(width)
        if op is Op.LW:
            self.line(f"np.take({self.flat('F32')}, a, "
                      f"out={self.ru(ins.rd)})")
        elif op is Op.LHU:
            g = self.scr("h16")
            self.line(f"np.take({self.flat('F16')}, a, out={g})")
            self.line(f"{self.ru(ins.rd)}[...] = {g}")
        elif op is Op.LH:
            g = self.scr("g16")
            self.line(f"np.take({self.flat('F16i')}, a, out={g})")
            self.line(f"{self.ru(ins.rd)}[...] = {g}")
        elif op is Op.LBU:
            g = self.scr("h8")
            self.line(f"np.take({self.flat('F8')}, a, out={g})")
            self.line(f"{self.ru(ins.rd)}[...] = {g}")
        else:  # LB
            g = self.scr("g8")
            self.line(f"np.take({self.flat('F8i')}, a, out={g})")
            self.line(f"{self.ru(ins.rd)}[...] = {g}")

    def emit_store(self, ins) -> tuple[str, str] | None:
        """Buffer one store; returns the commit statement's pieces."""
        width = _STORES[ins.op]
        if self.ram_size < width:
            self.fusable = False
            return None
        self._emit_addr(ins, width)
        self._emit_index(width)
        k = self.stores
        self.stores += 1
        si = self.scr(f"si{k}")
        sv = self.scr(f"sv{k}")
        self.line(f"np.copyto({si}, a)")
        self.line(f"np.copyto({sv}, {self.ru(ins.rs2)})")
        flat = {4: "F32", 2: "F16", 1: "F8"}[width]
        return (f"{self.flat(flat)}[{si}]", sv)


def _emit_terminal(em: _BlockEmitter, ins, pc: int) -> bool:
    """Fold a block terminal into the kernel for the unanimous case.

    Returns True when the terminal could be (conditionally) fused; the
    non-unanimous / over-budget cases leave ``L.pc`` at the terminal
    instruction for the caller's `_step` to handle exactly.
    """
    op = ins.op
    if op in _BRANCHES:
        target, fall = ins.imm, pc + 1
        em.line("if L.cycle < target:")
        if target == fall:
            em.line(f"    L.pc = {target}")
            em.line("    L.cycle += 1")
            return True
        fn, signed = _BRANCH_COND[op]
        opa = em.ri(ins.rs1) if signed else em.ru(ins.rs1)
        opb = em.ri(ins.rs2) if signed else em.ru(ins.rs2)
        bt = em.scr("bt")
        em.line(f"    {fn}({opa}, {opb}, out={bt})")
        em.line(f"    _nt = np.count_nonzero({bt})")
        em.line("    if _nt == n:")
        em.line(f"        L.pc = {target}")
        em.line("        L.cycle += 1")
        em.line("    elif _nt == 0:")
        em.line(f"        L.pc = {fall}")
        em.line("        L.cycle += 1")
        return True
    if op is Op.JAL:
        em.line("if L.cycle < target:")
        if ins.rd:
            em.line(f"    {em.ru(ins.rd)}[...] = {em.const('u32', pc + 1)}")
        em.line(f"    L.pc = {ins.imm}")
        em.line("    L.cycle += 1")
        return True
    if op is Op.JALR:
        t = em.scr("t")
        bt = em.scr("bt")
        em.line("if L.cycle < target:")
        em.line(f"    np.add({em.ru(ins.rs1)}, "
                f"{em.const('u32', ins.imm)}, out={t})")
        em.line(f"    np.equal({t}, {t}[0], out={bt})")
        em.line(f"    if {bt}.all():")
        if ins.rd:
            em.line(f"        {em.ru(ins.rd)}[...] = "
                    f"{em.const('u32', pc + 1)}")
        em.line(f"        L.pc = int({t}[0])")
        em.line("        L.cycle += 1")
        return True
    return False  # HALT: always per-instruction


def compile_fused(program: Program) -> FusedProgram | None:
    """Compile every profitable basic block of ``program``.

    Returns ``None`` when nothing can be fused (big-endian host, empty
    ROM, or no block with a fusable body of at least two dispatches).
    """
    if sys.byteorder != "little":
        return None  # pragma: no cover - flat views assume little-endian
    rom = program.rom
    if not rom:
        return None
    consts: dict[str, object] = {}
    const_names: dict[tuple, str] = {}
    chunks: list[str] = []
    specs: list[tuple[int, int, bool, str]] = []
    max_stores = 0
    for block in _find_blocks(rom, program.entry):
        em = _BlockEmitter(consts, const_names, program.ram_size)
        commits: list[tuple[str, str]] = []
        detects: list[tuple[int, int]] = []
        body_len = 0
        terminal = None
        term_pc = block.start
        seen_store = False
        for pc, ins in block.instrs:
            op = ins.op
            if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU,
                      Op.JAL, Op.JALR, Op.HALT):
                terminal, term_pc = ins, pc
                break
            if op is Op.OUT:
                term_pc = pc
                break  # oracle divergence needs the scalar path
            if op in _LOADS and seen_store:
                term_pc = pc
                break  # would read stale RAM under store buffering
            if op is Op.NOP:
                pass
            elif op is Op.DETECT:
                detects.append((body_len, ins.imm))
            elif op in _LOADS:
                em.emit_load(ins)
            elif op in _STORES:
                piece = em.emit_store(ins)
                if piece is not None:
                    commits.append(piece)
                seen_store = True
            else:
                em.emit_alu(ins)
            if not em.fusable:
                break
            body_len += 1
            term_pc = pc + 1
        if not em.fusable:
            continue
        # Commit epilogue: buffered stores, deferred detects, clock.
        for lhs, sv in commits:
            em.line(f"{lhs} = {sv}")
        if detects:
            em.line("_c = L.cycle")
            for offset, code in detects:
                em.line(f"_t = (_c + {offset + 1}, {code})")
                em.line("for _d in L.detections:")
                em.line("    _d.append(_t)")
        em.line(f"L.cycle += {body_len}")
        em.line(f"L.pc = {term_pc}")
        fused_terminal = (terminal is not None and body_len == term_pc -
                          block.start and _emit_terminal(em, terminal,
                                                         term_pc))
        if body_len + (1 if fused_terminal else 0) < 2:
            continue
        em.line("return True")
        name = f"_k{block.start}"
        chunks.append(_render(name, em))
        specs.append((block.start, body_len, em.stores > 0, name))
        max_stores = max(max_stores, em.stores)
    if not specs:
        return None
    source = "\n".join(chunks)
    namespace: dict[str, object] = {"np": np, **consts}
    exec(compile(source, "<fused>", "exec"), namespace)  # noqa: S102
    blocks = {start: FusedBlock(start, body_len, has_store,
                                namespace[name])
              for start, body_len, has_store, name in specs}
    return FusedProgram(blocks=blocks, max_stores=max_stores, source=source)


def _render(name: str, em: _BlockEmitter) -> str:
    """Assemble one kernel function: preamble + body + epilogue."""
    lines = [f"def {name}(L, n, target):", "    regs = L.regs"]
    if em.can_abort:
        em.scratch.add("saved")
    if em.scratch:
        lines.append("    s = L._fused_scratch(n)")
        for nm in sorted(em.scratch):
            lines.append(f"    {nm} = s['{nm}']")
    if em.can_abort:
        lines.append("    np.copyto(saved, regs)")
    for reg in sorted(em.cols_u):
        lines.append(f"    r{reg} = regs[:, {reg}]")
    if em.cols_i:
        lines.append("    ri_ = regs.view(np.int32)")
        for reg in sorted(em.cols_i):
            lines.append(f"    i{reg} = ri_[:, {reg}]")
    for nm in sorted(em.flats):
        attr = {"F32": "_flat32", "F16": "_flat16", "F16i": "_flat16i",
                "F8": "_flat", "F8i": "_flat8i"}[nm]
        lines.append(f"    {nm} = L.{attr}")
    lines.extend(em.body)
    return "\n".join(lines) + "\n"
