"""Tier-1 execution engine: a template JIT emitting Python superblocks.

The interpreter in :mod:`repro.isa.cpu` pays, per executed instruction,
one bound-method call, one tuple unpack, several attribute loads and a
``_set`` call.  At ~0.5 µs/instruction that is the binding constraint on
every campaign.  This module removes that per-instruction toll by
*generating Python source* for the whole program at machine-build time:

* The ROM is decomposed into **basic blocks** (leaders are the entry
  point, branch/jump targets, and successors of control transfers).
* Each block becomes straight-line source with every operand
  **constant-folded** into the text: register fields select local
  variable names (``r3``), immediates become literals, ``r0`` reads
  fold to ``0`` and ``r0`` writes vanish.  Registers live in Python
  locals for the duration of a call; RAM words and halfwords are read
  and written through cached ``memoryview(...).cast("I"/"H")`` views.
* Blocks whose terminal branch targets their own start (the innermost
  loops of real programs) are specialized into a native ``while`` loop,
  amortizing dispatch to nearly zero.
* All blocks are stitched into **one** generated function behind a
  binary dispatch tree on ``pc``; the driver calls it once per entry,
  not once per instruction.

Exactness is the design constraint, not an afterthought — campaign
results must be bit-for-bit those of the interpreter:

* Cycle accounting is block-granular (``cycle += LEN``) but only commits
  whole blocks that fit the remaining budget; budget tails and mid-block
  entry points (snapshot restores, ``jalr`` into a block body) fall back
  to the interpreter's own pre-bound handlers one instruction at a time.
* Traps raise the exact :class:`~repro.isa.errors.CPUException`
  subclasses with the interpreter's messages, ``pc``/``cycle``
  attributes, and its halted/pc/cycle post-state.
* ``out``/``detect``/oracle-divergence side effects appear at the same
  cycle numbers, so golden output, detections and the convergence
  ladder's :func:`~repro.isa.cpu.state_digest` match the interpreter at
  every instruction boundary the campaign layer can observe.
* Golden recording (``tracer``) uses the interpreter path outright —
  tracing is one run per campaign and wants per-access hooks.

``CompiledMachine`` is a drop-in :class:`~repro.isa.cpu.Machine`;
``tests/engine`` and the Hypothesis differential fuzzer hold the two
implementations equal instruction-for-instruction.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from ..isa.assembler import Program
from ..isa.cpu import Machine
from ..isa.errors import (
    AlignmentFault,
    ArithmeticTrap,
    CPUException,
    HaltedMachine,
    IllegalPC,
    MemoryFault,
)
from ..isa.isa import Op, WORD_MASK

#: Branches: conditional pc change, fall through otherwise.
_BRANCHES = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU})
#: All control transfers — they terminate a basic block.
_CONTROL = _BRANCHES | {Op.JAL, Op.JALR, Op.HALT}

_M = WORD_MASK
_SIGN = 0x80000000


def _mem_trap(addr, width, pc, cycle, kind):
    """Raise the interpreter's exact alignment/bounds trap."""
    if addr % width:
        raise AlignmentFault(
            f"unaligned {width}-byte {kind} at {addr:#x}",
            pc=pc, cycle=cycle)
    raise MemoryFault(
        f"{kind} of {width} bytes at {addr:#x} outside RAM",
        pc=pc, cycle=cycle)


def _div_trap(pc, cycle, rem):
    """Raise the interpreter's exact division/remainder trap."""
    raise ArithmeticTrap("remainder by zero" if rem else "division by zero",
                         pc=pc, cycle=cycle)


@dataclass(frozen=True)
class CompiledCode:
    """The JIT artifact for one program."""

    #: ``fn(machine, limit)`` — run whole blocks until the budget, a
    #: halt, a trap, or a pc outside every block leader.
    run_fn: object
    #: Block-leader pcs the generated dispatch tree accepts.
    leaders: frozenset
    #: Generated source, kept for debugging and tests.
    source: str


class _Block:
    """One basic block: ``instrs`` are ``(pc, Instruction)`` pairs."""

    __slots__ = ("start", "instrs", "self_loop")

    def __init__(self, start, instrs, self_loop):
        self.start = start
        self.instrs = instrs
        self.self_loop = self_loop


def _find_blocks(rom, entry):
    leaders = {0}
    n = len(rom)
    if 0 <= entry < n:
        leaders.add(entry)
    for i, ins in enumerate(rom):
        op = ins.op
        if (op in _BRANCHES or op is Op.JAL) and 0 <= ins.imm < n:
            leaders.add(ins.imm)
        if op in _CONTROL and i + 1 < n:
            leaders.add(i + 1)
    starts = sorted(pc for pc in leaders if pc < n)
    blocks = []
    for index, start in enumerate(starts):
        end = starts[index + 1] if index + 1 < len(starts) else n
        instrs = []
        for pc in range(start, end):
            ins = rom[pc]
            instrs.append((pc, ins))
            if ins.op in _CONTROL:
                break
        if not instrs:
            continue
        last = instrs[-1][1]
        # A block ending in a branch back to its own start becomes a
        # native while loop — unless it contains ``out``, whose oracle
        # early-exit needs the outer dispatch loop's ``break``.
        self_loop = (last.op in _BRANCHES and last.imm == start
                     and not any(i.op is Op.OUT for _, i in instrs))
        blocks.append(_Block(start, instrs, self_loop))
    return blocks


class _Codegen:
    """Emits the superblock function for one program."""

    def __init__(self, program: Program):
        self.program = program
        self.ram_size = program.ram_size
        self.lines: list[str] = []
        self.used_regs: set[int] = set()
        self.uses: set[str] = set()

    # -- small expression helpers -------------------------------------------

    def _reg(self, r: int) -> str:
        if r == 0:
            return "0"
        self.used_regs.add(r)
        return f"r{r}"

    def _wreg(self, r: int) -> str:
        self.used_regs.add(r)
        return f"r{r}"

    def _set(self, rd: int, expr: str, mask: bool) -> list[str]:
        if rd == 0:
            return []
        if mask:
            expr = f"({expr}) & {_M}"
        return [f"{self._wreg(rd)} = {expr}"]

    @staticmethod
    def _signed(expr: str) -> str:
        if expr == "0":
            return "0"
        return f"(({expr} ^ {_SIGN}) - {_SIGN})"

    # -- per-instruction emission -------------------------------------------

    def _alu(self, ins, pc: int, k: int) -> list[str]:
        op, rd = ins.op, ins.rd
        a, b = self._reg(ins.rs1), self._reg(ins.rs2)
        imm = ins.imm
        iu = imm & _M
        S = self._set
        if op is Op.ADD:
            if a == "0":
                return S(rd, b, False)
            if b == "0":
                return S(rd, a, False)
            return S(rd, f"{a} + {b}", True)
        if op is Op.SUB:
            if b == "0":
                return S(rd, a, False)
            return S(rd, f"{a} - {b}", True)
        if op is Op.AND:
            if a == "0" or b == "0":
                return S(rd, "0", False)
            return S(rd, f"{a} & {b}", False)
        if op is Op.OR:
            if a == "0":
                return S(rd, b, False)
            if b == "0":
                return S(rd, a, False)
            return S(rd, f"{a} | {b}", False)
        if op is Op.XOR:
            if a == "0":
                return S(rd, b, False)
            if b == "0":
                return S(rd, a, False)
            return S(rd, f"{a} ^ {b}", False)
        if op is Op.SLL:
            if a == "0":
                return S(rd, "0", False)
            if b == "0":
                return S(rd, a, False)
            return S(rd, f"{a} << ({b} & 31)", True)
        if op is Op.SRL:
            if a == "0":
                return S(rd, "0", False)
            if b == "0":
                return S(rd, a, False)
            return S(rd, f"{a} >> ({b} & 31)", False)
        if op is Op.SRA:
            if a == "0":
                return S(rd, "0", False)
            if b == "0":
                return S(rd, a, False)
            return S(rd, f"{self._signed(a)} >> ({b} & 31)", True)
        if op is Op.SLT:
            return S(rd, f"1 if ({a} ^ {_SIGN}) < ({b} ^ {_SIGN}) else 0",
                     False)
        if op is Op.SLTU:
            return S(rd, f"1 if {a} < {b} else 0", False)
        if op is Op.MUL:
            if a == "0" or b == "0":
                return S(rd, "0", False)
            return S(rd, f"{a} * {b}", True)
        if op in (Op.DIVU, Op.REMU):
            rem = op is Op.REMU
            self.uses.add("div_trap")
            trap = f"_div_trap({pc}, cycle + {k}, {rem})"
            if b == "0":
                return [trap]
            sym = "%" if rem else "//"
            return [f"if {b} == 0:", f"    {trap}"] + S(
                rd, f"{a} {sym} {b}", False)
        if op is Op.ADDI:
            if a == "0":
                return S(rd, str(iu), False)
            if imm == 0:
                return S(rd, a, False)
            return S(rd, f"{a} + ({imm})", True)
        if op is Op.ANDI:
            if a == "0":
                return S(rd, "0", False)
            return S(rd, f"{a} & {iu}", False)
        if op is Op.ORI:
            if a == "0":
                return S(rd, str(iu), False)
            return S(rd, f"{a} | {iu}", False)
        if op is Op.XORI:
            if a == "0":
                return S(rd, str(iu), False)
            return S(rd, f"{a} ^ {iu}", False)
        if op is Op.SLLI:
            # The r0 fold must not swallow the ValueError a negative
            # shift count raises in the interpreter (same for SRLI/SRAI).
            if a == "0" and imm >= 0:
                return S(rd, "0", False)
            return S(rd, f"{a} << {imm}", True)
        if op is Op.SRLI:
            if a == "0" and imm >= 0:
                return S(rd, "0", False)
            return S(rd, f"{a} >> {imm}", False)
        if op is Op.SRAI:
            if a == "0" and imm >= 0:
                return S(rd, "0", False)
            return S(rd, f"{self._signed(a)} >> {imm}", True)
        if op is Op.SLTI:
            if a == "0":
                return S(rd, str(int(0 < imm)), False)
            return S(rd, f"1 if {self._signed(a)} < ({imm}) else 0", False)
        if op is Op.SLTIU:
            if a == "0":
                return S(rd, str(int(0 < iu)), False)
            return S(rd, f"1 if {a} < {iu} else 0", False)
        if op is Op.LUI:
            return S(rd, str((imm << 16) & _M), False)
        raise AssertionError(f"not an ALU op: {op!r}")  # pragma: no cover

    def _memory(self, ins, pc: int, k: int) -> list[str]:
        op, rd, imm = ins.op, ins.rd, ins.imm
        base = self._reg(ins.rs1)
        load = op not in (Op.SW, Op.SH, Op.SB)
        kind = "load" if load else "store"
        width = {Op.LW: 4, Op.SW: 4, Op.LH: 2, Op.LHU: 2, Op.SH: 2,
                 Op.LB: 1, Op.LBU: 1, Op.SB: 1}[op]
        self.uses.add("mem_trap")
        lines: list[str] = []
        if base == "0":
            # Constant address: fold the checks away entirely (or into
            # an unconditional trap).
            addr = imm
            if addr % width or not 0 <= addr <= self.ram_size - width:
                return [f"_mem_trap({addr}, {width}, {pc}, "
                        f"cycle + {k}, {kind!r})"]
            at = str(addr)
            idx4, idx2 = str(addr >> 2), str(addr >> 1)
        else:
            lines.append(f"a_ = {base} + ({imm})" if imm
                         else f"a_ = {base}")
            if width == 4:
                guard = f"a_ & 3 or a_ < 0 or a_ > {self.ram_size - 4}"
            elif width == 2:
                guard = f"a_ & 1 or a_ < 0 or a_ > {self.ram_size - 2}"
            else:
                guard = f"a_ < 0 or a_ > {self.ram_size - 1}"
            lines.append(f"if {guard}:")
            lines.append(f"    _mem_trap(a_, {width}, {pc}, "
                         f"cycle + {k}, {kind!r})")
            at, idx4, idx2 = "a_", "a_ >> 2", "a_ >> 1"
        if load:
            if rd == 0:
                return lines  # checks only; the read has no effect
            if op is Op.LW:
                self.uses.add("mv4")
                lines += self._set(rd, f"mv4[{idx4}]", False)
            elif op is Op.LHU:
                self.uses.add("mv2")
                lines += self._set(rd, f"mv2[{idx2}]", False)
            elif op is Op.LBU:
                self.uses.add("ram")
                lines += self._set(rd, f"ram[{at}]", False)
            elif op is Op.LH:
                self.uses.add("mv2")
                lines.append(f"v_ = mv2[{idx2}]")
                lines.append(f"{self._wreg(rd)} = (v_ - 65536) & {_M} "
                             f"if v_ & 32768 else v_")
            else:  # LB
                self.uses.add("ram")
                lines.append(f"v_ = ram[{at}]")
                lines.append(f"{self._wreg(rd)} = (v_ - 256) & {_M} "
                             f"if v_ & 128 else v_")
        else:
            val = self._reg(ins.rs2)
            if op is Op.SW:
                self.uses.add("mv4")
                lines.append(f"mv4[{idx4}] = {val}")
            elif op is Op.SH:
                self.uses.add("mv2")
                sval = "0" if val == "0" else f"{val} & 65535"
                lines.append(f"mv2[{idx2}] = {sval}")
            else:  # SB
                self.uses.add("ram")
                sval = "0" if val == "0" else f"{val} & 255"
                lines.append(f"ram[{at}] = {sval}")
        return lines

    def _body_instr(self, ins, pc: int, k: int) -> list[str]:
        """Source lines for one non-terminal instruction.

        ``pc`` is the instruction's ROM index; ``k`` its offset from the
        block start, so at run time it executes at ``cycle + k`` (with
        ``cycle`` still holding the block-entry count).
        """
        op = ins.op
        if op is Op.NOP:
            return []
        if op is Op.OUT:
            self.uses.add("serial")
            src = self._reg(ins.rs1)
            b = "0" if src == "0" else f"{src} & 255"
            return [
                f"b_ = {b}",
                "serial.append(b_)",
                "if oracle is not None and (len(serial) > _olen or "
                "oracle[len(serial) - 1] != b_):",
                "    M.diverged = True",
                "    M.halted = True",
                f"    pc = {pc + 1}",
                f"    cycle += {k + 1}",
                "    break",
            ]
        if op is Op.DETECT:
            self.uses.add("detect")
            return [f"detections.append((cycle + {k + 1}, {ins.imm}))"]
        if op in (Op.LW, Op.LH, Op.LHU, Op.LB, Op.LBU,
                  Op.SW, Op.SH, Op.SB):
            return self._memory(ins, pc, k)
        return self._alu(ins, pc, k)

    def _branch_cond(self, ins) -> str:
        a, b = self._reg(ins.rs1), self._reg(ins.rs2)
        op = ins.op
        if op is Op.BEQ:
            return f"{a} == {b}"
        if op is Op.BNE:
            return f"{a} != {b}"
        if op is Op.BLT:
            return f"({a} ^ {_SIGN}) < ({b} ^ {_SIGN})"
        if op is Op.BGE:
            return f"({a} ^ {_SIGN}) >= ({b} ^ {_SIGN})"
        if op is Op.BLTU:
            return f"{a} < {b}"
        return f"{a} >= {b}"  # BGEU

    # -- block emission ------------------------------------------------------

    def _emit(self, depth: int, line: str) -> None:
        self.lines.append("    " * depth + line)

    def _emit_lines(self, depth: int, lines: list[str]) -> None:
        for line in lines:
            self._emit(depth, line)

    def _emit_block(self, block: _Block, depth: int) -> None:
        instrs = block.instrs
        length = len(instrs)
        last_pc, last = instrs[-1]
        terminal = last.op in _CONTROL
        body = instrs[:-1] if terminal else instrs

        if block.self_loop:
            self._emit(depth, f"while cycle + {length} <= limit:")
            for k, (pc, ins) in enumerate(body):
                self._emit_lines(depth + 1, self._body_instr(ins, pc, k))
            self._emit(depth + 1, f"cycle += {length}")
            cond = self._branch_cond(last)
            self._emit(depth + 1, f"if {cond}:")
            self._emit(depth + 2, "continue")
            self._emit(depth + 1, f"pc = {last_pc + 1}")
            self._emit(depth + 1, "break")
            self._emit(depth, "else:")
            self._emit(depth + 1, "break")
            self._emit(depth, "continue")
            return

        self._emit(depth, f"if cycle + {length} > limit:")
        self._emit(depth + 1, "break")
        for k, (pc, ins) in enumerate(body):
            self._emit_lines(depth, self._body_instr(ins, pc, k))
        op = last.op if terminal else None
        if op in _BRANCHES:
            cond = self._branch_cond(last)
            target, fall = last.imm, last_pc + 1
            self._emit(depth, f"cycle += {length}")
            if target == fall:
                self._emit(depth, f"pc = {target}")
            else:
                self._emit(depth, f"pc = {target} if {cond} else {fall}")
            self._emit(depth, "continue")
        elif op is Op.JAL:
            self._emit(depth, f"cycle += {length}")
            self._emit_lines(depth, self._set(last.rd, str(last_pc + 1),
                                              False))
            self._emit(depth, f"pc = {last.imm}")
            self._emit(depth, "continue")
        elif op is Op.JALR:
            base = self._reg(last.rs1)
            if base == "0":
                self._emit(depth, f"t_ = {last.imm & _M}")
            else:
                self._emit(depth, f"t_ = ({base} + ({last.imm})) & {_M}")
            self._emit_lines(depth, self._set(last.rd, str(last_pc + 1),
                                              False))
            self._emit(depth, f"cycle += {length}")
            self._emit(depth, "pc = t_")
            self._emit(depth, "continue")
        elif op is Op.HALT:
            self._emit(depth, f"cycle += {length}")
            self._emit(depth, f"pc = {last_pc + 1}")
            self._emit(depth, "M.halted = True")
            self._emit(depth, "break")
        else:
            # Fallthrough into the next leader, or off the end of ROM
            # (the driver turns pc == len(rom) into a clean halt).
            self._emit(depth, f"cycle += {length}")
            self._emit(depth, f"pc = {last_pc + 1}")
            if last_pc + 1 < len(self.program.rom):
                self._emit(depth, "continue")
            else:
                self._emit(depth, "break")

    def _emit_tree(self, blocks: list[_Block], depth: int) -> None:
        """Binary dispatch on ``pc`` over the sorted block leaders."""
        if len(blocks) <= 3:
            for j, block in enumerate(blocks):
                kw = "if" if j == 0 else "elif"
                self._emit(depth, f"{kw} pc == {block.start}:")
                self._emit_block(block, depth + 1)
            self._emit(depth, "else:")
            self._emit(depth + 1, "break")
            return
        mid = len(blocks) // 2
        self._emit(depth, f"if pc < {blocks[mid].start}:")
        self._emit_tree(blocks[:mid], depth + 1)
        self._emit(depth, "else:")
        self._emit_tree(blocks[mid:], depth + 1)

    # -- whole-function emission ---------------------------------------------

    def generate(self) -> CompiledCode:
        blocks = _find_blocks(self.program.rom, self.program.entry)
        self.lines = []
        if blocks:
            self._emit_tree(blocks, 3)
        else:
            self._emit(3, "break")
        tree = self.lines

        head = ["def _jit(M, limit):"]
        head.append("    regs = M.regs")
        if "ram" in self.uses:
            head.append("    ram = M.ram")
        if "mv4" in self.uses:
            head.append("    mv4 = M._mv4")
        if "mv2" in self.uses:
            head.append("    mv2 = M._mv2")
        if "serial" in self.uses:
            head.append("    serial = M.serial")
            head.append("    oracle = M.oracle")
            head.append("    _olen = M._olen")
        if "detect" in self.uses:
            head.append("    detections = M.detections")
        regs = sorted(self.used_regs)
        for r in regs:
            head.append(f"    r{r} = regs[{r}]")
        head.append("    cycle = M.cycle")
        head.append("    pc = M.pc")
        head.append("    try:")
        head.append("        while True:")
        tail = [
            "    except _CPUError as e:",
            "        pc = e.pc + 1",
            "        cycle = e.cycle",
            "        M.halted = True",
            "        raise",
            "    except BaseException:",
            "        M.halted = True",
            "        raise",
            "    finally:",
        ]
        for r in regs:
            tail.append(f"        regs[{r}] = r{r}")
        tail.append("        M.pc = pc")
        tail.append("        M.cycle = cycle")
        source = "\n".join(head + tree + tail) + "\n"
        namespace = {
            "_CPUError": CPUException,
            "_mem_trap": _mem_trap,
            "_div_trap": _div_trap,
        }
        code = compile(source, "<repro-jit>", "exec")
        exec(code, namespace)
        return CompiledCode(run_fn=namespace["_jit"],
                            leaders=frozenset(b.start for b in blocks),
                            source=source)


def compile_program(program: Program) -> CompiledCode | None:
    """Generate the superblock function for ``program``.

    Returns ``None`` on big-endian hosts, where the ``memoryview`` casts
    would read the wrong byte order; the machine then runs entirely on
    the interpreter path.
    """
    if sys.byteorder != "little":  # pragma: no cover - exotic hosts
        return None
    return _Codegen(program).generate()


class CompiledMachine(Machine):
    """Drop-in :class:`Machine` running generated superblocks.

    Everything observable — state, digests, traps, snapshots, serial,
    detections, cycle counts — is bit-identical to the interpreter; the
    per-instruction handlers remain available and are used for golden
    recording (``tracer``), mid-block entry points and budget tails.
    """

    def __init__(self, program: Program, *, tracer=None, oracle=None):
        super().__init__(program, tracer=tracer, oracle=oracle)
        self._jit = compile_program(program)

    # -- lifecycle: keep the RAM views in sync with the buffer ---------------

    def reset(self) -> None:
        super().reset()
        self._rebuild_views()

    def restore(self, state) -> None:
        super().restore(state)
        self._rebuild_views()

    def _rebuild_views(self) -> None:
        # ``cast`` needs a length divisible by the item size; RAM never
        # resizes, so slicing to the aligned prefix once per (re)build
        # is safe.  Aligned in-bounds accesses never reach past it.
        ram = self.ram
        self._mv4 = memoryview(ram)[:len(ram) & ~3].cast("I")
        self._mv2 = memoryview(ram)[:len(ram) & ~1].cast("H")
        oracle = self.oracle
        self._olen = len(oracle) if oracle is not None else 0

    # -- execution -----------------------------------------------------------

    def _run_until(self, limit: int) -> None:
        jit = getattr(self, "_jit", None)
        if jit is None or self.tracer is not None:
            # Golden recording wants the traced per-access hooks; exotic
            # hosts have no JIT artifact at all.
            super()._run_until(limit)
            return
        run_fn = jit.run_fn
        leaders = jit.leaders
        exec_rom = self._exec
        rom_len = len(exec_rom)
        while not self.halted:
            cycle = self.cycle
            if cycle >= limit:
                break
            pc = self.pc
            if 0 <= pc < rom_len:
                if pc in leaders and self._stuck is None:
                    # Generated blocks inline their stores (memoryview
                    # writes), which would bypass the stuck-at release
                    # hook in ``_store_raw`` — so an armed latch pins
                    # execution to the interpreter path until the
                    # releasing store clears it.
                    run_fn(self, limit)
                    if self.halted or self.cycle != cycle:
                        continue
                # Mid-block pc (snapshot restore, jalr into a block
                # body) or a block that does not fit the remaining
                # budget: one interpreter step, then try again.
                handler, instr = exec_rom[pc]
                self.pc = pc + 1
                try:
                    handler(instr)
                except HaltedMachine:
                    raise
                except Exception:
                    self.halted = True
                    raise
                self.cycle = cycle + 1
            elif pc == rom_len:
                self.halted = True
            else:
                self.halted = True
                raise IllegalPC(f"pc {pc} outside ROM", pc=pc, cycle=cycle)
