"""Plain-text report rendering for campaign results and paper figures."""

from __future__ import annotations

from collections import Counter

from ..campaign.database import CampaignSummary
from ..campaign.journal import ExecutionReport
from ..campaign.runner import CampaignResult
from .figures import Fig2Series, fig2_verdicts, fig3_data, table1_data


def format_table(headers: list[str], rows: list[list], *,
                 title: str = "") -> str:
    """Render an aligned plain-text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in cells))
              if cells else len(headers[i]) for i in range(len(headers))]
    sep = "  "
    out = []
    if title:
        out.append(title)
    out.append(sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep.join("-" * w for w in widths))
    for row in cells:
        out.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def table1_report() -> str:
    """Table I rendered as text."""
    rows = [[row["k"], f"{row['probability']:.6g}"]
            for row in table1_data()]
    return format_table(["k", "P(k faults)"], rows,
                        title="Table I: Poisson fault-count probabilities "
                              "(g from published FIT rates, Δt=1s, "
                              "Δm=2^20 bit)")


def fig2_report(series: list[Fig2Series]) -> str:
    """Figure 2 panels (a)(b)(d)(e)(g) as one table."""
    rows = [[
        s.variant,
        f"{100 * s.coverage_unweighted:.2f}%",
        f"{100 * s.coverage_weighted:.2f}%",
        f"{s.failures_unweighted:.0f}",
        f"{s.failures_weighted:.0f}",
        s.runtime_cycles,
        s.memory_bytes,
    ] for s in series]
    return format_table(
        ["variant", "cov (a, unweighted)", "cov (b, weighted)",
         "F (d, unweighted)", "F (e, weighted)", "Δt cycles", "Δm bytes"],
        rows, title="Figure 2: coverage and failure counts, with and "
                    "without Pitfall 1/3 avoidance")


def fig3_report(summaries: dict[str, CampaignSummary]) -> str:
    rows = [[
        r["variant"], r["cycles"], r["memory_bits"],
        r["fault_space_size"], f"{100 * r['coverage']:.1f}%",
        f"{r['failures']:.0f}",
    ] for r in fig3_data(summaries)]
    return format_table(
        ["variant", "Δt", "Δm bits", "w", "coverage", "F"],
        rows, title="Figure 3 / Section IV: the fault-space dilution "
                    "delusion")


def verdict_report(baseline: CampaignSummary, hardened: CampaignSummary,
                   name: str) -> str:
    data = fig2_verdicts(baseline, hardened, name)
    lines = [
        f"benchmark {name}:",
        f"  sound comparison ratio r = {data['ratio']:.3f} "
        f"({'improves' if data['ratio'] < 1 else 'worsens' if data['ratio'] > 1 else 'unchanged'})",
        f"  unweighted failure ratio (pitfall 1): "
        f"{data['unweighted_ratio']:.3f}",
        f"  weighted coverage delta (pitfall 3): "
        f"{data['coverage_delta_weighted_pp']:+.2f} pp",
        f"  unweighted coverage delta (pitfalls 1+3): "
        f"{data['coverage_delta_unweighted_pp']:+.2f} pp",
    ]
    if data["misleading_metrics"]:
        lines.append("  misleading here: "
                     + ", ".join(data["misleading_metrics"]))
    return "\n".join(lines)


def outcome_histogram(result: CampaignResult) -> str:
    """Weighted outcome distribution of one campaign as a text table."""
    counts = result.weighted_counts()
    total = sum(counts.values())
    rows = [[outcome.value, count, f"{100 * count / total:.3f}%"]
            for outcome, count in counts.most_common()]
    return format_table(["outcome", "weight", "share"], rows,
                        title=f"{result.golden.program.name}: weighted "
                              f"outcome distribution "
                              f"({result.domain.name} faults)")


def completeness_report(report: ExecutionReport) -> str:
    """Render an :class:`~repro.campaign.journal.ExecutionReport` as text.

    Summarizes how the campaign actually ran: fresh vs. journal-resumed
    work units, wall-clock shard timeouts, worker retries and — for a
    degraded campaign — how much of the planned fault space the partial
    result covers.
    """
    lines = [f"execution: {report.total_units} work units — "
             f"{report.executed} executed, {report.resumed} resumed "
             f"from journal"]
    if report.timed_out_shards:
        lines.append(
            f"  wall-clock timeouts: {report.timed_out_shards} shard(s); "
            f"{report.synthesized_timeouts} experiment(s) classified "
            f"as timeout")
    if report.shard_retries:
        lines.append(f"  worker retries: {report.shard_retries}")
    if report.convergence_hits:
        lines.append(
            f"  convergence early-exits: {report.convergence_hits} "
            f"experiment(s) classified at a golden checkpoint")
    if report.slice_hits:
        lines.append(
            f"  criticality pre-skips: {report.slice_hits} "
            f"experiment(s) classified without execution")
    if report.scalar_tail_experiments:
        lines.append(
            f"  batch scalar tails: {report.scalar_tail_experiments} "
            f"experiment(s) finished on the scalar tier after lane "
            f"eviction")
    if report.composed_hits:
        lines.append(
            f"  composed from section store: {report.composed_hits} "
            f"experiment(s) reused from cached sections")
    if report.failed_shards:
        lines.append(f"  shards abandoned after retry budget: "
                     f"{report.failed_shards}")
    if report.integrity_rejected:
        lines.append(
            f"  integrity rejections: {report.integrity_rejected} "
            f"result frame(s) refused (CRC or shape)")
    if report.crosschecked:
        line = (f"  cross-checked: {report.crosschecked} class(es) "
                f"re-executed on a second worker")
        if report.crosscheck_mismatches:
            line += f"; {report.crosscheck_mismatches} mismatch(es)"
        if report.crosscheck_unverified:
            line += (f"; {report.crosscheck_unverified} left "
                     f"unverified (no second worker)")
        lines.append(line)
    if report.discarded_results:
        lines.append(
            f"  discarded and re-queued: {report.discarded_results} "
            f"journaled class(es) (byzantine rollback or salvage)")
    if report.quarantined_workers:
        lines.append(
            f"  quarantined workers: "
            f"{', '.join(report.quarantined_workers)}")
    if report.poison_splits or report.poison_keys:
        keys = ", ".join(str(list(key)) for key in report.poison_keys)
        lines.append(
            f"  poison-shard hunt: {report.poison_splits} bisection(s)"
            + (f"; poisonous key(s): {keys}" if keys else ""))
    if report.workers:
        attribution = ", ".join(f"{name}: {units}"
                                for name, units in report.workers)
        lines.append(f"  distributed across {len(report.workers)} "
                     f"worker(s) — {attribution}")
    if report.complete:
        lines.append("  complete: all planned units accounted for")
    else:
        lines.append(
            f"  INCOMPLETE: {len(report.missing)} unit(s) missing, "
            f"completeness {100 * report.completeness:.1f}% — rerun "
            f"with the same journal to finish")
    return "\n".join(lines)


def failure_attribution(result: CampaignResult, *,
                        top: int = 10) -> list[tuple[str, int]]:
    """Attribute weighted failure counts to fault locations by label.

    Returns ``(label, weight)`` pairs, heaviest first — the analysis
    behind the "which data actually fails" discussions.  Memory-domain
    results attribute to the program's data labels; register-domain
    results attribute to register names (``r1`` ... ``r15``).
    """
    program = result.golden.program
    if result.domain.name == "memory":
        labels = sorted(program.data_labels.items(), key=lambda kv: kv[1])

        def region_of(addr: int) -> str:
            best = "(unlabelled)"
            for name, label_addr in labels:
                if label_addr <= addr:
                    best = name
                else:
                    break
            return best
    else:
        def region_of(axis: int) -> str:
            return f"r{axis}"

    axis_of = result.domain.axis_of
    weights: Counter = Counter()
    for interval, outcomes in result.class_records():
        failing_bits = sum(1 for o in outcomes if o.is_failure)
        if failing_bits:
            weights[region_of(axis_of(interval))] += \
                interval.length * failing_bits
    return weights.most_common(top)
