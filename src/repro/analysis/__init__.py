"""Analysis: figure/table data generators and plain-text reports."""

from .figures import (
    Fig2Series,
    fig1_data,
    fig2_data,
    fig2_verdicts,
    fig3_data,
    render_fault_space,
    table1_data,
)
from .report import (
    completeness_report,
    failure_attribution,
    fig2_report,
    fig3_report,
    format_table,
    outcome_histogram,
    table1_report,
    verdict_report,
)

__all__ = [
    "Fig2Series",
    "completeness_report",
    "failure_attribution",
    "fig1_data",
    "fig2_data",
    "fig2_report",
    "fig2_verdicts",
    "fig3_data",
    "fig3_report",
    "format_table",
    "outcome_histogram",
    "render_fault_space",
    "table1_data",
    "table1_report",
    "verdict_report",
]
