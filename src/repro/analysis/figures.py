"""Data generators for every table and figure of the paper.

Each ``figN_data``/``tableN_data`` function returns plain dictionaries /
rows so the benchmark harness, the examples and the tests can all share
one implementation.  Rendering is plain text (:mod:`repro.analysis.report`)
— the reproduction reports the same series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..campaign.database import CampaignSummary
from ..campaign.golden import GoldenRun
from ..faultspace.defuse import DefUsePartition, LIVE
from ..faultspace.model import FaultCoordinate
from ..metrics.comparison import comparison_report
from ..metrics.coverage import unweighted_coverage, weighted_coverage
from ..metrics.failure_counts import (
    unweighted_failure_count,
    weighted_failure_count,
)
from ..metrics.poisson import paper_table1_model


def table1_data(max_k: int = 5) -> list[dict]:
    """Table I: Poisson probabilities for k faults hitting one run."""
    model = paper_table1_model()
    return [{"k": k, "probability": p}
            for k, p in model.table_rows(max_k)]


def fig1_data(golden: GoldenRun,
              partition: DefUsePartition | None = None) -> dict:
    """Figure 1: fault-space size vs. def/use-pruned experiment count."""
    if partition is None:
        partition = golden.partition()
    return {
        "program": golden.program.name,
        "cycles": golden.cycles,
        "memory_bits": golden.fault_space.memory_bits,
        "fault_space_size": golden.fault_space.size,
        "experiments": partition.experiment_count,
        "known_no_effect_weight": partition.known_no_effect_weight,
        "reduction_factor": partition.reduction_factor(),
    }


@dataclass(frozen=True)
class Fig2Series:
    """One benchmark variant's bars across all Figure 2 panels."""

    variant: str
    coverage_unweighted: float   # panel (a)
    coverage_weighted: float     # panel (b)
    failures_unweighted: float   # panel (d)
    failures_weighted: float     # panel (e)
    runtime_cycles: int          # panel (g)
    memory_bytes: int            # panel (g)

    @classmethod
    def from_summary(cls, summary: CampaignSummary) -> "Fig2Series":
        return cls(
            variant=summary.program_name,
            coverage_unweighted=unweighted_coverage(summary),
            coverage_weighted=weighted_coverage(summary),
            failures_unweighted=unweighted_failure_count(summary).total,
            failures_weighted=weighted_failure_count(summary).total,
            runtime_cycles=summary.cycles,
            memory_bytes=summary.ram_bytes,
        )


def fig2_data(summaries: dict[str, CampaignSummary]) -> list[Fig2Series]:
    """Figure 2 panels (a), (b), (d), (e), (g) for the given variants."""
    return [Fig2Series.from_summary(summary)
            for summary in summaries.values()]


def fig2_verdicts(baseline: CampaignSummary,
                  hardened: CampaignSummary, name: str) -> dict:
    """The design-decision story of Figure 2: per-metric verdicts and the
    sound comparison ratio."""
    report = comparison_report(name, baseline, hardened)
    return {
        "benchmark": name,
        "ratio": report.ratio,
        "unweighted_ratio": report.unweighted_ratio,
        "coverage_delta_weighted_pp": report.coverage_delta_weighted,
        "coverage_delta_unweighted_pp": report.coverage_delta_unweighted,
        "verdicts": report.verdicts(),
        "misleading_metrics": report.misleading_metrics(),
    }


def fig3_data(scans: dict[str, CampaignSummary]) -> list[dict]:
    """Figure 3 / Section IV: the dilution-delusion table."""
    rows = []
    for name, summary in scans.items():
        rows.append({
            "variant": name,
            "cycles": summary.cycles,
            "memory_bits": summary.ram_bytes * 8,
            "fault_space_size": summary.fault_space_size,
            "coverage": weighted_coverage(summary),
            "failures": weighted_failure_count(summary).total,
        })
    return rows


def render_fault_space(golden: GoldenRun, *, max_cycles: int = 64,
                       max_bytes: int = 8) -> str:
    """ASCII rendering of a (small) fault space, à la Figure 1/3.

    One row per memory byte (all eight bits share the byte's def/use
    structure), one column per cycle: ``W``/``R`` mark accesses, ``#``
    live coordinates (an experiment class covers them), ``.`` dead
    coordinates known a priori to be "No Effect".
    """
    partition = golden.partition()
    cycles = min(golden.cycles, max_cycles)
    ram_bytes = min(golden.program.ram_size, max_bytes)
    lines = [
        "cycle     " + "".join(f"{c % 10}" for c in range(1, cycles + 1))]
    for addr in range(ram_bytes):
        cells = []
        access = {e.slot: e for e in golden.trace.accesses(addr)}
        for slot in range(1, cycles + 1):
            if slot in access:
                cells.append("W" if access[slot].is_write else "R")
            else:
                interval = partition.locate(
                    FaultCoordinate(slot=slot, addr=addr, bit=0))
                cells.append("#" if interval.kind == LIVE else ".")
        lines.append(f"byte {addr:4d} " + "".join(cells))
    if golden.cycles > max_cycles or golden.program.ram_size > max_bytes:
        lines.append(f"(truncated to {max_cycles} cycles x "
                     f"{max_bytes} bytes)")
    return "\n".join(lines)
