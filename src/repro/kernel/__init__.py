"""Cooperative threading kernel substrate (the eCos-analog)."""

from .builder import (
    DEFAULT_STACK_BYTES,
    KernelBuildError,
    KernelBuilder,
    TCB_WORDS,
)

__all__ = [
    "DEFAULT_STACK_BYTES",
    "KernelBuildError",
    "KernelBuilder",
    "TCB_WORDS",
]
