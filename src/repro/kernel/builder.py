"""A cooperative threading mini-kernel, generated as assembly.

This is the reproduction's substrate for the paper's eCos kernel-test
benchmarks: a small run-to-completion kernel with

* static threads with per-thread stacks and saved contexts (TCBs),
* a round-robin cooperative scheduler (``call __yield``),
* counting/binary semaphores, mutexes and event flags implemented as
  wait-loops around the scheduler,

all emitted as assembly for the project's RISC machine by
:class:`KernelBuilder`.  Passing ``protect=True`` applies the SUM+DMR
mechanism to all *kernel* objects — the current-thread word, every TCB,
and every synchronization object — mirroring the paper's hardening of
critical, long-lived data.  Application data (shared words, buffers) is
protected only on request; thread stacks are never protected.

Register conventions baked into the generated code:

==========  ==============================================================
r0          hardwired zero
r1–r7       thread context: saved/restored across ``__yield``; r1 (and
            r2) double as argument/result registers for kernel calls
r8          thread context, reserved: blocking kernel calls stash their
            return address here so it lives in the (protectable) TCB
            across yields rather than on the unprotected stack
r9          kernel temporary (clobbered by any kernel call)
r10–r13     guard scratch (clobbered by any kernel call; SUM+DMR/TMR)
r14 (ra)    link register
r15 (sp)    stack pointer (per-thread stacks)
==========  ==============================================================

Kernel subroutines never nest calls except the blocking primitives,
which stash ``ra`` in r8 around their ``call __yield``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardening.checksum import WORD
from ..hardening.sumdmr import ProtectedObject, SumDmrEmitter
from ..isa.assembler import Program, assemble

#: Words per thread control block: resume pc, sp, r1..r8 (the saved
#: context) plus reserved kernel bookkeeping space (priority, state,
#: wait-info, name — present in any real kernel's TCB and covered by the
#: object protection even though the scheduler fast path does not touch
#: it).
TCB_WORDS = 16
#: Of those, the first CONTEXT_WORDS hold the saved context.
CONTEXT_WORDS = 10
#: Words per synchronization object: count/bits, operation counter,
#: last-operating thread id, magic.
SYNC_WORDS = 4
#: Magic value marking initialized kernel sync objects.
SYNC_MAGIC = 0x5AFE
#: Default per-thread stack size in bytes.
DEFAULT_STACK_BYTES = 64


class KernelBuildError(ValueError):
    """The kernel specification is inconsistent."""


@dataclass
class _SyncObject:
    name: str
    kind: str  # "semaphore" | "mutex" | "flag"
    initial: int
    protected: bool


@dataclass
class _DataObject:
    name: str
    kind: str  # "word" | "buffer"
    n_words: int
    init: list[int]
    protected: bool


@dataclass
class _Thread:
    tid: int
    body: list[str] = field(default_factory=list)


class KernelBuilder:
    """Builds a complete threaded benchmark program.

    Typical use::

        kb = KernelBuilder(n_threads=2, protect=False)
        kb.add_semaphore("semA", initial=0)
        kb.set_thread_body(0, ["..."], main=True)
        kb.set_thread_body(1, ["..."])
        program = kb.build("bin_sem2")

    Thread 0 is started first; exactly one thread (the *main* thread)
    must end its body with ``halt`` — the builder appends an idle loop to
    every body so non-main threads that fall off their end keep yielding
    until the main thread halts the machine.
    """

    #: Guard granularities: "access" re-checks the object immediately
    #: before every member read group and refreshes it after every
    #: member write group (the GOP style — tighter windows, higher
    #: cost); "op" checks once at operation entry and updates once at
    #: exit (cheaper, larger residual windows).
    GRANULARITIES = ("access", "op")

    def __init__(self, n_threads: int, *, protect: bool = False,
                 stack_bytes: int = DEFAULT_STACK_BYTES,
                 sched_stats: bool = True,
                 guard_granularity: str = "access"):
        if n_threads < 1:
            raise KernelBuildError("need at least one thread")
        if stack_bytes < 8 or stack_bytes % WORD:
            raise KernelBuildError(
                "stack_bytes must be a word multiple >= 8")
        if guard_granularity not in self.GRANULARITIES:
            raise KernelBuildError(
                f"guard_granularity must be one of {self.GRANULARITIES}")
        self.n_threads = n_threads
        self.protect = protect
        self.stack_bytes = stack_bytes
        self.guard_granularity = guard_granularity
        #: Kernel instrumentation (as in eCos): a context-switch counter
        #: plus one switch-out counter per thread, updated on every
        #: yield.  Protected along with the other kernel objects.
        self.sched_stats = sched_stats
        self._sync: list[_SyncObject] = []
        self._data: list[_DataObject] = []
        self._threads = [_Thread(tid=i) for i in range(n_threads)]
        self._names: set[str] = set()
        self._emitter = SumDmrEmitter()

    # -- specification API -----------------------------------------------------

    def _claim_name(self, name: str) -> None:
        if not name or not name[0].isalpha():
            raise KernelBuildError(f"bad object name {name!r}")
        if name in self._names:
            raise KernelBuildError(f"duplicate object name {name!r}")
        self._names.add(name)

    def add_semaphore(self, name: str, *, initial: int = 0,
                      protected: bool | None = None) -> None:
        """A counting semaphore with ``<name>_wait``/``<name>_post``."""
        if initial < 0:
            raise KernelBuildError("semaphore initial count must be >= 0")
        self._claim_name(name)
        self._sync.append(_SyncObject(
            name=name, kind="semaphore", initial=initial,
            protected=self.protect if protected is None else protected))

    def add_mutex(self, name: str, *,
                  protected: bool | None = None) -> None:
        """A mutex with ``<name>_lock``/``<name>_unlock``."""
        self._claim_name(name)
        self._sync.append(_SyncObject(
            name=name, kind="mutex", initial=1,
            protected=self.protect if protected is None else protected))

    def add_flag(self, name: str, *,
                 protected: bool | None = None) -> None:
        """An event-flag word with ``<name>_set``/``<name>_wait``.

        ``<name>_set`` ORs the mask in r1 into the flag word;
        ``<name>_wait`` blocks until all mask bits in r1 are set, then
        atomically clears them.
        """
        self._claim_name(name)
        self._sync.append(_SyncObject(
            name=name, kind="flag", initial=0,
            protected=self.protect if protected is None else protected))

    def add_word(self, name: str, *, init: int = 0,
                 protected: bool = False) -> None:
        """A shared word with ``<name>_load``/``<name>_store`` (r1)."""
        self._claim_name(name)
        self._data.append(_DataObject(
            name=name, kind="word", n_words=1, init=[init],
            protected=protected))

    def add_buffer(self, name: str, n_words: int, *,
                   init: list[int] | None = None,
                   protected: bool = False) -> None:
        """A shared word array with ``<name>_get`` (r1=idx → r1) and
        ``<name>_put`` (r1=idx, r2=value)."""
        if n_words < 1:
            raise KernelBuildError("buffer needs at least one word")
        init = list(init) if init is not None else [0] * n_words
        if len(init) != n_words:
            raise KernelBuildError(
                f"buffer {name!r}: {len(init)} initializers for "
                f"{n_words} words")
        self._claim_name(name)
        self._data.append(_DataObject(
            name=name, kind="buffer", n_words=n_words, init=init,
            protected=protected))

    def set_thread_body(self, tid: int, lines: list[str]) -> None:
        """Set a thread's body (assembly lines, entry at the top)."""
        if not 0 <= tid < self.n_threads:
            raise KernelBuildError(f"thread id {tid} out of range")
        if self._threads[tid].body:
            raise KernelBuildError(f"thread {tid} body already set")
        self._threads[tid].body = list(lines)

    # -- generation --------------------------------------------------------------

    @property
    def _stats_words(self) -> int:
        """Scheduler statistics object size: total + one per thread."""
        return self.n_threads + 1

    @property
    def tcb_stride(self) -> int:
        """Bytes between consecutive TCBs."""
        words = 2 * TCB_WORDS + 1 if self.protect else TCB_WORDS
        return words * WORD

    def build(self, name: str) -> Program:
        """Assemble the complete program, sized exactly to its data."""
        for thread in self._threads:
            if not thread.body:
                raise KernelBuildError(
                    f"thread {thread.tid} has no body")
        source = self.generate_source()
        # Assemble twice: first to learn the data size, then with the
        # RAM footprint Δm set to exactly that size.
        probe = assemble(source, name=name, ram_size=1 << 20)
        ram_size = len(probe.data)
        return assemble(source, name=name, ram_size=ram_size)

    def generate_source(self) -> str:
        lines: list[str] = []
        lines += self._emit_equs()
        lines.append("        .data")
        lines += self._emit_data()
        lines.append("        .text")
        lines += self._emit_start()
        lines += self._emit_yield()
        for sync in self._sync:
            lines += self._emit_sync_routines(sync)
        for data in self._data:
            lines += self._emit_data_routines(data)
        for thread in self._threads:
            lines += self._emit_thread(thread)
        return "\n".join(lines) + "\n"

    # -- data segment -------------------------------------------------------------

    def _emit_equs(self) -> list[str]:
        return [
            f"        .equ __NTHREADS, {self.n_threads}",
            f"        .equ __TCB_STRIDE, {self.tcb_stride}",
            f"        .equ __STACK_BYTES, {self.stack_bytes}",
        ]

    def _protected(self, name: str, n_words: int) -> ProtectedObject:
        return ProtectedObject(name=name, n_words=n_words)

    def _emit_data(self) -> list[str]:
        lines: list[str] = []
        # Current thread id.
        if self.protect:
            lines += self._emitter.data_lines(
                self._protected("__cur", 1), [0])
        else:
            lines.append("__cur:  .word 0")
        # TCB array (thread i's TCB labelled __tcb{i}).
        lines.append("        .align 4")
        lines.append("__tcbs:")
        for tid in range(self.n_threads):
            if self.protect:
                lines += self._emitter.data_lines(
                    self._protected(f"__tcb{tid}", TCB_WORDS),
                    [0] * TCB_WORDS)
            else:
                zeros = ", ".join(["0"] * TCB_WORDS)
                lines.append(f"__tcb{tid}: .word {zeros}")
        # Scheduler statistics: total switches + per-thread counters.
        if self.sched_stats:
            n = self._stats_words
            if self.protect:
                lines += self._emitter.data_lines(
                    self._protected("__sched_stats", n), [0] * n)
            else:
                zeros = ", ".join(["0"] * n)
                lines.append(f"__sched_stats: .word {zeros}")
        # Sync objects: count/bits, op counter, last thread id, magic.
        for sync in self._sync:
            init = [sync.initial, 0, 0, SYNC_MAGIC]
            if sync.protected:
                lines += self._emitter.data_lines(
                    self._protected(sync.name, SYNC_WORDS), init)
            else:
                words = ", ".join(str(v) for v in init)
                lines.append(f"{sync.name}: .word {words}")
        # Application data.
        for data in self._data:
            if data.protected:
                lines += self._emitter.data_lines(
                    self._protected(data.name, data.n_words), data.init)
            else:
                words = ", ".join(str(v & 0xFFFFFFFF) for v in data.init)
                lines.append(f"{data.name}: .word {words}")
        # Thread stacks (never protected — matches the paper's selective
        # protection of long-lived critical kernel data).
        for tid in range(self.n_threads):
            lines.append(f"__stack{tid}: .space __STACK_BYTES")
        return lines

    # -- guard helpers -----------------------------------------------------------

    def _check(self, name: str, n_words: int, protected: bool,
               base: str | None = None) -> list[str]:
        if not protected:
            return []
        return self._emitter.emit_check(self._protected(name, n_words),
                                        base=base)

    def _update(self, name: str, n_words: int, protected: bool,
                base: str | None = None) -> list[str]:
        if not protected:
            return []
        return self._emitter.emit_update(self._protected(name, n_words),
                                         base=base)

    # -- startup -----------------------------------------------------------------

    def _emit_start(self) -> list[str]:
        lines = ["start:"]
        for tid in range(1, self.n_threads):
            lines += [
                f"        lpc  r1, __thr{tid}_entry",
                f"        sw   r1, __tcb{tid}(zero)",
                f"        li   r2, __stack{tid}+__STACK_BYTES",
                f"        sw   r2, __tcb{tid}+4(zero)",
            ]
            lines += self._update(f"__tcb{tid}", TCB_WORDS, self.protect)
        lines += [
            "        li   sp, __stack0+__STACK_BYTES",
            "        j    __thr0_entry",
        ]
        return lines

    # -- scheduler ----------------------------------------------------------------

    def _emit_yield(self) -> list[str]:
        lines = ["__yield:"]
        # Locate the current TCB (r9 = &tcb[cur]); r10 is scratch.
        lines += self._check("__cur", 1, self.protect)
        lines.append("        lw   r9, __cur(zero)")
        if self.protect:
            lines += [
                "        sltiu r10, r9, __NTHREADS",
                "        bnez r10, __yield_tid_ok",
                f"        detect {0xF1:#x}",
                "        halt",
                "__yield_tid_ok:",
            ]
        lines += [
            "        addi r10, zero, __TCB_STRIDE",
            "        mul  r10, r9, r10",
            "        addi r9, r10, __tcbs",
            # Save the outgoing context: resume pc (= ra), sp, r1..r8.
            "        sw   ra, 0(r9)",
            "        sw   sp, 4(r9)",
        ]
        for reg in range(1, 9):
            lines.append(f"        sw   r{reg}, {4 + 4 * reg}(r9)")
        lines += self._update("__tcb", TCB_WORDS, self.protect, base="r9")
        # Kernel instrumentation: bump the total and per-thread switch
        # counters (the outgoing context is saved, so r1-r8 are free).
        per_access = self.guard_granularity == "access"
        if self.sched_stats:
            lines += self._check("__sched_stats", self._stats_words,
                                 self.protect)
            lines += [
                "        lw   r3, __sched_stats(zero)",
                "        addi r3, r3, 1",
                "        sw   r3, __sched_stats(zero)",
            ]
            if per_access:
                lines += self._check("__cur", 1, self.protect)
            lines += [
                "        lw   r4, __cur(zero)",
                "        slli r4, r4, 2",
                "        lw   r3, __sched_stats+4(r4)",
                "        addi r3, r3, 1",
                "        sw   r3, __sched_stats+4(r4)",
            ]
            lines += self._update("__sched_stats", self._stats_words,
                                  self.protect)
        # Advance to the next thread, round-robin.
        if per_access:
            lines += self._check("__cur", 1, self.protect)
        lines += [
            "        lw   r1, __cur(zero)",
            "        addi r1, r1, 1",
            "        addi r2, zero, __NTHREADS",
            "        bltu r1, r2, __yield_nowrap",
            "        addi r1, zero, 0",
            "__yield_nowrap:",
            "        sw   r1, __cur(zero)",
        ]
        lines += self._update("__cur", 1, self.protect)
        lines += [
            "        addi r10, zero, __TCB_STRIDE",
            "        mul  r10, r1, r10",
            "        addi r9, r10, __tcbs",
        ]
        # Verify the incoming context before trusting it.
        lines += self._check("__tcb", TCB_WORDS, self.protect, base="r9")
        lines += [
            "        lw   ra, 0(r9)",
            "        lw   sp, 4(r9)",
        ]
        for reg in range(1, 9):
            lines.append(f"        lw   r{reg}, {4 + 4 * reg}(r9)")
        lines.append("        jr   ra")
        return lines

    # -- synchronization primitives --------------------------------------------------

    def _emit_sync_routines(self, sync: _SyncObject) -> list[str]:
        if sync.kind in ("semaphore", "mutex"):
            wait = f"{sync.name}_lock" if sync.kind == "mutex" \
                else f"{sync.name}_wait"
            post = f"{sync.name}_unlock" if sync.kind == "mutex" \
                else f"{sync.name}_post"
            return self._emit_semaphore(sync, wait_label=wait,
                                        post_label=post)
        if sync.kind == "flag":
            return self._emit_flag(sync)
        raise AssertionError(sync.kind)  # pragma: no cover

    def _bookkeeping(self, sync: _SyncObject) -> list[str]:
        """Maintain a sync object's op counter and last-thread-id fields.

        In access granularity the bookkeeping group gets its own
        check/update pair, and the read of the (protected) current-thread
        word is re-checked as well.
        """
        name = sync.name
        per_access = self.guard_granularity == "access"
        lines: list[str] = []
        if per_access:
            lines += self._check(name, SYNC_WORDS, sync.protected)
        lines += [
            f"        lw   r9, {name}+4(zero)",
            "        addi r9, r9, 1",
            f"        sw   r9, {name}+4(zero)",
        ]
        if per_access:
            lines += self._check("__cur", 1, self.protect)
        lines += [
            "        lw   r9, __cur(zero)",
            f"        sw   r9, {name}+8(zero)",
        ]
        lines += self._update(name, SYNC_WORDS, sync.protected)
        return lines

    def _emit_semaphore(self, sync: _SyncObject, *, wait_label: str,
                        post_label: str) -> list[str]:
        name = sync.name
        per_access = self.guard_granularity == "access"
        lines = [
            f"{wait_label}:",
            # Stash the return address in context register r8: across the
            # blocking yields it then lives in the TCB, which the hardened
            # kernel protects (critical control data in protected storage).
            "        addi r8, ra, 0",
            f"__{name}_wait_loop:",
        ]
        lines += self._check(name, SYNC_WORDS, sync.protected)
        lines += [
            f"        lw   r9, {name}(zero)",
            f"        bnez r9, __{name}_wait_take",
            "        call __yield",
            f"        j    __{name}_wait_loop",
            f"__{name}_wait_take:",
            "        addi r9, r9, -1",
            f"        sw   r9, {name}(zero)",
        ]
        if per_access:
            lines += self._update(name, SYNC_WORDS, sync.protected)
        lines += self._bookkeeping(sync)
        lines += [
            "        jr   r8",
            f"{post_label}:",
        ]
        lines += self._check(name, SYNC_WORDS, sync.protected)
        lines += [
            f"        lw   r9, {name}(zero)",
            "        addi r9, r9, 1",
            f"        sw   r9, {name}(zero)",
        ]
        if per_access:
            lines += self._update(name, SYNC_WORDS, sync.protected)
        lines += self._bookkeeping(sync)
        lines.append("        ret")
        return lines

    def _emit_flag(self, sync: _SyncObject) -> list[str]:
        name = sync.name
        per_access = self.guard_granularity == "access"
        lines = [
            f"{name}_set:",
        ]
        lines += self._check(name, SYNC_WORDS, sync.protected)
        lines += [
            f"        lw   r9, {name}(zero)",
            "        or   r9, r9, r1",
            f"        sw   r9, {name}(zero)",
        ]
        if per_access:
            lines += self._update(name, SYNC_WORDS, sync.protected)
        lines += self._bookkeeping(sync)
        lines += [
            "        ret",
            f"{name}_wait:",
            # Return address stashed in context register r8 (see the
            # semaphore wait path for rationale).
            "        addi r8, ra, 0",
            f"__{name}_wait_loop:",
        ]
        lines += self._check(name, SYNC_WORDS, sync.protected)
        lines += [
            f"        lw   r9, {name}(zero)",
            # r10 is free after the check; AND out the awaited bits.
            "        and  r10, r9, r1",
            f"        beq  r10, r1, __{name}_wait_take",
            "        call __yield",
            f"        j    __{name}_wait_loop",
            f"__{name}_wait_take:",
            "        xor  r9, r9, r1",
            f"        sw   r9, {name}(zero)",
        ]
        if per_access:
            lines += self._update(name, SYNC_WORDS, sync.protected)
        lines += self._bookkeeping(sync)
        lines.append("        jr   r8")
        return lines

    # -- application data accessors -----------------------------------------------------

    def _emit_data_routines(self, data: _DataObject) -> list[str]:
        name = data.name
        if data.kind == "word":
            lines = [f"{name}_load:"]
            lines += self._check(name, 1, data.protected)
            lines += [
                f"        lw   r1, {name}(zero)",
                "        ret",
                f"{name}_store:",
                f"        sw   r1, {name}(zero)",
            ]
            lines += self._update(name, 1, data.protected)
            lines.append("        ret")
            return lines
        # Buffer: r1 = word index.
        lines = [f"{name}_get:"]
        lines += self._check(name, data.n_words, data.protected)
        lines += [
            "        slli r9, r1, 2",
            f"        lw   r1, {name}(r9)",
            "        ret",
            f"{name}_put:",
            "        slli r9, r1, 2",
            f"        sw   r2, {name}(r9)",
        ]
        lines += self._update(name, data.n_words, data.protected)
        lines.append("        ret")
        return lines

    # -- threads -----------------------------------------------------------------------

    def _emit_thread(self, thread: _Thread) -> list[str]:
        tid = thread.tid
        lines = [f"__thr{tid}_entry:"]
        lines += [f"        {line}" if not line.rstrip().endswith(":")
                  and not line.startswith((" ", "\t")) else line
                  for line in thread.body]
        lines += [
            f"__thr{tid}_idle:",
            "        call __yield",
            f"        j    __thr{tid}_idle",
        ]
        return lines
