"""Tests for confidence-interval estimators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import record_golden, run_sampling
from repro.metrics import (
    clopper_pearson_interval,
    extrapolated_failure_interval,
    failure_proportion_interval,
    required_samples,
    wald_interval,
    wilson_interval,
)
from repro.programs import hi


class TestIntervalBasics:
    @pytest.mark.parametrize("method", [wald_interval, wilson_interval,
                                        clopper_pearson_interval])
    def test_interval_contains_point_estimate(self, method):
        interval = method(20, 100, 0.95)
        assert interval.contains(0.2)
        assert 0.0 <= interval.low <= interval.high <= 1.0

    @pytest.mark.parametrize("method", [wald_interval, wilson_interval,
                                        clopper_pearson_interval])
    def test_extreme_counts(self, method):
        zero = method(0, 50, 0.95)
        assert zero.low == 0.0
        full = method(50, 50, 0.95)
        assert full.high == 1.0

    def test_higher_confidence_widens(self):
        narrow = wilson_interval(10, 100, 0.80)
        wide = wilson_interval(10, 100, 0.99)
        assert wide.width > narrow.width

    def test_more_samples_narrow(self):
        small = wilson_interval(10, 100, 0.95)
        large = wilson_interval(100, 1000, 0.95)
        assert large.width < small.width

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)

    def test_scaled_interval(self):
        interval = wilson_interval(10, 100, 0.95)
        scaled = interval.scaled(1000)
        assert scaled.low == pytest.approx(interval.low * 1000)
        assert scaled.high == pytest.approx(interval.high * 1000)
        with pytest.raises(ValueError):
            interval.scaled(-1)

    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=100)
    def test_clopper_pearson_contains_wilson_point(self, failures, extra):
        samples = failures + extra
        cp = clopper_pearson_interval(failures, samples, 0.95)
        assert cp.contains(failures / samples)


class TestCampaignIntervals:
    @pytest.fixture(scope="class")
    def sampled(self):
        return run_sampling(record_golden(hi.baseline()), 1000, seed=0)

    def test_proportion_interval_contains_truth(self, sampled):
        # True failure proportion of Hi is 48/128 = 0.375.
        interval = failure_proportion_interval(sampled, 0.99)
        assert interval.contains(0.375)

    def test_extrapolated_interval_contains_true_f(self, sampled):
        interval = extrapolated_failure_interval(sampled, 0.99)
        assert interval.contains(48)

    def test_method_selection(self, sampled):
        for method in ("wald", "wilson", "clopper-pearson"):
            interval = failure_proportion_interval(sampled, 0.95,
                                                   method=method)
            assert 0.0 <= interval.low <= interval.high <= 1.0
        with pytest.raises(ValueError, match="unknown method"):
            failure_proportion_interval(sampled, 0.95, method="magic")


class TestSamplePlanning:
    def test_required_samples_monotone_in_precision(self):
        loose = required_samples(0.3, half_width=0.05)
        tight = required_samples(0.3, half_width=0.01)
        assert tight > loose

    def test_known_textbook_value(self):
        # p=0.5, ±0.03 at 95% needs ~1068 samples.
        assert required_samples(0.5, half_width=0.03) == \
            pytest.approx(1068, abs=3)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            required_samples(1.5, half_width=0.1)
        with pytest.raises(ValueError):
            required_samples(0.5, half_width=0)
