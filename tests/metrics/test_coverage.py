"""Tests for the fault-coverage metric variants."""

import pytest

from repro.campaign import CampaignSummary, record_golden, run_full_scan, \
    run_sampling
from repro.metrics import (
    activated_only_coverage,
    coverage_from_counts,
    sampled_coverage,
    unweighted_coverage,
    weighted_coverage,
)
from repro.programs import hi


@pytest.fixture(scope="module")
def hi_scan():
    return run_full_scan(record_golden(hi.baseline()))


class TestCoverageFromCounts:
    def test_basic(self):
        assert coverage_from_counts(48, 128) == pytest.approx(0.625)

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            coverage_from_counts(5, 0)
        with pytest.raises(ValueError):
            coverage_from_counts(-1, 10)
        with pytest.raises(ValueError):
            coverage_from_counts(11, 10)


class TestCoverageVariants:
    def test_weighted_coverage_of_hi_is_paper_value(self, hi_scan):
        assert weighted_coverage(hi_scan) == pytest.approx(0.625)

    def test_accepts_summary_and_result(self, hi_scan):
        summary = CampaignSummary.from_result(hi_scan)
        assert weighted_coverage(summary) == weighted_coverage(hi_scan)
        assert unweighted_coverage(summary) == unweighted_coverage(hi_scan)

    def test_unweighted_uses_experiment_counts(self, hi_scan):
        # The Hi benchmark: every conducted experiment fails (all live
        # data goes straight to the output), so unweighted coverage is 0.
        assert unweighted_coverage(hi_scan) == pytest.approx(0.0)

    def test_activated_only_excludes_dead_weight(self, hi_scan):
        # Activated-only population is the live weight (2 bytes * 3
        # cycles * 8 bits = 48), all of which fail.
        assert activated_only_coverage(hi_scan) == pytest.approx(0.0)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            weighted_coverage(42)


class TestSampledCoverage:
    def test_sampled_estimates_weighted_coverage(self, hi_scan):
        result = run_sampling(hi_scan.golden, 2000, seed=0)
        estimate = sampled_coverage(result)
        assert estimate == pytest.approx(0.625, abs=0.05)

    def test_live_only_sampling_estimates_activated_coverage(self,
                                                             hi_scan):
        result = run_sampling(hi_scan.golden, 500, seed=0,
                              sampler="live-only")
        assert sampled_coverage(result) == pytest.approx(0.0)
