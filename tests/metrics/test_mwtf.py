"""Tests for the MWTF related-work metric."""

import math

import pytest

from repro.campaign import record_golden, run_full_scan
from repro.isa import assemble
from repro.metrics import compare, mwtf, mwtf_ratio
from repro.programs import hi


@pytest.fixture(scope="module")
def baseline_scan():
    return run_full_scan(record_golden(hi.baseline()))


@pytest.fixture(scope="module")
def dft_scan():
    return run_full_scan(record_golden(hi.dft_variant(4)))


class TestMwtf:
    def test_mwtf_is_inverse_of_expected_failures(self, baseline_scan):
        rate = 1e-12
        value = mwtf(baseline_scan, rate=rate)
        assert value == pytest.approx(1.0 / (rate * 48))

    def test_zero_failure_variant_has_infinite_mwtf(self):
        inert = assemble(".text\nstart: li r1, 'z'\n out r1\n halt",
                         ram_size=1)
        scan = run_full_scan(record_golden(inert))
        assert math.isinf(mwtf(scan))

    def test_invalid_arguments_rejected(self, baseline_scan):
        with pytest.raises(ValueError):
            mwtf(baseline_scan, rate=0)
        with pytest.raises(ValueError):
            mwtf(baseline_scan, work_units=0)


class TestMwtfRatio:
    def test_consistent_with_comparison_ratio(self, baseline_scan,
                                              dft_scan):
        """Section VII: with equal work units, MWTF ranks like 1/r."""
        r = compare(baseline_scan, dft_scan).ratio
        assert mwtf_ratio(baseline_scan, dft_scan) == pytest.approx(1 / r)

    def test_infinite_cases(self, baseline_scan):
        inert = assemble(".text\nstart: li r1, 'z'\n out r1\n halt",
                         ram_size=1)
        inert_scan = run_full_scan(record_golden(inert))
        assert mwtf_ratio(baseline_scan, inert_scan) == math.inf
        assert mwtf_ratio(inert_scan, baseline_scan) == 0.0
        assert mwtf_ratio(inert_scan, inert_scan) == 1.0
