"""Tests for the comparison ratio and the pitfall-contrast report."""

import math

import pytest

from repro.campaign import record_golden, run_full_scan, run_sampling
from repro.metrics import compare, comparison_report
from repro.programs import hi


@pytest.fixture(scope="module")
def baseline_scan():
    return run_full_scan(record_golden(hi.baseline()))


@pytest.fixture(scope="module")
def dft_scan():
    return run_full_scan(record_golden(hi.dft_variant(4)))


class TestCompare:
    def test_dft_ratio_is_exactly_one(self, baseline_scan, dft_scan):
        """The dilution cheat does not move the paper's metric at all."""
        comparison = compare(baseline_scan, dft_scan)
        assert comparison.ratio == pytest.approx(1.0)
        assert not comparison.improves
        assert not comparison.worsens

    def test_ratio_direction(self, baseline_scan, dft_scan):
        comparison = compare(baseline_scan, dft_scan)
        assert "unchanged" in comparison.describe()

    def test_mixed_full_scan_and_sampling(self, baseline_scan):
        sampled = run_sampling(baseline_scan.golden, 2000, seed=0)
        comparison = compare(baseline_scan, sampled)
        assert comparison.ratio == pytest.approx(1.0, abs=0.2)

    def test_zero_baseline_failures_gives_inf_or_one(self, baseline_scan):
        # Construct a synthetic zero-failure baseline via a program whose
        # output does not depend on RAM.
        from repro.isa import assemble
        inert = assemble(
            ".text\nstart: li r1, 'z'\n out r1\n halt", ram_size=1)
        inert_scan = run_full_scan(record_golden(inert))
        comparison = compare(inert_scan, baseline_scan)
        assert math.isinf(comparison.ratio)
        same = compare(inert_scan, inert_scan)
        assert same.ratio == 1.0


class TestComparisonReport:
    def test_dft_report_exposes_the_delusion(self, baseline_scan,
                                             dft_scan):
        report = comparison_report("hi", baseline_scan, dft_scan)
        # Sound metric: no improvement (r == 1).
        assert report.ratio == pytest.approx(1.0)
        # Coverage claims a 12.5-point improvement — the delusion.
        assert report.coverage_delta_weighted == pytest.approx(12.5)
        verdicts = report.verdicts()
        assert verdicts["coverage weighted (pitfall 3)"]
        assert not verdicts["failure-count (sound)"]
        assert "coverage weighted (pitfall 3)" in \
            report.misleading_metrics()

    def test_describe_mentions_benchmark_name(self, baseline_scan,
                                              dft_scan):
        report = comparison_report("hi", baseline_scan, dft_scan)
        assert "hi" in report.describe()

    def test_report_rejects_sampling_results(self, baseline_scan):
        sampled = run_sampling(baseline_scan.golden, 10, seed=0)
        with pytest.raises(TypeError):
            comparison_report("hi", baseline_scan, sampled)

    def test_unweighted_ratio_for_identical_variants_is_one(
            self, baseline_scan):
        report = comparison_report("hi", baseline_scan, baseline_scan)
        assert report.unweighted_ratio == pytest.approx(1.0)
        assert report.coverage_delta_unweighted == pytest.approx(0.0)
