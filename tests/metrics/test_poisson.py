"""Tests for the Poisson fault model and Table I parametrization."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    PAPER_RATE_PER_BIT_CYCLE,
    PUBLISHED_FIT_PER_MBIT,
    PoissonFaultModel,
    fit_to_rate_per_bit_cycle,
    mean_published_rate,
    paper_table1_model,
)


class TestRateConversion:
    def test_paper_rate_magnitude(self):
        # The paper computes g ≈ 1.6e-29 per ns per bit at 1 GHz.
        assert PAPER_RATE_PER_BIT_CYCLE == pytest.approx(1.583e-29,
                                                         rel=0.01)

    def test_mean_of_published_rates(self):
        assert sum(PUBLISHED_FIT_PER_MBIT) / 3 == pytest.approx(0.057)
        assert mean_published_rate() == PAPER_RATE_PER_BIT_CYCLE

    def test_slower_clock_scales_rate_per_cycle(self):
        # At 0.5 GHz a cycle lasts 2 ns, so the per-cycle rate doubles.
        fast = fit_to_rate_per_bit_cycle(0.057, clock_hz=1e9)
        slow = fit_to_rate_per_bit_cycle(0.057, clock_hz=0.5e9)
        assert slow == pytest.approx(2 * fast)

    def test_negative_fit_rejected(self):
        with pytest.raises(ValueError):
            fit_to_rate_per_bit_cycle(-1.0)


class TestPoissonModel:
    def test_table1_lambda(self):
        model = paper_table1_model()
        # λ = g · 1e9 cycles · 2^20 bits ≈ 1.66e-14.
        assert model.lam == pytest.approx(1.66e-14, rel=0.01)

    def test_zero_faults_is_near_certain(self):
        model = paper_table1_model()
        assert model.p_faults(0) == pytest.approx(1.0, abs=1e-12)

    def test_probabilities_decay_fast(self):
        model = paper_table1_model()
        rows = model.table_rows(5)
        assert [k for k, _ in rows] == [0, 1, 2, 3, 4, 5]
        for (_, p_k), (_, p_next) in zip(rows[1:], rows[2:]):
            assert p_next < p_k * 1e-12

    def test_single_fault_dominance(self):
        model = paper_table1_model()
        assert model.single_fault_dominance() == pytest.approx(
            2.0 / model.lam)
        # Paper footnote: even at g = 1e-20, still more than 1e4.
        hypothetical = PoissonFaultModel(
            rate=1e-20, fault_space_size=10 ** 9 * 2 ** 20)
        assert hypothetical.single_fault_dominance() > 1e4

    def test_distribution_sums_to_one(self):
        model = PoissonFaultModel(rate=1e-3, fault_space_size=1000)
        total = math.fsum(model.p_faults(k) for k in range(50))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_p_at_least_complements_prefix(self):
        model = PoissonFaultModel(rate=1e-3, fault_space_size=1000)
        assert model.p_at_least(0) == 1.0
        assert model.p_at_least(1) == pytest.approx(
            1.0 - model.p_faults(0))

    def test_zero_rate_degenerates(self):
        model = PoissonFaultModel(rate=0.0, fault_space_size=10)
        assert model.p_faults(0) == 1.0
        assert model.p_faults(3) == 0.0
        assert model.single_fault_dominance() == math.inf

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PoissonFaultModel(rate=-1.0, fault_space_size=10)
        with pytest.raises(ValueError):
            PoissonFaultModel(rate=1.0, fault_space_size=0)
        with pytest.raises(ValueError):
            paper_table1_model().p_faults(-1)


class TestFailureProbability:
    def test_equation_5(self):
        model = paper_table1_model()
        F = 12345
        expected = F * model.rate * math.exp(-model.lam)
        assert model.failure_probability(F) == pytest.approx(expected)

    def test_proportionality_error_is_negligible(self):
        # Eq. 6: assuming e^{-gw} ≈ 1 errs by less than 1e-12.
        assert paper_table1_model().proportionality_error() < 1e-12

    def test_failure_count_bounds_enforced(self):
        model = PoissonFaultModel(rate=1e-9, fault_space_size=100)
        with pytest.raises(ValueError):
            model.failure_probability(-1)
        with pytest.raises(ValueError):
            model.failure_probability(101)

    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.integers(min_value=1, max_value=10 ** 6))
    def test_proportionality_to_f(self, f, extra):
        """P(Failure) is strictly proportional to F at fixed w."""
        model = PoissonFaultModel(rate=1e-25,
                                  fault_space_size=2 * 10 ** 6)
        p1 = model.failure_probability(f)
        p2 = model.failure_probability(f + extra)
        assert p2 >= p1
        if f > 0:
            assert p2 / p1 == pytest.approx((f + extra) / f)
