"""Tests for absolute failure counts and extrapolation."""

import pytest

from repro.campaign import Outcome, record_golden, run_full_scan, \
    run_sampling
from repro.metrics import (
    extrapolated_failure_count,
    failure_count,
    raw_sample_failure_count,
    unweighted_failure_count,
    weighted_failure_count,
)
from repro.programs import hi


@pytest.fixture(scope="module")
def golden():
    return record_golden(hi.baseline())


@pytest.fixture(scope="module")
def scan(golden):
    return run_full_scan(golden)


class TestWeightedFailureCount:
    def test_hi_failure_count_is_48(self, scan):
        count = weighted_failure_count(scan)
        assert count.total == 48
        assert count.exact
        assert count.population == 128

    def test_breakdown_by_mode_sums_to_total(self, scan):
        count = weighted_failure_count(scan)
        assert sum(count.by_mode.values()) == count.total
        assert all(o.is_failure for o in count.by_mode)

    def test_benign_mode_lookup_rejected(self, scan):
        count = weighted_failure_count(scan)
        with pytest.raises(ValueError, match="benign"):
            count.mode(Outcome.NO_EFFECT)

    def test_missing_failure_mode_reads_zero(self, scan):
        count = weighted_failure_count(scan)
        assert count.mode(Outcome.TIMEOUT) == 0.0


class TestUnweightedFailureCount:
    def test_counts_experiments_not_weights(self, scan):
        count = unweighted_failure_count(scan)
        # 6 live classes (2 bytes * 3 reads? no: 2 bytes, 1 read each)
        # -> 16 experiments, all failing.
        assert count.total == scan.experiments_conducted - sum(
            n for o, n in scan.raw_counts().items() if o.is_benign)
        assert not count.exact


class TestExtrapolation:
    def test_extrapolated_count_converges_to_exact(self, golden, scan):
        exact = weighted_failure_count(scan).total
        result = run_sampling(golden, 4000, seed=1)
        estimate = extrapolated_failure_count(result)
        assert estimate.population == 128
        assert estimate.total == pytest.approx(exact, rel=0.15)

    def test_extrapolation_scales_by_population_over_n(self, golden):
        result = run_sampling(golden, 64, seed=2)
        raw = raw_sample_failure_count(result)
        extrapolated = extrapolated_failure_count(result)
        scale = result.population / result.n_samples
        assert extrapolated.total == pytest.approx(raw.total * scale)

    def test_live_only_sampling_extrapolates_to_w_prime(self, golden):
        partition = golden.partition()
        result = run_sampling(golden, 100, seed=3, sampler="live-only",
                              partition=partition)
        estimate = extrapolated_failure_count(result)
        assert estimate.population == partition.live_weight
        # All live Hi coordinates fail, so the estimate is exactly w'.
        assert estimate.total == pytest.approx(partition.live_weight)

    def test_per_mode_extrapolation(self, golden):
        result = run_sampling(golden, 200, seed=4)
        estimate = extrapolated_failure_count(result)
        assert sum(estimate.by_mode.values()) == pytest.approx(
            estimate.total)


class TestDispatch:
    def test_failure_count_dispatches_on_type(self, golden, scan):
        assert failure_count(scan).exact
        sampled = failure_count(run_sampling(golden, 50, seed=5))
        assert not sampled.exact

    def test_failure_count_rejects_junk(self):
        with pytest.raises(TypeError):
            failure_count("nope")
