"""Tests for the source-transformation framework."""

import pytest

from repro.hardening import (
    HardeningPass,
    TransformError,
    append_to_data_segment,
    compose,
    insert_after_label,
    split_label,
)


class TestSplitLabel:
    def test_label_with_instruction(self):
        assert split_label("start:  li r1, 1") == ("start:", "li r1, 1")

    def test_bare_label(self):
        assert split_label("loop:") == ("loop:", "")

    def test_no_label(self):
        assert split_label("        nop") == ("", "nop")


class TestInsertAfterLabel:
    def test_inserts_between_label_and_instruction(self):
        source = ".text\nstart: li r1, 1\n halt\n"
        result = insert_after_label(source, "start", ["        nop"])
        lines = [l.strip() for l in result.splitlines() if l.strip()]
        assert lines == [".text", "start:", "nop", "li r1, 1", "halt"]

    def test_inserts_after_bare_label(self):
        source = ".text\nstart:\n halt\n"
        result = insert_after_label(source, "start", ["        nop"])
        assert result.index("start:") < result.index("nop") \
            < result.index("halt")

    def test_duplicate_label_rejected(self):
        source = ".text\nstart: nop\n.text\nstart: nop\n"
        with pytest.raises(TransformError, match="2 times"):
            insert_after_label(source, "start", ["nop"])


class TestAppendToDataSegment:
    def test_appends_before_text(self):
        source = "        .data\nv: .word 1\n        .text\n halt\n"
        result = append_to_data_segment(source, ["pad: .space 4"])
        assert result.index("pad:") < result.index(".text")

    def test_creates_data_segment_when_missing(self):
        source = "        .text\n halt\n"
        result = append_to_data_segment(source, ["pad: .space 4"])
        assert ".data" in result
        assert result.index("pad:") < result.index(".text")

    def test_sourceless_input_rejected(self):
        with pytest.raises(TransformError):
            append_to_data_segment("nop\n", ["x: .word 1"])


class TestHardeningPass:
    def test_apply_to_program_renames_variant(self):
        from repro.programs import hi
        identity = HardeningPass(name="noop", description="nothing",
                                 transform=lambda s: s)
        program = identity.apply_to_program(hi.baseline())
        assert program.name == "hi-noop"
        assert program.rom_size == hi.baseline().rom_size

    def test_compose_applies_in_order(self):
        first = HardeningPass("a", "adds A", lambda s: s + "; A\n")
        second = HardeningPass("b", "adds B", lambda s: s + "; B\n")
        combined = compose(first, second)
        assert combined.name == "a+b"
        result = combined.apply(".text\nhalt\n")
        assert result.index("; A") < result.index("; B")

    def test_compose_requires_passes(self):
        with pytest.raises(ValueError):
            compose()
