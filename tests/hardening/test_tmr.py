"""Tests for the TMR emitter, executed on the machine."""

import pytest

from repro.hardening import TmrEmitter, TmrWord
from repro.isa import Machine, assemble


def build_tmr_program(init=42, store=None):
    """Optionally store through TMR, then vote-read and print."""
    emitter = TmrEmitter()
    word = TmrWord(name="val")
    lines = ["        .data"]
    lines += emitter.data_lines(word, init)
    lines += ["        .text", "start:"]
    if store is not None:
        lines.append(f"        li   r10, {store}")
        lines += emitter.emit_store(word, "r10")
    lines += emitter.emit_load(word, "r1")
    lines += ["        out  r1", "        halt"]
    return assemble("\n".join(lines) + "\n", ram_size=word.size_bytes)


class TestTmrWord:
    def test_copies(self):
        word = TmrWord(name="v")
        assert word.copy(0) == "v"
        assert word.copy(2) == "v+8"
        with pytest.raises(IndexError):
            word.copy(3)


class TestTmrOnMachine:
    def test_clean_run_with_store(self):
        machine = Machine(build_tmr_program(store=55))
        machine.run(1000)
        assert machine.serial == bytes([55])
        assert not machine.detections

    def test_store_refreshes_all_copies(self):
        machine = Machine(build_tmr_program(store=55))
        machine.flip_bit(4, 3)  # corrupt copy B; store overwrites it
        machine.run(1000)
        assert machine.serial == bytes([55])
        assert not machine.detections

    @pytest.mark.parametrize("copy_index", [0, 1, 2])
    def test_any_single_copy_corruption_is_voted_out(self, copy_index):
        machine = Machine(build_tmr_program(init=42))
        machine.flip_bit(copy_index * 4, 3)
        machine.run(1000)
        assert machine.serial == bytes([42])

    @pytest.mark.parametrize("copy_index", [0, 1])
    def test_fast_path_copies_report_detection(self, copy_index):
        # Corruption of copy A or B is noticed by the vote; corruption of
        # copy C may go unread on the fast path (A == B).
        machine = Machine(build_tmr_program(init=42))
        machine.flip_bit(copy_index * 4, 3)
        machine.run(1000)
        assert machine.detections

    def test_vote_repairs_the_odd_copy(self):
        machine = Machine(build_tmr_program(init=42))
        machine.flip_bit(0, 6)
        machine.run(1000)
        words = [int.from_bytes(machine.ram[i * 4:(i + 1) * 4], "little")
                 for i in range(3)]
        assert words == [42, 42, 42]

    def test_dest_register_collision_rejected(self):
        emitter = TmrEmitter()
        with pytest.raises(ValueError):
            emitter.emit_load(TmrWord(name="v"), "r11")
