"""Tests for the SUM+DMR assembly emitter, executed on the machine."""

import pytest

from repro.campaign import record_golden
from repro.hardening import ProtectedObject, SumDmrEmitter, read_object
from repro.isa import Machine, assemble


def build_guarded_program(n_words=2, init=(10, 20)):
    """A program that checks, reads, modifies, updates a protected object
    and prints the first word."""
    emitter = SumDmrEmitter()
    obj = ProtectedObject(name="obj", n_words=n_words)
    lines = ["        .data"]
    lines += emitter.data_lines(obj, list(init))
    lines += ["        .text", "start:"]
    lines += emitter.emit_check(obj)
    lines += [
        f"        lw   r1, {obj.word(0)}(zero)",
        "        addi r1, r1, 1",
        f"        sw   r1, {obj.word(0)}(zero)",
    ]
    lines += emitter.emit_update(obj)
    lines += emitter.emit_check(obj)
    lines += [
        f"        lw   r1, {obj.word(0)}(zero)",
        "        out  r1",
        "        halt",
    ]
    source = "\n".join(lines) + "\n"
    return assemble(source, name="guarded",
                    ram_size=obj.size_bytes), obj


class TestProtectedObject:
    def test_offsets(self):
        obj = ProtectedObject(name="x", n_words=3)
        assert obj.replica_offset == 12
        assert obj.checksum_offset == 24
        assert obj.size_bytes == 28
        assert obj.word(1) == "x+4"
        assert obj.replica_word(0) == "x+12"
        assert obj.checksum_word == "x+24"

    def test_bounds(self):
        obj = ProtectedObject(name="x", n_words=2)
        with pytest.raises(IndexError):
            obj.word(2)
        with pytest.raises(ValueError):
            ProtectedObject(name="x", n_words=0)


class TestEmitterOnMachine:
    def test_golden_run_is_clean(self):
        program, _ = build_guarded_program()
        golden = record_golden(program)
        assert golden.output == bytes([11])

    def test_update_keeps_object_consistent(self):
        program, obj = build_guarded_program()
        machine = Machine(program)
        machine.run(10_000)
        view = read_object(machine.ram, 0, obj.n_words)
        assert view.is_consistent
        assert view.primary[0] == 11

    @pytest.mark.parametrize("byte_offset", range(0, 20, 3))
    def test_single_fault_anywhere_is_masked(self, byte_offset):
        """Flip any byte of the protected object right at program start:
        the guarded program must still produce correct output."""
        program, obj = build_guarded_program()
        machine = Machine(program)
        machine.flip_bit(byte_offset % obj.size_bytes, 4)
        machine.run(10_000)
        assert machine.halted
        assert machine.serial == bytes([11])

    def test_corrupted_primary_reports_detection(self):
        program, _ = build_guarded_program()
        machine = Machine(program)
        machine.flip_bit(0, 0)  # primary word 0
        machine.run(10_000)
        assert machine.serial == bytes([11])
        assert machine.detections  # corrected

    def test_corrupted_checksum_is_recomputed(self):
        program, obj = build_guarded_program()
        machine = Machine(program)
        machine.flip_bit(obj.checksum_offset, 3)
        machine.run(10_000)
        assert machine.serial == bytes([11])
        assert machine.detections

    def test_double_fault_fail_stops(self):
        program, obj = build_guarded_program()
        machine = Machine(program)
        machine.flip_bit(0, 0)                     # primary
        machine.flip_bit(obj.replica_offset, 1)    # replica, other bit
        machine.run(10_000)
        assert machine.halted
        assert machine.serial == b""  # stopped before output
        assert any(code >= 0xF0 for _, code in machine.detections)

    def test_base_register_addressing_equivalent(self):
        """Guards addressed via a base register behave identically."""
        emitter = SumDmrEmitter()
        obj = ProtectedObject(name="obj", n_words=1)
        lines = ["        .data"]
        lines += emitter.data_lines(obj, [7])
        lines += ["        .text", "start:",
                  "        addi r9, zero, 0"]  # base = address 0
        lines += emitter.emit_check(obj, base="r9")
        lines += ["        lw   r1, 0(r9)", "        out  r1",
                  "        halt"]
        program = assemble("\n".join(lines) + "\n", ram_size=obj.size_bytes)
        machine = Machine(program)
        machine.flip_bit(0, 2)  # corrupt primary; check must repair
        machine.run(10_000)
        assert machine.serial == bytes([7])
        assert machine.detections

    def test_base_register_collision_rejected(self):
        emitter = SumDmrEmitter()
        obj = ProtectedObject(name="obj", n_words=1)
        with pytest.raises(ValueError, match="collides"):
            emitter.emit_check(obj, base="r10")

    def test_data_lines_validate_initializer_count(self):
        emitter = SumDmrEmitter()
        obj = ProtectedObject(name="obj", n_words=2)
        with pytest.raises(ValueError):
            emitter.data_lines(obj, [1])

    def test_low_panic_code_rejected(self):
        with pytest.raises(ValueError):
            SumDmrEmitter(panic_code=0x10)
