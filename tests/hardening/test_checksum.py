"""Tests for the Python-side SUM+DMR layout mirror."""

import pytest
from hypothesis import given, strategies as st

from repro.hardening import (
    additive_checksum,
    initial_image,
    protected_size_bytes,
    read_object,
)

WORDS = st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                 min_size=1, max_size=8)


class TestAdditiveChecksum:
    def test_simple_sum(self):
        assert additive_checksum([1, 2, 3]) == 6

    def test_wraps_modulo_2_32(self):
        assert additive_checksum([0xFFFFFFFF, 2]) == 1

    @given(WORDS, st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=31))
    def test_detects_any_single_bit_flip(self, words, index, bit):
        index %= len(words)
        flipped = list(words)
        flipped[index] ^= 1 << bit
        assert additive_checksum(flipped) != additive_checksum(words)


class TestInitialImage:
    def test_layout(self):
        image = initial_image([1, 2])
        view = read_object(image, 0, 2)
        assert view.primary == (1, 2)
        assert view.replica == (1, 2)
        assert view.checksum == 3
        assert view.is_consistent

    def test_size(self):
        assert protected_size_bytes(2) == 20
        assert len(initial_image([1, 2])) == 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            initial_image([])
        with pytest.raises(ValueError):
            protected_size_bytes(0)


class TestObjectView:
    @given(WORDS, st.integers(min_value=0, max_value=10 ** 9),
           st.integers(min_value=0, max_value=31))
    def test_single_fault_is_always_recoverable(self, words, pos, bit):
        """Any single bit flip anywhere in the object is recoverable."""
        image = bytearray(initial_image(words))
        pos %= len(image)
        image[pos] ^= 1 << (bit % 8)
        view = read_object(image, 0, len(words))
        assert view.is_recoverable

    def test_double_fault_can_be_unrecoverable(self):
        image = bytearray(initial_image([5]))
        image[0] ^= 1      # primary
        image[4] ^= 2      # replica, different bit
        view = read_object(image, 0, 1)
        assert not view.is_recoverable

    def test_read_object_validates_alignment_and_bounds(self):
        image = initial_image([1])
        with pytest.raises(ValueError):
            read_object(image, 2, 1)
        with pytest.raises(ValueError):
            read_object(image, 0, 2)
