"""Tests for the DFT dilution transformations (Section IV)."""

import pytest

from repro.campaign import record_golden
from repro.hardening import (
    TransformError,
    dilute_program,
    load_dilution,
    memory_dilution,
    nop_dilution,
)
from repro.isa import Op
from repro.programs import hi


class TestNopDilution:
    def test_adds_exactly_n_cycles(self):
        base = record_golden(hi.baseline())
        diluted = record_golden(nop_dilution(4).apply_to_program(
            hi.baseline()))
        assert diluted.cycles == base.cycles + 4
        assert diluted.output == base.output

    def test_nops_land_after_start_label(self):
        program = nop_dilution(3).apply_to_program(hi.baseline())
        entry = program.entry
        assert [i.op for i in program.rom[entry:entry + 3]] == \
            [Op.NOP] * 3

    def test_zero_nops_is_identity_runtime(self):
        base = record_golden(hi.baseline())
        same = record_golden(nop_dilution(0).apply_to_program(
            hi.baseline()))
        assert same.cycles == base.cycles

    def test_negative_count_rejected(self):
        with pytest.raises(TransformError):
            nop_dilution(-1)

    def test_missing_label_rejected(self):
        with pytest.raises(TransformError, match="occurs 0 times"):
            nop_dilution(2).apply(".text\n nop\n halt")

    def test_variant_name_records_transformation(self):
        program = nop_dilution(4).apply_to_program(hi.baseline())
        assert program.name == "hi-dft4"


class TestLoadDilution:
    def test_adds_loads_that_activate_padding_faults(self):
        base = record_golden(hi.baseline())
        program = load_dilution(4, ["msg", "msg+1"]).apply_to_program(
            hi.baseline())
        diluted = record_golden(program)
        assert diluted.cycles == base.cycles + 4
        assert diluted.output == base.output
        # The prepended loads must be real memory reads.
        entry = program.entry
        assert all(program.rom[entry + i].op == Op.LBU for i in range(4))

    def test_requires_addresses(self):
        with pytest.raises(TransformError, match="at least one address"):
            load_dilution(2, [])

    def test_integer_addresses_accepted(self):
        program = load_dilution(2, [0, 1]).apply_to_program(hi.baseline())
        assert record_golden(program).output == b"Hi"


class TestMemoryDilution:
    def test_source_pass_is_identity(self):
        source = hi.HI_SOURCE
        assert memory_dilution(16).apply(source) == source

    def test_negative_bytes_rejected(self):
        with pytest.raises(TransformError):
            memory_dilution(-1)


class TestDiluteProgram:
    def test_combined_dilution(self):
        program = dilute_program(hi.baseline(), nops=2, extra_bytes=4)
        assert program.ram_size == hi.baseline().ram_size + 4
        golden = record_golden(program)
        assert golden.cycles == record_golden(hi.baseline()).cycles + 2
        assert "dft2" in program.name and "mem4" in program.name

    def test_noop_dilution_still_renames(self):
        program = dilute_program(hi.baseline())
        assert program.name.endswith("diluted0")
